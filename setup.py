"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only
enables legacy editable installs (``pip install -e . --no-use-pep517``)
on machines where PEP 517 builds are unavailable (e.g. offline boxes
without ``wheel``).
"""

from setuptools import setup

setup()
