"""Ablations of Algorithm 1's design choices (Sections 4.1-4.2).

Three textual claims in the paper, each measured here on the RLC bus
workload (where variation effects are largest):

1. "a rank-one approximation is usually sufficient to provide a good
   accuracy" -- sweep k_svd in {1, 2, 4};
2. "approximating the generalized sensitivity matrices work[s] much
   better in practice" than raw sensitivities -- flip
   ``raw_sensitivity_svd``;
3. "incorporating the useful Krylov subspaces of A0^T improves the
   accuracy" at ~2x the per-parameter size -- flip
   ``include_dual_subspaces`` (the simplified variant).

Plus a cross-check that the two matrix-implicit SVD drivers (Lanczos
bidiagonalization and subspace iteration) give the same model.
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.core import LowRankReducer

FREQUENCIES = np.linspace(5e9, 4.5e10, 40)
POINT = [0.3, -0.3]


def response_error(parametric, model):
    full = parametric.instantiate(POINT).frequency_response(FREQUENCIES)[:, 0, 0]
    reduced = model.frequency_response(FREQUENCIES, POINT)[:, 0, 0]
    return np.abs(full - reduced).max() / np.abs(full).max()


def test_ablation_lowrank(benchmark, report, bus_parametric):
    k = 13

    rank_rows = []
    rank_errors = {}
    for rank in (1, 2, 4):
        build = lambda rank=rank: LowRankReducer(num_moments=k, rank=rank).reduce(
            bus_parametric
        )
        model = benchmark.pedantic(build, rounds=1, iterations=1) if rank == 1 else build()
        rank_errors[rank] = response_error(bus_parametric, model)
        rank_rows.append((rank, model.size, f"{rank_errors[rank]:.2e}"))

    generalized = LowRankReducer(num_moments=k, rank=1).reduce(bus_parametric)
    raw = LowRankReducer(num_moments=k, rank=1, raw_sensitivity_svd=True).reduce(
        bus_parametric
    )
    err_generalized = response_error(bus_parametric, generalized)
    err_raw = response_error(bus_parametric, raw)

    full_variant = generalized
    simplified = LowRankReducer(
        num_moments=k, rank=1, include_dual_subspaces=False
    ).reduce(bus_parametric)
    err_full = err_generalized
    err_simplified = response_error(bus_parametric, simplified)

    lanczos = generalized
    subspace = LowRankReducer(num_moments=k, rank=1, svd_method="subspace").reduce(
        bus_parametric
    )
    err_lanczos = err_generalized
    err_subspace = response_error(bus_parametric, subspace)

    report(
        "=== ABL: Algorithm 1 design choices (RLC bus, 30% variation) ===",
        "(1) SVD rank sweep:",
        *format_table(("k_svd", "size", "linf err"), rank_rows),
        "",
        "(2) generalized vs raw sensitivity SVD:",
        *format_table(
            ("variant", "linf err"),
            [
                ("generalized  -G0^-1 Gi (paper)", f"{err_generalized:.2e}"),
                ("raw          Gi (ablation)", f"{err_raw:.2e}"),
            ],
        ),
        "",
        "(3) dual (A0^T) subspaces:",
        *format_table(
            ("variant", "size", "linf err"),
            [
                ("full Algorithm 1", full_variant.size, f"{err_full:.2e}"),
                ("simplified (no duals)", simplified.size, f"{err_simplified:.2e}"),
            ],
        ),
        "",
        "(4) SVD drivers:",
        *format_table(
            ("driver", "linf err"),
            [
                ("lanczos bidiagonalization", f"{err_lanczos:.2e}"),
                ("subspace iteration", f"{err_subspace:.2e}"),
            ],
        ),
    )

    write_record("ablation_lowrank", {
        "rank_errors": {f"rank{rank}": err for rank, err in rank_errors.items()},
        "generalized_vs_raw": {"generalized": err_generalized, "raw": err_raw},
        "dual_subspaces": {
            "full_size": full_variant.size,
            "simplified_size": simplified.size,
            "full_error": err_full,
            "simplified_error": err_simplified,
        },
        "svd_drivers": {"lanczos": err_lanczos, "subspace": err_subspace},
    })

    # (1) rank-1 is sufficient (the paper's claim); higher ranks stay
    # in the same accuracy regime.
    assert rank_errors[1] < 0.05
    assert max(rank_errors.values()) < 0.05
    # (2) generalized sensitivities beat raw ones.
    assert err_generalized <= err_raw
    # (3) simplified variant is smaller; full variant is at least as good.
    assert simplified.size < full_variant.size
    assert err_full <= err_simplified * 1.1
    # (4) both SVD drivers deliver the same quality.
    assert abs(err_lanczos - err_subspace) < 0.01
