"""Model-size comparison (Sections 3.2, 3.3, 4.2).

The paper has no numbered table, but its core quantitative argument is
a set of model-size formulas:

- single-point multi-parameter matching blows up with cross terms
  (``(k^2+k+1) m`` already for one first-order parameter; generally
  ``m * C(k + 2np + 1, 2np + 1)``);
- multi-point expansion reduces that to ``n_s (k+1) m`` but needs one
  factorization per sample (``c^np`` on a grid);
- the low-rank method needs ``(k+1)m + (4k+2) k_svd n_p`` columns and
  one factorization.

This benchmark prints predicted vs *measured* (post-deflation) sizes on
a shared workload and asserts the orderings the paper argues from.
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.core import (
    LowRankReducer,
    MultiPointReducer,
    SinglePointReducer,
    factorial_grid,
    low_rank_size,
    multi_point_size,
    single_point_size,
    single_point_size_first_order_example,
)

ORDER = 3


def test_table_model_size(benchmark, report, rc767):
    m = rc767.nominal.num_inputs
    np_count = rc767.num_parameters

    single = benchmark(lambda: SinglePointReducer(total_order=ORDER).reduce(rc767))
    low_rank = LowRankReducer(num_moments=ORDER, rank=1).reduce(rc767)
    grid = factorial_grid(np_count, 3, 0.5)
    multi = MultiPointReducer(grid, num_moments=ORDER + 1).reduce(rc767)

    rows = [
        (
            "single-point (Daniel et al.)",
            single_point_size(ORDER, np_count, m),
            single.size,
            1,
        ),
        (
            "multi-point (3/axis grid)",
            multi_point_size(ORDER, len(grid), m),
            multi.size,
            len(grid),
        ),
        (
            "low-rank (Algorithm 1)",
            low_rank_size(ORDER, np_count, m, rank=1),
            low_rank.size,
            1,
        ),
    ]
    report(
        f"=== TBL-SIZE: predicted vs measured model size (k={ORDER}, "
        f"np={np_count}, m={m}, rc-767) ===",
        *format_table(
            ("method", "predicted size", "measured size", "factorizations"), rows
        ),
        "",
        "Section 3.3 example (np=1, parameter to 1st order):",
        *format_table(
            ("k", "single-point (k^2+k+1)m", "multi-point 2(k+1)m"),
            [
                (k, single_point_size_first_order_example(k, 1), multi_point_size(k, 2, 1))
                for k in range(2, 9)
            ],
        ),
    )

    write_record("table_model_size", {
        "predicted": {
            "single_point": single_point_size(ORDER, np_count, m),
            "multi_point": multi_point_size(ORDER, len(grid), m),
            "low_rank": low_rank_size(ORDER, np_count, m, rank=1),
        },
        "measured": {
            "single_point": single.size,
            "multi_point": multi.size,
            "low_rank": low_rank.size,
        },
    })

    # Measured sizes never exceed the predictions (deflation only shrinks).
    assert single.size <= single_point_size(ORDER, np_count, m)
    assert multi.size <= multi_point_size(ORDER, len(grid), m)
    assert low_rank.size <= low_rank_size(ORDER, np_count, m, rank=1)
    # The paper's ordering at matched moment order.
    assert low_rank.size < single.size
    # Section 3.3: multi-point beats single-point for first-order params.
    for k in range(2, 9):
        assert multi_point_size(k, 2, 1) < single_point_size_first_order_example(k, 1)
    # Section 4.2: low-rank stays linear in np while the grid blows up.
    for parameters in (3, 4, 5):
        grid_points = 3 ** parameters
        assert low_rank_size(4, parameters, 1) < multi_point_size(4, grid_points, 1)
