"""Runtime engine: sparse shared-pattern full-order sweep vs per-sample loop.

PRs 1-2 gave the *reduced* side of a study its ~10-45x batching; this
benchmark measures the same treatment for the *full-order* side, which
Monte Carlo validation cannot avoid: every instance of a sparse
variational system must be instantiated and solved at full size.

Workload: a full-order Monte Carlo frequency sweep -- ``m`` parameter
instances of a generated RC network (>= 2000 MNA unknowns), each
evaluated on an ``n_f``-point frequency grid.

- looped:  ``parametric.instantiate(p)`` (a chain of scipy sparse
  additions) + ``DescriptorSystem.frequency_response`` (one fresh
  SuperLU symbolic + numeric factorization per frequency) per instance;
- sparse:  :class:`repro.runtime.sparse.SparsePatternFamily` -- the
  union pattern and index maps are built once, instantiation is a
  data-array update, and every pencil runs through the shared-pattern
  kernel (tridiagonal / banded LAPACK in RCM order, or SuperLU numeric
  refactorization).

Asserted: >= 5x speedup for the 2048-unknown ladder study (the
acceptance bar for the sparse runtime), clear wins for the banded mesh
and SuperLU-fallback tree rows, and agreement of both paths to 1e-9
relative.

Set ``BENCH_SMOKE=1`` to run a tiny configuration with the timing
assertions disabled (CI keeps the script from bit-rotting without
paying benchmark wall-clock).
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.montecarlo import sample_parameters
from repro.circuits import power_grid_mesh, rc_ladder, rc_tree, with_random_variations
from repro.runtime.sparse import SparsePatternFamily

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_SAMPLES = 4 if SMOKE else 64
FREQUENCIES = np.logspace(7, 10, 3 if SMOKE else 8)
SEED = 2005

LADDER_SEGMENTS = 127 if SMOKE else 2047       # 2048 MNA unknowns
MESH_SHAPE = (5, 24) if SMOKE else (10, 205)   # 2050 MNA unknowns, bandwidth 11
TREE_NODES = 200 if SMOKE else 600             # wide RCM band: SuperLU fallback


def _looped_sweep(parametric, samples):
    out = np.empty(
        (samples.shape[0], FREQUENCIES.size, parametric.nominal.num_outputs,
         parametric.nominal.num_inputs),
        dtype=complex,
    )
    for k, point in enumerate(samples):
        out[k] = parametric.instantiate(point).frequency_response(FREQUENCIES)
    return out


def _time(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_workload(parametric, num_samples, fast_repeats=2):
    samples = sample_parameters(
        num_samples, parametric.num_parameters, three_sigma=0.3, seed=SEED
    )
    loop_seconds, loop_h = _time(lambda: _looped_sweep(parametric, samples), 1)

    def sparse_sweep():
        # Family construction included: the one-time pattern analysis is
        # part of the price the sparse path pays.
        family = SparsePatternFamily(parametric)
        return family, family.frequency_response(FREQUENCIES, samples)

    sparse_seconds, (family, sparse_h) = _time(sparse_sweep, fast_repeats)
    scale = np.abs(loop_h).max()
    return {
        "order": parametric.order,
        "num_samples": num_samples,
        "num_frequencies": int(FREQUENCIES.size),
        "solver": family.solver_kind,
        "bandwidth": family.bandwidth,
        "loop_seconds": loop_seconds,
        "sparse_seconds": sparse_seconds,
        "speedup": loop_seconds / sparse_seconds,
        "response_error": float(np.abs(sparse_h - loop_h).max() / scale),
    }


def test_runtime_sparse_speedup(report):
    ladder = with_random_variations(rc_ladder(LADDER_SEGMENTS), 2, seed=3)
    mesh = with_random_variations(power_grid_mesh(*MESH_SHAPE), 2, seed=3)
    tree = with_random_variations(rc_tree(TREE_NODES, seed=7), 2, seed=3)

    results = {
        "ladder": _run_workload(ladder, NUM_SAMPLES),
        "mesh": _run_workload(mesh, max(NUM_SAMPLES // 4, 2)),
        "tree": _run_workload(tree, max(NUM_SAMPLES // 4, 2)),
    }

    rows = []
    for name, result in results.items():
        rows.append((
            name,
            result["order"],
            result["num_samples"],
            f"{result['solver']}({result['bandwidth']})",
            f"{result['loop_seconds']:.2f}s",
            f"{result['sparse_seconds']:.2f}s",
            f"{result['speedup']:.1f}x",
            f"{result['response_error']:.1e}",
        ))
    report(
        "=== RUNTIME: sparse shared-pattern full-order sweep vs per-sample loop "
        f"({FREQUENCIES.size}-point sweep per instance) ===",
        *format_table(
            ("net", "n", "instances", "solver", "loop", "sparse", "speedup", "err"),
            rows,
        ),
    )
    write_record("runtime_sparse", results)

    # Both paths are exact solvers; they must agree to solver roundoff.
    for result in results.values():
        assert result["response_error"] <= 1e-9
    # The three solver tiers must actually engage.
    assert results["ladder"]["solver"] == "tridiagonal"
    assert results["mesh"]["solver"] == "banded"
    assert results["tree"]["solver"] == "superlu"
    if not SMOKE:
        # Acceptance bar: >= 5x on the >= 2000-unknown, >= 64-instance
        # ladder study; the banded and SuperLU tiers ride along and must
        # still beat the per-sample loop clearly.
        assert results["ladder"]["speedup"] >= 5.0
        assert results["mesh"]["speedup"] >= 1.5
        assert results["tree"]["speedup"] >= 1.1
