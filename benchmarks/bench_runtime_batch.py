"""Runtime engine: batched vs. looped Monte Carlo evaluation.

The value of a reduced macromodel is amortized reuse -- thousands of
cheap evaluations per reduction.  This benchmark measures how much of
that amortization the :mod:`repro.runtime` batch engine recovers over
the historical per-sample Python loop, on the paper's clock-tree nets.

Workload (per circuit): a Monte Carlo study evaluating, for every
parameter instance, (a) the frequency-response sweep over a dense
log-spaced grid and (b) the 5 most dominant poles.

- looped:  ``model.frequency_response(freqs, p)`` + ``model.poles(p)``
  per instance -- one ``O(q^3)`` pencil solve per (instance,
  frequency) pair plus one eigendecomposition per instance;
- batched: the engine's dense sweep kernel -- one batched
  eigendecomposition per instance serving both the poles and the whole
  frequency axis as rational sums.

Asserted: >= 5x speedup for the 1000-instance RCNetA study (the
acceptance bar for the runtime subsystem) and agreement of the two
paths to 1e-12 relative.

Set ``BENCH_SMOKE=1`` to run a tiny configuration with the timing
assertions disabled (CI keeps the script from bit-rotting without
paying benchmark wall-clock).
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.metrics import matched_pole_errors
from repro.analysis.montecarlo import sample_parameters
from repro.core import LowRankReducer
from repro.runtime.batch import _sweep_study

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_INSTANCES_A = 10 if SMOKE else 1000
NUM_INSTANCES_B = 5 if SMOKE else 200
NUM_POLES = 5
FREQUENCIES = np.logspace(7, 10, 6 if SMOKE else 120)
SEED = 2005


def _looped_study(model, samples):
    responses = np.empty(
        (samples.shape[0], FREQUENCIES.size, model.nominal.num_outputs,
         model.nominal.num_inputs),
        dtype=complex,
    )
    poles = np.empty((samples.shape[0], NUM_POLES), dtype=complex)
    for i, point in enumerate(samples):
        responses[i] = model.frequency_response(FREQUENCIES, point)
        poles[i] = model.poles(point, num=NUM_POLES)
    return responses, poles


def _time(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_study(parametric, num_instances, loop_repeats=1, batch_repeats=3):
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    samples = sample_parameters(
        num_instances, parametric.num_parameters, three_sigma=0.3, seed=SEED
    )
    loop_seconds, (loop_h, loop_poles) = _time(lambda: _looped_study(model, samples), loop_repeats)
    batch_seconds, (batch_h, batch_poles) = _time(
        lambda: _sweep_study(model, FREQUENCIES, samples, num_poles=NUM_POLES),
        batch_repeats,
    )

    scale = np.abs(loop_h).max()
    response_error = np.abs(batch_h - loop_h).max() / scale
    pole_error = max(
        matched_pole_errors(loop_poles[i], batch_poles[i])[0].max()
        for i in range(samples.shape[0])
    )
    return {
        "model_size": model.size,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "response_error": response_error,
        "pole_error": pole_error,
        "evaluations": num_instances * FREQUENCIES.size,
    }


def test_runtime_batch_speedup(report, rcneta, rcnetb):
    result_a = _run_study(rcneta, NUM_INSTANCES_A)
    result_b = _run_study(rcnetb, NUM_INSTANCES_B)

    rows = []
    for name, instances, result in (
        ("RCNetA", NUM_INSTANCES_A, result_a),
        ("RCNetB", NUM_INSTANCES_B, result_b),
    ):
        rows.append((
            name,
            instances,
            result["model_size"],
            f"{result['loop_seconds']:.2f}s",
            f"{result['batch_seconds']:.2f}s",
            f"{result['speedup']:.1f}x",
            f"{result['response_error']:.1e}",
            f"{result['pole_error']:.1e}",
        ))

    report(
        "=== RUNTIME: batched vs. looped Monte Carlo evaluation "
        f"({FREQUENCIES.size}-point sweep + {NUM_POLES} poles per instance) ===",
        *format_table(
            ("net", "instances", "q", "loop", "batch", "speedup",
             "response err", "pole err"),
            rows,
        ),
    )

    write_record("runtime_batch", {"rcneta": result_a, "rcnetb": result_b})

    # Both paths must agree to 1e-12 regardless of mode.
    assert result_a["response_error"] <= 1e-12
    assert result_a["pole_error"] <= 1e-12
    assert result_b["response_error"] <= 1e-12
    assert result_b["pole_error"] <= 1e-12
    if not SMOKE:
        # Acceptance bar: the 1000-instance RCNetA study must be >= 5x
        # faster batched; RCNetB rides along at a smaller instance
        # count and must still win clearly.
        assert result_a["speedup"] >= 5.0
        assert result_b["speedup"] >= 2.0
