"""Shared fixtures and reporting helpers for the figure/table benchmarks.

Every benchmark prints the series/rows the corresponding paper artifact
reports (through the terminal even under pytest capture), times the
reduction kernel via pytest-benchmark, and asserts the *shape* of the
paper's result so regressions fail loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import coupled_rlc_bus, rc_network_767, rcnet_a, rcnet_b, with_random_variations


@pytest.fixture
def report(capsys):
    """Print a block of text directly to the terminal (bypass capture)."""

    def _print(*lines):
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _print


def format_table(header, rows):
    """Plain-text table with aligned columns."""
    table = [header] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def series_lines(label, frequencies, values, max_rows=12):
    """Down-sampled (frequency, value) series for terminal display."""
    indices = np.linspace(0, len(frequencies) - 1, max_rows).astype(int)
    lines = [f"{label}:"]
    for i in indices:
        lines.append(f"  f = {frequencies[i]:.4g} Hz   value = {values[i]:.6g}")
    return lines


@pytest.fixture(scope="session")
def rc767():
    """Section 5.1 workload: 767-unknown RC net, two random sources."""
    return rc_network_767(seed=2005)


@pytest.fixture(scope="session")
def bus_parametric():
    """Section 5.2 workload: coupled 4-port RLC bus, two random sources."""
    net = coupled_rlc_bus()
    # Spread 1.0: at the Fig. 4 operating point |p| = 0.3 element values
    # change by up to the full 30% ("maximum 30% parametric variation").
    return with_random_variations(net, 2, seed=42, relative_spread=1.0)


@pytest.fixture(scope="session")
def rcneta():
    """Section 5.3 workload: RCNetA (78 unknowns, 3 width parameters)."""
    return rcnet_a()


@pytest.fixture(scope="session")
def rcnetb():
    """Section 5.3 workload: RCNetB (333 unknowns, 3 width parameters)."""
    return rcnet_b()
