"""Figure 3: RC network transfer function under large parametric variation.

Paper setup (Section 5.1): a 767-unknown RC network with two
independent variational sources ("we randomly vary the RC values");
reduced models of size ~37 (low-rank, 4th-order multi-parameter
moments), ~40 (multi-point, 8 samples) and a nominal-projection model
(8 s-moments).  Models are evaluated on perturbed networks with up to
70% parametric variation over 10 MHz - 10 GHz; the plotted quantity is
the voltage transfer from the driven input to an observation node.

Shape reproduced: the nominal-projection model is the least able to
capture the variation, while the low-rank and multi-point models stay
visually indistinguishable from the perturbed full model.  (On our
synthetic net the nominal baseline degrades by ~2x rather than the
paper's dramatic miss -- see EXPERIMENTS.md.)
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table, series_lines
from repro.core import LowRankReducer, MultiPointReducer, NominalReducer, factorial_grid

FREQUENCIES = np.logspace(7, 10, 40)
# Perturbation points spanning the +-70% box of the protocol.
EVALUATION_POINTS = [
    [0.7, 0.7],
    [-0.7, -0.7],
    [0.7, -0.7],
    [-0.7, 0.7],
    [0.5, 0.3],
]
PLOT_POINT = [0.7, 0.7]


def voltage_transfer(response):
    """|v(far) / v(in)| from a (nf, 2, 1) response block."""
    return response[:, 1, 0] / response[:, 0, 0]


def build_models(rc767, benchmark=None):
    build_low_rank = lambda: LowRankReducer(num_moments=4, rank=1).reduce(rc767)  # noqa: E731
    low_rank = benchmark(build_low_rank) if benchmark is not None else build_low_rank()
    # 8 samples (paper): the 3x3 grid at +-0.8 minus the center point.
    grid = factorial_grid(2, 3, 0.8)
    samples = np.array([point for point in grid if np.any(point != 0.0)])
    multi_point = MultiPointReducer(samples, num_moments=5).reduce(rc767)
    nominal = NominalReducer(num_moments=8).reduce(rc767)
    return low_rank, multi_point, nominal


def test_fig3_rc_network(benchmark, report, rc767):
    low_rank, multi_point, nominal = build_models(rc767, benchmark)
    models = {
        "Redu. Pert. Model: Nomi. Proj.": nominal,
        "Redu. Pert. Model: Low-Rank": low_rank,
        "Redu. Pert. Model: Multi-point": multi_point,
    }

    # Worst/average voltage-transfer error over the evaluation box.
    errors = {label: [] for label in models}
    for point in EVALUATION_POINTS:
        full = voltage_transfer(rc767.instantiate(point).frequency_response(FREQUENCIES))
        for label, model in models.items():
            reduced = voltage_transfer(model.frequency_response(FREQUENCIES, point))
            errors[label].append(np.abs(full - reduced).max() / np.abs(full).max())

    rows = [
        (label, f"{np.mean(errs):.4f}", f"{np.max(errs):.4f}")
        for label, errs in errors.items()
    ]

    nominal_curve = np.abs(
        voltage_transfer(rc767.instantiate([0.0, 0.0]).frequency_response(FREQUENCIES))
    )
    perturbed_curve = np.abs(
        voltage_transfer(rc767.instantiate(PLOT_POINT).frequency_response(FREQUENCIES))
    )
    low_rank_curve = np.abs(
        voltage_transfer(low_rank.frequency_response(FREQUENCIES, PLOT_POINT))
    )

    report(
        "=== FIG 3: RC net (767 unknowns), up to 70% variation, 2 sources ===",
        f"model sizes: low-rank={low_rank.size} (paper 37), "
        f"multi-point={multi_point.size} (paper 40), nominal={nominal.size}",
        f"response shift |H_pert - H_nom| at {PLOT_POINT}: "
        f"{np.abs(perturbed_curve - nominal_curve).max():.3f} (of peak ~1)",
        *format_table(("model", "avg err", "max err"), rows),
        "",
        *series_lines("Nominal full |H|", FREQUENCIES, nominal_curve, 8),
        *series_lines("Perturbed full |H|", FREQUENCIES, perturbed_curve, 8),
        *series_lines("Low-rank ROM |H| (perturbed)", FREQUENCIES, low_rank_curve, 8),
    )

    write_record("fig3_rc_network", {
        "model_sizes": {
            "low_rank": low_rank.size,
            "multi_point": multi_point.size,
            "nominal": nominal.size,
        },
        "avg_errors": {label: float(np.mean(errs)) for label, errs in errors.items()},
        "max_errors": {label: float(np.max(errs)) for label, errs in errors.items()},
        "response_shift": float(np.abs(perturbed_curve - nominal_curve).max()),
    })

    # Paper's qualitative claims.
    avg = {label: np.mean(errs) for label, errs in errors.items()}
    assert avg["Redu. Pert. Model: Low-Rank"] < 0.02
    assert avg["Redu. Pert. Model: Multi-point"] < 0.02
    assert avg["Redu. Pert. Model: Nomi. Proj."] > 1.3 * avg["Redu. Pert. Model: Low-Rank"]
    assert avg["Redu. Pert. Model: Nomi. Proj."] > 1.3 * avg["Redu. Pert. Model: Multi-point"]
    # The perturbation visibly moves the response (the plot's premise).
    assert np.abs(perturbed_curve - nominal_curve).max() > 0.05
    # Model sizes in the paper's ballpark.
    assert low_rank.size <= 45
    assert multi_point.size <= 45
