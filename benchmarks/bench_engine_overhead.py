"""Engine dispatch overhead: ``Study.run()`` vs the direct kernel call.

The ``Study`` engine is the one front door of the runtime; its value
is routing, not speed.  This benchmark proves the front door is free:
planning + dispatch must cost < 1% on top of calling the routed kernel
directly, on a 64-instance RCNetA Monte Carlo sweep (the acceptance
workload of the runtime subsystem).  Repeat dispatch hits the
process-global plan cache (every repetition builds a fresh ``Study``,
exactly the Monte Carlo driver pattern), so the planner's routing work
is paid once and amortized to a fingerprint lookup.

- direct:  the internal streaming driver the engine's dense-batch
  sweep route delegates to, called with precomputed samples -- i.e.
  exactly the work ``run()`` performs minus the engine;
- engine:  ``Study(model).scenarios(samples).sweep(freqs).poles(k)``
  rebuilt and ``run()`` per repetition, so every repetition pays the
  full builder + planner + dispatch path.

Results are recorded to ``BENCH_engine_overhead.json`` via
:mod:`benchmarks._record`.  Set ``BENCH_SMOKE=1`` for a tiny
configuration with the timing assertion disabled.
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.montecarlo import sample_parameters
from repro.circuits import rcnet_a
from repro.core import LowRankReducer
from repro.runtime import Study
from repro.runtime.stream import _stream_sweep_study

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_INSTANCES = 8 if SMOKE else 64
NUM_POLES = 5
FREQUENCIES = np.logspace(7, 10, 6 if SMOKE else 120)
REPEATS = 3 if SMOKE else 30
SEED = 2005
OVERHEAD_BUDGET = 0.01


def _interleaved_best(fn_a, fn_b, repeats):
    """Best-of-``repeats`` for two rivals, alternating call order.

    Interleaving makes the comparison robust against CPU frequency
    drift between two separate timing loops -- the dominant noise when
    the quantity of interest is a few percent.
    """
    best_a = best_b = np.inf
    for index in range(repeats):
        pair = (fn_a, fn_b) if index % 2 == 0 else (fn_b, fn_a)
        for fn in pair:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is fn_a:
                best_a = min(best_a, elapsed)
            else:
                best_b = min(best_b, elapsed)
    return best_a, best_b


def test_engine_dispatch_overhead(report, rcneta):
    model = LowRankReducer(num_moments=4, rank=1).reduce(rcneta)
    samples = sample_parameters(
        NUM_INSTANCES, rcneta.num_parameters, three_sigma=0.3, seed=SEED
    )

    def direct():
        return _stream_sweep_study(
            model, FREQUENCIES, samples,
            chunk_size=NUM_INSTANCES, num_poles=NUM_POLES, keep_responses=True,
        )

    def engine():
        return (
            Study(model)
            .scenarios(samples)
            .sweep(FREQUENCIES, keep_responses=True)
            .poles(NUM_POLES)
            .run()
        )

    # Warm both paths (kernel caches, memoized stacks) before timing.
    direct_result = direct()
    engine_result = engine()
    np.testing.assert_array_equal(
        engine_result.responses, direct_result.responses
    )
    np.testing.assert_array_equal(engine_result.poles, direct_result.poles)

    direct_seconds, engine_seconds = _interleaved_best(direct, engine, REPEATS)
    overhead = engine_seconds / direct_seconds - 1.0

    plan = Study(model).scenarios(samples).sweep(FREQUENCIES).poles(NUM_POLES).plan()
    report(
        "=== RUNTIME: engine dispatch vs direct kernel call "
        f"({NUM_INSTANCES}-instance RCNetA sweep, {FREQUENCIES.size} freqs) ===",
        *format_table(
            ("route", "direct", "engine", "overhead"),
            [(
                plan.route,
                f"{direct_seconds * 1e3:.2f}ms",
                f"{engine_seconds * 1e3:.2f}ms",
                f"{overhead * 100:+.2f}%",
            )],
        ),
    )
    write_record("engine_overhead", {
        "num_instances": NUM_INSTANCES,
        "num_frequencies": int(FREQUENCIES.size),
        "model_size": model.size,
        "route": plan.route,
        "direct_seconds": direct_seconds,
        "engine_seconds": engine_seconds,
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
    })

    if not SMOKE:
        # The front door must be free: < 1% routing overhead on
        # repeat dispatch (plan-cache hit path).
        assert overhead < OVERHEAD_BUDGET, (
            f"engine dispatch overhead {overhead * 100:.2f}% exceeds "
            f"{OVERHEAD_BUDGET * 100:.0f}%"
        )
