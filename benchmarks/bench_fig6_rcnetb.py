"""Figure 6: RCNetB clock-tree pole accuracy under metal width variation.

Paper setup (Section 5.3): RCNetB is a 333-node industrial RC clock-tree
net (M5/M6/M7, three width parameters).  A low-rank parametric model of
size 40 matching all multi-parameter moments to 3rd order is evaluated:

- left plot: relative-error histogram of the 5 most dominant poles over
  Monte Carlo width variation (+-30%, 3-sigma normal); paper: "the
  maximum error out of 1000 poles is less than 0.12%";
- right plot: dominant-pole error vs M5/M6 widths in -30%..30%; paper:
  "the largest error is less than 0.3%".
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis import monte_carlo_pole_study, pole_error_grid
from repro.core import LowRankReducer

NUM_INSTANCES = 200  # x 5 poles = the paper's 1000 pole comparisons
NUM_POLES = 5
AXIS = np.linspace(-0.3, 0.3, 5)


def test_fig6_rcnetb(benchmark, report, rcnetb):
    model = benchmark(lambda: LowRankReducer(num_moments=3, rank=1).reduce(rcnetb))

    study = monte_carlo_pole_study(
        rcnetb, model, num_instances=NUM_INSTANCES, num_poles=NUM_POLES,
        three_sigma=0.3, seed=2005,
    )
    counts, edges = study.histogram(bins=10)
    histogram_rows = [
        (f"{edges[i]:.2e}..{edges[i + 1]:.2e} %", int(counts[i]))
        for i in range(len(counts))
    ]

    grid = pole_error_grid(
        rcnetb, model, AXIS, vary_indices=(0, 1),
        fixed_point=np.zeros(rcnetb.num_parameters), num_poles=1,
    )
    grid_rows = []
    for i, m5 in enumerate(AXIS):
        grid_rows.append(
            (f"M5 {m5:+.0%}",)
            + tuple(f"{grid[i, j] * 100:.2e}%" for j in range(len(AXIS)))
        )

    report(
        "=== FIG 6: RCNetB (333 unknowns, 3 width params), ROM size "
        f"{model.size} (paper 40) ===",
        f"Monte Carlo: {study.num_instances} instances x {NUM_POLES} poles "
        f"= {study.total_poles} pole comparisons (paper: 1000 poles)",
        f"max pole error: {study.max_error * 100:.3e}% (paper: < 0.12%)",
        "",
        "LEFT: pole-error histogram (% error, occurrences)",
        *format_table(("bin", "count"), histogram_rows),
        "",
        "RIGHT: dominant-pole error vs (M5, M6) width variation",
        *format_table(("", *[f"M6 {v:+.0%}" for v in AXIS]), grid_rows),
    )

    write_record("fig6_rcnetb", {
        "model_size": model.size,
        "num_instances": study.num_instances,
        "total_poles": study.total_poles,
        "max_pole_error": study.max_error,
        "max_grid_error": float(grid.max()),
    })

    # Paper's quantitative claims.
    assert study.total_poles == 1000
    assert study.max_error < 1.2e-3   # paper: max error < 0.12% of 1000 poles
    assert grid.max() < 3.0e-3        # paper: largest error < 0.3%
    assert model.size <= 50           # paper: 40
