"""Benchmark record emission: one ``BENCH_<name>.json`` per benchmark.

Every ``bench_*.py`` writes its headline numbers (timings, speedups,
errors, model sizes) through :func:`write_record` so the performance
trajectory of the runtime is tracked *across PRs*: CI uploads
``benchmarks/records/`` as an artifact on every run, and a record
carries enough machine context (python / numpy / scipy versions, CPU
count, smoke flag) to interpret its numbers later.

Records are plain JSON -- numpy scalars and arrays are converted on the
way out -- and deliberately flat: ``{"benchmark": ..., "machine": ...,
"results": ...}``.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone

RECORDS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "records")


def machine_info() -> dict:
    """Versions and hardware context stamped into every record."""
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "smoke": os.environ.get("BENCH_SMOKE") == "1",
    }


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into JSON-native types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.complexfloating,)) or isinstance(value, complex):
        return {"real": float(value.real), "imag": float(value.imag)}
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def write_record(name: str, results: dict) -> str:
    """Write ``BENCH_<name>.json`` under ``benchmarks/records/``.

    ``results`` is the benchmark's own payload (timings in seconds,
    speedup factors, error levels, workload sizes).  Returns the path
    written, so benchmarks can report it.
    """
    os.makedirs(RECORDS_DIR, exist_ok=True)
    record = {
        "benchmark": name,
        "written_at": datetime.now(timezone.utc).isoformat(),
        "machine": machine_info(),
        "results": _jsonable(results),
    }
    path = os.path.join(RECORDS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
