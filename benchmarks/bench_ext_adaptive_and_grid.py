"""Extension benchmarks: adaptive reduction + power-grid workload.

Not paper artifacts -- these cover the repository's extensions, chosen
from the design choices DESIGN.md calls out:

1. **Adaptive Algorithm 1** (:class:`repro.core.AdaptiveLowRankReducer`)
   against hand-picked orders on the rc-767 workload: the automatic
   rank/order selection should land at a model no larger than necessary
   for its accuracy target, at the same single-factorization cost.
2. **Power-grid mesh** workload: the reducers were developed on trees
   and buses; a 2-D mesh has a very different graph structure.  We
   check the variational low-rank model tracks IR-drop-style transfer
   under sheet-resistance variation.
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.circuits import power_grid_mesh, with_random_variations
from repro.core import AdaptiveLowRankReducer, LowRankReducer
from repro.linalg import reset_factorization_count


def test_ext_adaptive(benchmark, report, rc767):
    reducer = AdaptiveLowRankReducer(target_error=1e-4, max_order=8)
    reset_factorization_count()
    model, adaptive_report = benchmark.pedantic(
        lambda: reducer.reduce(rc767), rounds=1, iterations=1
    )
    factorizations = reset_factorization_count()

    frequencies = np.logspace(7, 10, 25)
    point = [0.5, 0.5]
    full = rc767.instantiate(point).frequency_response(frequencies)[:, 0, 0]
    red = model.frequency_response(frequencies, point)[:, 0, 0]
    true_error = np.abs(full - red).max() / np.abs(full).max()

    manual_rows = []
    for k in (2, 4, 6):
        manual = LowRankReducer(num_moments=k, rank=1).reduce(rc767)
        manual_red = manual.frequency_response(frequencies, point)[:, 0, 0]
        manual_error = np.abs(full - manual_red).max() / np.abs(full).max()
        manual_rows.append((f"manual k={k}", manual.size, f"{manual_error:.2e}"))

    report(
        "=== EXT: adaptive Algorithm 1 on rc-767 ===",
        adaptive_report.summary(),
        f"factorizations: {factorizations}",
        *format_table(
            ("model", "size", "response err @ (0.5, 0.5)"),
            manual_rows
            + [(f"adaptive (k={adaptive_report.final_order})", model.size,
                f"{true_error:.2e}")],
        ),
    )

    write_record("ext_adaptive", {
        "final_order": adaptive_report.final_order,
        "model_size": model.size,
        "factorizations": factorizations,
        "true_error": true_error,
    })

    assert adaptive_report.converged
    assert factorizations == 1
    assert true_error < 100 * reducer.target_error


def test_ext_power_grid(benchmark, report):
    netlist = power_grid_mesh(12, 12, num_supplies=3)
    parametric = with_random_variations(netlist, 2, seed=11, relative_spread=0.5)
    model = benchmark(lambda: LowRankReducer(num_moments=4, rank=1).reduce(parametric))

    frequencies = np.logspace(7, 10, 20)
    rows = []
    worst = 0.0
    for point in ([0.4, 0.4], [-0.4, 0.4], [0.4, -0.4]):
        full = parametric.instantiate(point).frequency_response(frequencies)
        red = model.frequency_response(frequencies, point)
        error = np.abs(full - red).max() / np.abs(full).max()
        worst = max(worst, error)
        rows.append((str(point), f"{error:.2e}"))

    report(
        "=== EXT: power-grid mesh (12x12, 3 supply taps), 2 sources ===",
        f"full {parametric.order} states -> reduced {model.size}",
        *format_table(("corner", "response err"), rows),
    )

    write_record("ext_power_grid", {
        "full_order": parametric.order,
        "model_size": model.size,
        "worst_error": worst,
    })

    assert worst < 1e-2
    assert model.size < parametric.order
