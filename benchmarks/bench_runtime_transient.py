"""Runtime engine: batched vs. looped transient ensemble simulation.

PR 1's benchmark (`bench_runtime_batch.py`) measured the frequency
axis; this one measures the time axis.  Workload: the step response of
every instance of an RC-ladder scenario ensemble -- the waveform
spread behind the delay/slew variability metrics.

- looped:  ``model.instantiate(p)`` +
  :func:`repro.analysis.timedomain.simulate_transient` per instance --
  one dense factorization per instance plus one Python iteration per
  (instance, timestep) pair;
- batched: :func:`repro.runtime.transient.batch_simulate_transient` --
  one stacked LAPACK solve yields every instance's discrete
  propagators, after which each timestep advances the whole ensemble
  as a single ``(m, q)``-block matmul.

Asserted: >= 5x speedup for the 128-instance ladder ensemble (the
acceptance bar for the batched time-domain runtime) and agreement of
the two paths to 1e-12 relative.

Set ``BENCH_SMOKE=1`` to run a tiny configuration with the timing
assertions disabled (CI keeps the script from bit-rotting without
paying benchmark wall-clock).
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.montecarlo import sample_parameters
from repro.analysis.timedomain import simulate_transient
from repro.circuits import rc_ladder, with_random_variations
from repro.core import LowRankReducer
from repro.runtime import StepInput, batch_simulate_transient, default_horizon

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_INSTANCES = 8 if SMOKE else 128
NUM_STEPS = 20 if SMOKE else 400
LADDER_SEGMENTS = 10 if SMOKE else 60
NUM_PARAMETERS = 2
SEED = 2005
WAVEFORM = StepInput()


def _looped_ensemble(model, samples, t_final, method):
    outputs = np.empty(
        (samples.shape[0], NUM_STEPS + 1, model.nominal.num_outputs)
    )
    for i, point in enumerate(samples):
        system = model.instantiate(point)
        outputs[i] = simulate_transient(
            system, WAVEFORM, t_final, NUM_STEPS, method=method
        ).outputs
    return outputs


def _time(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_ensemble(parametric, method, loop_repeats=1, batch_repeats=3):
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    samples = sample_parameters(
        NUM_INSTANCES, parametric.num_parameters, three_sigma=0.3, seed=SEED
    )
    t_final = default_horizon(model)
    loop_seconds, loop_outputs = _time(
        lambda: _looped_ensemble(model, samples, t_final, method), loop_repeats
    )
    batch_seconds, batch_result = _time(
        lambda: batch_simulate_transient(
            model, samples, WAVEFORM, t_final, NUM_STEPS, method=method
        ),
        batch_repeats,
    )
    scale = np.abs(loop_outputs).max()
    return {
        "model_size": model.size,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "error": np.abs(batch_result.outputs - loop_outputs).max() / scale,
        "timesteps": NUM_INSTANCES * NUM_STEPS,
    }


def test_runtime_transient_speedup(report):
    parametric = with_random_variations(
        rc_ladder(LADDER_SEGMENTS), NUM_PARAMETERS, seed=3
    )
    results = {
        method: _run_ensemble(parametric, method)
        for method in ("trapezoidal", "backward_euler")
    }

    rows = [
        (
            method,
            NUM_INSTANCES,
            result["model_size"],
            NUM_STEPS,
            f"{result['loop_seconds']:.2f}s",
            f"{result['batch_seconds']:.3f}s",
            f"{result['speedup']:.1f}x",
            f"{result['error']:.1e}",
        )
        for method, result in results.items()
    ]
    report(
        "=== RUNTIME: batched vs. looped transient ensemble "
        f"(RC ladder, {NUM_INSTANCES} instances x {NUM_STEPS} steps"
        f"{', SMOKE' if SMOKE else ''}) ===",
        *format_table(
            ("method", "instances", "q", "steps", "loop", "batch", "speedup",
             "error"),
            rows,
        ),
    )

    write_record("runtime_transient", results)

    # The two paths must agree to 1e-12 relative regardless of mode.
    for result in results.values():
        assert result["error"] <= 1e-12
    if not SMOKE:
        # Acceptance bar: >= 5x speedup on the >= 64-instance ensemble.
        assert NUM_INSTANCES >= 64
        for result in results.values():
            assert result["speedup"] >= 5.0
