"""Figure 4: |Y11(f)| of a coupled 4-port RLC bus under 30% variation.

Paper setup (Section 5.2): a two-bit bus modeled as a coupled 4-port
RLC network, 180 segments per line, MNA size 1086 (ours: 1082), two
independent variational sources.  Three reduced models: nominal
projection (size 52), the proposed low-rank method (size 144, matching
moments "up to 12th order", 52 of them s-moments), and multi-point
expansion (3 samples, size 156).  Evaluated on a perturbed system with
a maximum 30% parametric variation over 5-45 GHz.

Shape reproduced: the RLC response is far more variation-sensitive
than the RC case; the nominal-projection model is "far from adequate"
while the low-rank model tracks the perturbed resonances accurately at
a smaller size than multi-point (whose factorization cost is 3x).
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table, series_lines
from repro.core import LowRankReducer, MultiPointReducer, NominalReducer
from repro.linalg import factorization_count, reset_factorization_count

FREQUENCIES = np.linspace(5e9, 4.5e10, 60)
PERTURBATION = [0.3, -0.3]  # maximum 30% parametric variation


def y11(model, p=None):
    if p is None:
        return model.frequency_response(FREQUENCIES)[:, 0, 0]
    return model.frequency_response(FREQUENCIES, p)[:, 0, 0]


def test_fig4_rlc_bus(benchmark, report, bus_parametric):
    reset_factorization_count()
    low_rank = benchmark.pedantic(
        lambda: LowRankReducer(num_moments=13, rank=1).reduce(bus_parametric),
        rounds=1,
        iterations=1,
    )
    low_rank_factorizations = reset_factorization_count()
    samples = np.array([[0.0, 0.0], [0.35, 0.35], [-0.35, -0.35]])
    multi_point = MultiPointReducer(samples, num_moments=13).reduce(bus_parametric)
    multi_point_factorizations = reset_factorization_count()
    nominal = NominalReducer(num_moments=13).reduce(bus_parametric)

    full_nominal = np.abs(y11(bus_parametric.instantiate([0.0, 0.0])))
    full_perturbed_response = y11(bus_parametric.instantiate(PERTURBATION))
    full_perturbed = np.abs(full_perturbed_response)

    models = {
        "Redu. Pert. : Nomi. Proj.": nominal,
        "Redu. Pert. : Low-Rank": low_rank,
        "Redu. Pert. : Multi-point": multi_point,
    }
    errors = {}
    for label, model in models.items():
        reduced = y11(model, PERTURBATION)
        errors[label] = np.abs(reduced - full_perturbed_response).max() / full_perturbed.max()

    rows = [
        (label, model.size, f"{errors[label]:.4f}")
        for label, model in models.items()
    ]
    report(
        "=== FIG 4: coupled 4-port RLC bus (MNA 1082), 30% variation ===",
        f"factorizations: low-rank={low_rank_factorizations}, "
        f"multi-point={multi_point_factorizations} (paper: 'three times larger')",
        *format_table(("model", "size", "linf err"), rows),
        "",
        *series_lines("Nominal full |Y11|", FREQUENCIES, full_nominal, 10),
        *series_lines("Perturbed full |Y11|", FREQUENCIES, full_perturbed, 10),
        *series_lines(
            "Low-rank ROM |Y11|", FREQUENCIES, np.abs(y11(low_rank, PERTURBATION)), 10
        ),
    )

    write_record("fig4_rlc_bus", {
        "model_sizes": {label: model.size for label, model in models.items()},
        "errors": errors,
        "factorizations": {
            "low_rank": low_rank_factorizations,
            "multi_point": multi_point_factorizations,
        },
    })

    # Paper's qualitative claims.
    # (1) RLC frequency response is sensitive to parametric variation.
    shift = np.abs(full_perturbed - full_nominal).max() / full_perturbed.max()
    assert shift > 0.15
    # (2) Nominal-only information is far from adequate.
    assert errors["Redu. Pert. : Nomi. Proj."] > 3 * errors["Redu. Pert. : Low-Rank"]
    # (3) The low-rank model captures the variation accurately.
    assert errors["Redu. Pert. : Low-Rank"] < 0.05
    # (4) Cost: multi-point needs one factorization per sample.
    assert low_rank_factorizations == 1
    assert multi_point_factorizations == len(samples)
    # (5) Sizes in the paper's ballpark (paper: 52 / 144 / 156).
    assert nominal.size <= 60
    assert low_rank.size <= 170
    assert multi_point.size <= 170
