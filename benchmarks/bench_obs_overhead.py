"""Observability overhead: the disabled path must be free.

Every hot loop of the runtime is instrumented with :mod:`repro.obs`
spans and counters, and the contract (stated in ``repro.obs.trace``)
is that with no sink installed the instrumentation costs one truthiness
check per *chunk*.  This benchmark enforces the contract on the
runtime's acceptance workload, the 64-instance RCNetA Monte Carlo
sweep:

- direct:   the internal streaming driver, called with precomputed
  samples -- the routed kernel minus the engine *and* minus any
  instrumented dispatch;
- disabled: ``Study.run()`` with no trace sink -- the instrumented
  engine on its no-op observability path.  Must cost < 1% over
  ``direct`` (a budget that also absorbs the engine's own dispatch,
  separately bounded by ``bench_engine_overhead.py``);
- enabled:  the same study with a memory sink attached, recorded for
  information only (tracing is opt-in, so it may cost what it costs).

Results are recorded to ``BENCH_obs_overhead.json`` via
:mod:`benchmarks._record`.  Set ``BENCH_SMOKE=1`` for a tiny
configuration with the timing assertion disabled.
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.montecarlo import sample_parameters
from repro.core import LowRankReducer
from repro.obs import MemorySink
from repro.obs import trace as obs_trace
from repro.runtime import Study
from repro.runtime.stream import _stream_sweep_study

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_INSTANCES = 8 if SMOKE else 64
NUM_POLES = 5
FREQUENCIES = np.logspace(7, 10, 6 if SMOKE else 120)
REPEATS = 3 if SMOKE else 20
TRIALS = 1 if SMOKE else 3
SEED = 2005
OVERHEAD_BUDGET = 0.01


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _paired_overhead_trial(fn_base, fn_test, repeats):
    """One overhead estimate: paired-median of ``fn_test - fn_base``.

    Each repetition times both rivals back to back (alternating order),
    so slow machine phases hit both and cancel in the difference; the
    median of the differences rejects the stragglers that survive.
    Returns ``(overhead_fraction, base_seconds, test_seconds)`` with the
    base measured as its median repetition.
    """
    diffs = []
    bases = []
    for index in range(repeats):
        if index % 2 == 0:
            base = _timed(fn_base)
            test = _timed(fn_test)
        else:
            test = _timed(fn_test)
            base = _timed(fn_base)
        diffs.append(test - base)
        bases.append(base)
    base_seconds = float(np.median(bases))
    diff_seconds = float(np.median(diffs))
    return diff_seconds / base_seconds, base_seconds, base_seconds + diff_seconds


def _min_overhead(fn_base, fn_test, repeats, trials):
    """The smallest paired-median overhead across independent trials.

    The sub-percent quantity of interest sits below this machine's
    trial-to-trial noise (~1.5%), which is symmetric: noise inflates
    some trials and deflates others, while a genuine regression shifts
    *every* trial up.  Taking the minimum across trials therefore
    stays below budget when the true overhead is ~0 and clears it when
    the true overhead exceeds the budget by the noise margin.
    """
    best = (np.inf, np.inf, np.inf)
    for _ in range(trials):
        estimate = _paired_overhead_trial(fn_base, fn_test, repeats)
        if estimate[0] < best[0]:
            best = estimate
    return best


def test_observability_disabled_overhead(report, rcneta):
    model = LowRankReducer(num_moments=4, rank=1).reduce(rcneta)
    samples = sample_parameters(
        NUM_INSTANCES, rcneta.num_parameters, three_sigma=0.3, seed=SEED
    )

    def direct():
        return _stream_sweep_study(
            model, FREQUENCIES, samples,
            chunk_size=NUM_INSTANCES, num_poles=NUM_POLES, keep_responses=True,
        )

    def study():
        return (
            Study(model)
            .scenarios(samples)
            .sweep(FREQUENCIES, keep_responses=True)
            .poles(NUM_POLES)
        )

    def disabled():
        return study().run()

    def enabled():
        return study().trace(MemorySink()).run()

    # The premise of the comparison: no sink is installed, so every
    # span call in the timed region takes the no-op path.
    assert not obs_trace.enabled(), "a trace sink leaked into the benchmark"

    # Warm all paths (kernel caches, memoized stacks) before timing,
    # and pin down that the instrumentation changes nothing numerically.
    direct_result = direct()
    disabled_result = disabled()
    enabled_result = enabled()
    np.testing.assert_array_equal(
        disabled_result.responses, direct_result.responses
    )
    np.testing.assert_array_equal(disabled_result.poles, direct_result.poles)
    np.testing.assert_array_equal(enabled_result.poles, direct_result.poles)
    assert not obs_trace.enabled(), "Study.run() leaked its trace sink"

    overhead, direct_seconds, disabled_seconds = _min_overhead(
        direct, disabled, REPEATS, TRIALS
    )

    # Enabled tracing is informational: time it the same way, but do
    # not gate on it (tracing is opt-in and may cost what it costs).
    enabled_overhead, _, enabled_seconds = _min_overhead(
        direct, enabled, REPEATS, TRIALS
    )

    report(
        "=== OBS: instrumented engine vs direct kernel call "
        f"({NUM_INSTANCES}-instance RCNetA sweep, {FREQUENCIES.size} freqs) ===",
        *format_table(
            ("mode", "seconds", "overhead vs direct"),
            [
                ("direct", f"{direct_seconds * 1e3:.2f}ms", "--"),
                ("tracing disabled", f"{disabled_seconds * 1e3:.2f}ms",
                 f"{overhead * 100:+.2f}%"),
                ("tracing enabled", f"{enabled_seconds * 1e3:.2f}ms",
                 f"{enabled_overhead * 100:+.2f}%"),
            ],
        ),
    )
    write_record("obs_overhead", {
        "num_instances": NUM_INSTANCES,
        "num_frequencies": int(FREQUENCIES.size),
        "model_size": model.size,
        "direct_seconds": direct_seconds,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "disabled_overhead_fraction": overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "budget_fraction": OVERHEAD_BUDGET,
    })

    if not SMOKE:
        # The contract: instrumentation with tracing off is free.
        assert overhead < OVERHEAD_BUDGET, (
            f"disabled-tracing overhead {overhead * 100:.2f}% exceeds "
            f"{OVERHEAD_BUDGET * 100:.0f}%"
        )
