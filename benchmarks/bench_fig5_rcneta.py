"""Figure 5: RCNetA clock-tree pole accuracy under metal width variation.

Paper setup (Section 5.3): RCNetA is a 78-node industrial RC clock-tree
net routed on M5/M6/M7 with three independent metal-line-width
variational parameters; sensitivities from parasitic extraction.  A
low-rank parametric model of size 29 (s-moments to 4th order, others to
2nd) is compared against the perturbed full model:

- left plot: histogram of the relative errors of the 5 most dominant
  poles over Monte Carlo instances (widths varied +-30%, 3-sigma,
  normal) -- paper: "completely negligible" errors;
- right plot: error of the most dominant pole as a function of M5/M6
  width over -30%..+30% -- paper: well below 0.35%.
"""

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis import monte_carlo_pole_study, pole_error_grid
from repro.core import LowRankReducer

NUM_INSTANCES = 200
NUM_POLES = 5
AXIS = np.linspace(-0.3, 0.3, 5)


def test_fig5_rcneta(benchmark, report, rcneta):
    model = benchmark(lambda: LowRankReducer(num_moments=4, rank=1).reduce(rcneta))

    study = monte_carlo_pole_study(
        rcneta, model, num_instances=NUM_INSTANCES, num_poles=NUM_POLES,
        three_sigma=0.3, seed=2005,
    )
    counts, edges = study.histogram(bins=10)
    histogram_rows = [
        (f"{edges[i]:.2e}..{edges[i + 1]:.2e} %", int(counts[i]))
        for i in range(len(counts))
    ]

    grid = pole_error_grid(
        rcneta, model, AXIS, vary_indices=(0, 1),
        fixed_point=np.zeros(rcneta.num_parameters), num_poles=1,
    )
    grid_rows = []
    for i, m5 in enumerate(AXIS):
        grid_rows.append(
            (f"M5 {m5:+.0%}",)
            + tuple(f"{grid[i, j] * 100:.2e}%" for j in range(len(AXIS)))
        )

    report(
        "=== FIG 5: RCNetA (78 unknowns, 3 width params), ROM size "
        f"{model.size} (paper 29) ===",
        f"Monte Carlo: {study.num_instances} instances x {NUM_POLES} poles "
        f"= {study.total_poles} pole comparisons",
        f"max pole error: {study.max_error * 100:.3e}% "
        "(paper: 'completely negligible')",
        "",
        "LEFT: pole-error histogram (% error, occurrences)",
        *format_table(("bin", "count"), histogram_rows),
        "",
        "RIGHT: dominant-pole error vs (M5, M6) width variation; columns "
        + ", ".join(f"M6 {v:+.0%}" for v in AXIS),
        *format_table(("", *[f"M6 {v:+.0%}" for v in AXIS]), grid_rows),
    )

    write_record("fig5_rcneta", {
        "model_size": model.size,
        "num_instances": study.num_instances,
        "total_poles": study.total_poles,
        "max_pole_error": study.max_error,
        "max_grid_error": float(grid.max()),
    })

    # Paper's quantitative regime: errors completely negligible.
    assert study.max_error < 1e-3  # < 0.1% over all instances and poles
    assert grid.max() < 3.5e-3     # paper's right plot tops out at 0.35%
    assert model.size <= 45        # paper: 29 (ours matches more moments)
