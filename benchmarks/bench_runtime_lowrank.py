"""Runtime engine: low-rank eigensystem updates vs. per-instance eig.

When a reduced model's parameter sensitivities are genuinely low-rank,
the sweep kernel's per-instance dense eigendecomposition (``O(q^3)``
each) is replaced by one *nominal* eigendecomposition plus a small
Woodbury correction block per (instance, frequency) pair
(:mod:`repro.runtime.lowrank`).  This benchmark measures that exchange
on a 64-instance RCNetA response sweep:

- eig:     the dense sweep kernel -- one ``q x q`` eigendecomposition
  per instance, rational-sum responses from the eigenvalues;
- lowrank: the ensemble solver -- the nominal eigenbasis is factored
  once, each instance contributes only a ``rho x rho`` correction
  solve per frequency (``rho`` = total detected sensitivity rank).

The low-rank carrier is the ``approximate_sensitivities`` reduction
variant, whose projected sensitivity blocks keep numerical rank ~6 at
q = 42 (the exact-sensitivity reduction is intentionally full-rank and
routes to the eig kernel -- see ``BENCH_ablation_lowrank``).

Asserted: >= 3x speedup for the 64-instance sweep (the acceptance bar
for the low-rank route), agreement of the two paths to 1e-10 relative,
and that the engine planner actually routes this workload to the
low-rank kernel.

Set ``BENCH_SMOKE=1`` to run a tiny configuration with the timing
assertions disabled.
"""

import os
import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.analysis.montecarlo import sample_parameters
from repro.core import LowRankReducer
from repro.runtime.batch import _sweep_study
from repro.runtime.engine import Study
from repro.runtime.lowrank import lowrank_solver

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
NUM_INSTANCES = 8 if SMOKE else 64
FREQUENCIES = np.logspace(7, 10, 6 if SMOKE else 48)
SEED = 2005
REPEATS = 2 if SMOKE else 7


def _time(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_runtime_lowrank_speedup(report, rcneta):
    model = LowRankReducer(
        num_moments=4, rank=1, approximate_sensitivities=True
    ).reduce(rcneta)
    samples = sample_parameters(
        NUM_INSTANCES, rcneta.num_parameters, three_sigma=0.3, seed=SEED
    )

    solver = lowrank_solver(model)
    assert solver is not None, "low-rank structure must be detectable"

    eig_seconds, (eig_h, _) = _time(
        lambda: _sweep_study(
            model, FREQUENCIES, samples, num_poles=None, want_poles=False
        ),
        REPEATS,
    )
    low_seconds, low_h = _time(
        lambda: solver.responses(samples, FREQUENCIES), REPEATS
    )

    scale = np.abs(eig_h).max()
    response_error = np.abs(low_h - eig_h).max() / scale

    plan = Study(model).scenarios(samples).sweep(FREQUENCIES).plan()

    result = {
        "model_size": model.size,
        "detected_rank": solver.rank,
        "num_instances": NUM_INSTANCES,
        "num_frequencies": FREQUENCIES.size,
        "eig_seconds": eig_seconds,
        "lowrank_seconds": low_seconds,
        "speedup": eig_seconds / low_seconds,
        "response_error": response_error,
        "planner_kernel": plan.kernel,
        "estimated_flops": plan.estimated_flops,
    }

    report(
        "=== RUNTIME: low-rank eigensystem updates vs. per-instance eig "
        f"({NUM_INSTANCES} instances x {FREQUENCIES.size} frequencies) ===",
        *format_table(
            ("q", "rank", "eig", "lowrank", "speedup", "response err"),
            [(
                result["model_size"],
                result["detected_rank"],
                f"{eig_seconds * 1e3:.1f}ms",
                f"{low_seconds * 1e3:.1f}ms",
                f"{result['speedup']:.1f}x",
                f"{response_error:.1e}",
            )],
        ),
        f"planner kernel: {plan.kernel}",
    )

    write_record("runtime_lowrank", result)

    # Exactness and routing hold regardless of mode.
    assert response_error <= 1e-10
    assert plan.kernel == "lowrank-woodbury[sweep-study]"
    if not SMOKE:
        # Acceptance bar: the low-rank route must be >= 3x faster than
        # the per-instance eig kernel on the 64-instance dense sweep.
        assert result["speedup"] >= 3.0
