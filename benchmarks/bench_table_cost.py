"""Computational-cost claims (Section 4.2).

The paper's cost argument: the dominant cost of Algorithm 1 is ONE
sparse factorization of ``G0`` -- the same as nominal PRIMA -- because
the matrix-implicit SVDs and the ``A0^T`` Krylov subspaces reuse the
factors (transpose solves).  The multi-point method pays one
factorization per sample; cost is otherwise "linear in both the moment
matching order k and the number of variational parameters np".

This benchmark measures (a) factorization counts, (b) wall-clock
scaling of Algorithm 1 in k and np, and asserts monotone, sub-quadratic
growth plus the factorization counts.
"""

import time

import numpy as np

from benchmarks._record import write_record
from benchmarks.conftest import format_table
from repro.circuits import rc_tree, with_random_variations
from repro.core import LowRankReducer, MultiPointReducer, NominalReducer, factorial_grid
from repro.linalg import reset_factorization_count


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_table_cost(benchmark, report, rc767):
    # -- factorization counts -----------------------------------------
    benchmark(lambda: LowRankReducer(num_moments=4, rank=1).reduce(rc767))
    # Count on a single explicit run (benchmark() repeats the kernel).
    reset_factorization_count()
    LowRankReducer(num_moments=4, rank=1).reduce(rc767)
    low_rank_factorizations_per_call = reset_factorization_count()

    NominalReducer(num_moments=8).reduce(rc767)
    nominal_factorizations = reset_factorization_count()

    grid = factorial_grid(2, 3, 0.5)
    MultiPointReducer(grid, num_moments=4).reduce(rc767)
    multi_factorizations = reset_factorization_count()

    # -- scaling in k and np -------------------------------------------
    k_rows = []
    k_times = []
    for k in (2, 4, 8):
        _, seconds = timed(lambda k=k: LowRankReducer(num_moments=k, rank=1).reduce(rc767))
        k_rows.append((k, f"{seconds * 1e3:.1f} ms"))
        k_times.append(seconds)

    np_rows = []
    np_times = []
    base_net = rc_tree(400, seed=77, resistance_range=(10.0, 20.0),
                       capacitance_range=(1e-14, 2e-14))
    for np_count in (1, 2, 4):
        parametric = with_random_variations(
            base_net, np_count, seed=78, relative_spread=0.5
        )
        _, seconds = timed(
            lambda p=parametric: LowRankReducer(num_moments=3, rank=1).reduce(p)
        )
        np_rows.append((np_count, f"{seconds * 1e3:.1f} ms"))
        np_times.append(seconds)

    report(
        "=== TBL-COST: factorizations and scaling (Section 4.2) ===",
        *format_table(
            ("method", "factorizations"),
            [
                ("nominal PRIMA", nominal_factorizations),
                ("low-rank (Algorithm 1)", f"{low_rank_factorizations_per_call:.0f}"),
                (f"multi-point ({len(grid)} samples)", multi_factorizations),
            ],
        ),
        "",
        "Algorithm 1 wall clock vs moment order k (rc-767):",
        *format_table(("k", "time"), k_rows),
        "",
        "Algorithm 1 wall clock vs parameter count np (400-node tree):",
        *format_table(("np", "time"), np_rows),
    )

    write_record("table_cost", {
        "factorizations": {
            "nominal": nominal_factorizations,
            "low_rank": low_rank_factorizations_per_call,
            "multi_point": multi_factorizations,
        },
        "moment_order_seconds": dict(zip(("k2", "k4", "k8"), k_times)),
        "parameter_count_seconds": dict(zip(("np1", "np2", "np4"), np_times)),
    })

    assert low_rank_factorizations_per_call == 1
    assert nominal_factorizations == 1
    assert multi_factorizations == len(grid)
    # Linear-ish scaling: 4x the moment order costs well under 16x.
    assert k_times[2] < 16 * max(k_times[0], 1e-4)
    # Linear-ish scaling in np: 4x parameters costs well under 16x.
    assert np_times[2] < 16 * max(np_times[0], 1e-4)
