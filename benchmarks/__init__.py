"""Benchmark harness regenerating every figure and table of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` module regenerates one paper artifact (Figs. 3-6, the
model-size and cost comparisons of Sections 3-4) or an ablation the
paper's text claims (SVD rank, dual subspaces, generalized vs raw
sensitivities).  The kernels are timed with pytest-benchmark; the
series/rows are printed to the terminal and shape-asserted.
"""
