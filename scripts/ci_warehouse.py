#!/usr/bin/env python
"""CI warehouse drill: kill a worker mid-drain, ingest, aggregate exactly.

The warehouse's operational contract is not "one tidy run converts to
Parquet" (the unit and property tests cover that in-process) but "a
store assembled the ugly way -- two work-stealing workers, one of them
SIGKILLed mid-drain, the study finished by theft and later resumed --
still ingests into one coherent dataset whose aggregates equal the
in-RAM result bit for bit".  This script drills exactly that:

1. start two worker processes draining one 60-instance transient
   Monte Carlo study (chunk 3, so 20 claim units) through a shared
   ``StudyStore``,
2. SIGKILL one worker after it has checkpointed at least one chunk
   while the study is provably not drained (SIGSTOP first, re-check,
   then SIGKILL -- so the drain cannot complete between the check and
   the kill),
3. wait for the survivor: it must steal the dead worker's work, drain
   the store, and exit 0 with the merged result,
4. ingest the store through the ``repro query ingest`` CLI -- the
   dataset must carry BOTH workers' shard partitions, the victim's
   partial manifest included, with zero chunks skipped,
5. resume the same study in-process with the ``warehouse`` directive
   attached: the completion ingest must skip every chunk and add zero
   rows (structural idempotency across CLI and directive ingests),
6. aggregate with duckdb when installed (the stream engine otherwise):
   yield fraction, p99, and the full metric column must equal the
   in-RAM merged result exactly -- float64 bit equality, no tolerance
   -- and the ``repro query`` CLI must print the same numbers,
7. re-verify every provenance row's ``chunk_sha256`` against the store
   manifests and require both workers in the row attribution.

Exit code 0 means the drill passed.  CI uploads the Parquet dataset,
worker manifests, and logs as artifacts so a failure can be debugged
from the provenance records.

Usage:  python scripts/ci_warehouse.py [--workdir DIR]
"""

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# Small chunks + many instances = 20 claim units, so the kill always
# lands while plenty of work remains for the survivor to steal.
INSTANCES = 60
CHUNK = 3
NUM_CHUNKS = INSTANCES // CHUNK
STEPS = 40
VICTIM = "w1"
SURVIVOR = "w2"


def build_study():
    """The one study declaration every role shares.

    Workers and the resume run construct the study from this single
    function, so the fingerprint is identical by construction -- the
    drill tests the warehouse, not netlist-argument replication.
    """
    from repro import (
        LowRankReducer,
        MonteCarloPlan,
        Study,
        rc_tree,
        with_random_variations,
    )

    parametric = with_random_variations(rc_tree(30, seed=5), 2, seed=7)
    model = LowRankReducer(num_moments=3, rank=1).reduce(parametric)
    return (
        Study(model)
        .scenarios(MonteCarloPlan(num_instances=INSTANCES, seed=11))
        .transient(num_steps=STEPS)
        .chunk(CHUNK)
    )


def run_worker(store: pathlib.Path, worker_id: str) -> int:
    study = build_study().store(store)
    result = study.work(ttl=2.0, poll=0.05, worker=worker_id)
    report = study.drain_report()
    print(
        f"# worker {worker_id}: drained={report.drained} "
        f"computed={len(report.computed)} stolen={len(report.stolen)}"
    )
    return 0 if result is not None else 3


def cli_environment():
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    return environment


def run_cli(arguments, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=cli_environment(), text=True, **kwargs,
    )


def spawn_worker(store: pathlib.Path, worker_id: str, log_path: pathlib.Path):
    handle = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--role", "worker", "--store", str(store), "--worker-id", worker_id],
        env=cli_environment(), stdout=handle, stderr=subprocess.STDOUT,
    )
    process._log_handle = handle  # closed with the process
    return process


def worker_chunks(store: pathlib.Path, worker_id: str):
    """Chunk indexes recorded by one worker's manifest(s)."""
    indexes = set()
    for path in store.glob(f"manifest-*.worker-{worker_id}.json"):
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        indexes.update(int(index) for index in manifest.get("chunks", {}))
    return indexes


def fail(message: str, *logs: pathlib.Path):
    print(f"FAIL: {message}")
    for log in logs:
        if log.exists():
            print(f"--- {log.name} ---")
            print(log.read_text())
    sys.exit(1)


def kill_mid_drain(store: pathlib.Path, process, log: pathlib.Path):
    """SIGKILL the victim once it has checkpointed but before drain."""
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail("victim exited before the kill landed", log)
        victim = worker_chunks(store, VICTIM)
        done = victim | worker_chunks(store, SURVIVOR)
        if victim and len(done) < NUM_CHUNKS:
            # Freeze, re-check under the freeze, then kill: the study
            # cannot drain between the check and the SIGKILL.
            os.kill(process.pid, signal.SIGSTOP)
            victim = worker_chunks(store, VICTIM)
            done = victim | worker_chunks(store, SURVIVOR)
            if victim and len(done) < NUM_CHUNKS:
                os.kill(process.pid, signal.SIGKILL)
                process.wait(timeout=30.0)
                print(
                    f"killed {VICTIM} with {len(victim)} chunk(s) saved, "
                    f"{NUM_CHUNKS - len(done)} still pending"
                )
                return victim
            os.kill(process.pid, signal.SIGCONT)
        time.sleep(0.02)
    fail("timed out waiting for a mid-drain kill window", log)


def run_driver(workdir: pathlib.Path) -> int:
    import numpy as np

    from repro import StudyStore
    from repro.warehouse import QueryEngine, have_duckdb, have_pyarrow

    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    store = workdir / "store"
    wh = workdir / "wh"
    logs = {
        worker: workdir / f"worker-{worker}.log"
        for worker in (VICTIM, SURVIVOR)
    }

    # -- 1/2: two workers, one SIGKILLed mid-drain ---------------------
    processes = {
        worker: spawn_worker(store, worker, logs[worker])
        for worker in (VICTIM, SURVIVOR)
    }
    try:
        victim_chunks = kill_mid_drain(
            store, processes[VICTIM], logs[VICTIM]
        )
        # -- 3: the survivor must steal the rest and drain -------------
        survivor = processes[SURVIVOR]
        try:
            returncode = survivor.wait(timeout=600.0)
        except subprocess.TimeoutExpired:
            survivor.kill()
            fail("survivor did not drain the store", logs[SURVIVOR])
        if returncode != 0:
            fail(f"survivor exited {returncode}, wanted a full drain",
                 logs[SURVIVOR])
    finally:
        for process in processes.values():
            if process.poll() is None:
                process.kill()
            process._log_handle.close()
    survivor_chunks = worker_chunks(store, SURVIVOR)
    if not victim_chunks or not survivor_chunks:
        fail(f"both workers must checkpoint: victim={sorted(victim_chunks)} "
             f"survivor={sorted(survivor_chunks)}", *logs.values())
    if victim_chunks | survivor_chunks != set(range(NUM_CHUNKS)):
        fail("worker manifests do not cover the study", *logs.values())
    print(f"survivor drained: victim saved {len(victim_chunks)} chunk(s), "
          f"survivor {len(survivor_chunks)}")

    # -- 4: CLI ingest -- both workers' shards, nothing skipped --------
    ingest = run_cli(["query", "ingest", str(wh), str(store)],
                     capture_output=True)
    (workdir / "ingest.log").write_text(ingest.stdout + ingest.stderr)
    if ingest.returncode != 0:
        fail(f"repro query ingest exited {ingest.returncode}",
             workdir / "ingest.log")
    if f"chunks:  {NUM_CHUNKS} ingested, 0 skipped" not in ingest.stdout:
        fail(f"expected {NUM_CHUNKS} chunks ingested, got:\n{ingest.stdout}")
    print(ingest.stdout.splitlines()[0])

    store_handle = StudyStore(store)
    keys = store_handle.study_keys()
    if len(keys) != 1:
        fail(f"expected one study in the store, found {keys}")
    key = keys[0]
    shards = sorted(
        path.name for path in (wh / f"key16={key[:16]}").glob("shard=*")
    )
    if shards != [f"shard=w-{VICTIM}", f"shard=w-{SURVIVOR}"]:
        fail(f"dataset must carry both workers' partitions, got {shards}")
    print(f"dataset partitions: {', '.join(shards)}")

    # -- 5: resume with the directive -- idempotent re-ingest ----------
    study = build_study().store(store).warehouse(wh)
    result = study.run()
    report = study.warehouse_report()
    if report.chunks != 0 or report.rows_added != 0:
        fail(f"resume re-ingest must be a no-op, got {report}")
    if report.skipped != NUM_CHUNKS:
        fail(f"resume must skip all {NUM_CHUNKS} chunks, got {report}")
    if len(result.delays) != INSTANCES:
        fail(f"merged result has {len(result.delays)} instances")
    print(f"resume re-ingest: 0 chunks converted, {report.skipped} skipped")

    # -- 6: exact aggregation against the in-RAM result ----------------
    engine_name = "duckdb" if have_duckdb() else "stream"
    engine = QueryEngine(wh, engine=engine_name)
    # Dataset order follows the shard partitions (the victim's chunks
    # sort before the survivor's), so compare the column as a multiset
    # and then pin every value to its instance via the outlier rows.
    values = engine.metric_values("delay")
    if not np.array_equal(np.sort(values), np.sort(result.delays)):
        fail(f"{engine_name} metric column differs from the in-RAM delays")
    for row in engine.outliers("delay", k=INSTANCES):
        if row["delay"] != result.delays[row["instance"]]:
            fail(f"instance {row['instance']} delay differs from the "
                 f"in-RAM result: {row['delay']!r}")

    limit = float(np.median(result.delays))
    yielded = engine.yield_fraction("delay", limit)
    passed = int(np.count_nonzero(result.delays <= limit))
    if (yielded["passed"], yielded["total"]) != (passed, INSTANCES):
        fail(f"yield mismatch: {yielded} vs {passed}/{INSTANCES}")

    p99 = engine.percentile("delay", 99.0)
    reference = float(np.percentile(result.delays, 99.0))
    if p99["value"] != reference:  # bitwise, not a tolerance
        fail(f"p99 mismatch: {p99['value']!r} != {reference!r}")
    print(f"{engine_name} aggregates match in-RAM result exactly "
          f"(yield {yielded['passed']}/{yielded['total']}, "
          f"p99 {p99['value']:.6e}s)")

    cli_yield = run_cli(
        ["query", "yield", str(wh), "--metric", "delay",
         "--limit", repr(limit), "--engine", engine_name],
        capture_output=True,
    )
    if cli_yield.returncode != 0:
        fail(f"repro query yield exited {cli_yield.returncode}:\n"
             f"{cli_yield.stderr}")
    document = json.loads(cli_yield.stdout)
    if (document["passed"], document["total"]) != (passed, INSTANCES):
        fail(f"CLI yield mismatch: {document}")
    print(f"repro query yield agrees: {document['passed']}/"
          f"{document['total']}")

    # -- 7: provenance -- sha256 per row, both workers attributed ------
    manifest_shas = {
        record["index"]: record["sha256"]
        for record in store_handle.lineage(key)
    }
    rows = engine.provenance()
    if len(rows) != NUM_CHUNKS:
        fail(f"expected {NUM_CHUNKS} provenance rows, got {len(rows)}")
    for row in rows:
        if row["chunk_sha256"] != manifest_shas[row["chunk"]]:
            fail(f"chunk {row['chunk']} provenance sha mismatch")
    workers = {row["worker"] for row in rows}
    if workers != {VICTIM, SURVIVOR}:
        fail(f"provenance must attribute both workers, got {workers}")
    print(f"provenance verified: {len(rows)} chunks match the store "
          f"manifests, workers {sorted(workers)}")

    backend = "parquet" if have_pyarrow() else "native (.npz)"
    print(f"PASS: warehouse drill complete "
          f"(backend: {backend}, engine: {engine_name})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="ci-warehouse",
                        type=pathlib.Path)
    parser.add_argument("--role", choices=("driver", "worker"),
                        default="driver", help=argparse.SUPPRESS)
    parser.add_argument("--store", type=pathlib.Path,
                        help=argparse.SUPPRESS)
    parser.add_argument("--worker-id", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.role == "worker":
        return run_worker(args.store, args.worker_id)
    return run_driver(args.workdir.resolve())


if __name__ == "__main__":
    sys.exit(main())
