#!/usr/bin/env python
"""CI end-to-end drill for the study service: kill a worker, hit the cache.

The service's operational contract is layered on the scheduler's: a
job submitted over HTTP must survive a cooperating worker dying
without cleanup, and an identical re-submission must cost nothing.
This script drills both against the real server process:

1. boot ``repro serve`` as a subprocess on an ephemeral port (with
   ``REPRO_TRACE`` set, so the server's span trace is a CI artifact),
2. submit the Monte Carlo job over HTTP (``workers: 2`` -- the server
   drains it through the lease scheduler rather than running solo),
3. start an external ``repro work montecarlo`` worker against the
   server's store with the *identical* declaration -- the wire schema
   and the CLI land on the same study fingerprints, so it joins the
   in-flight drain as a third participant,
4. SIGKILL the external worker while it provably holds a live claim on
   an unsaved chunk (SIGSTOP first, re-check, then kill -- the
   abandoned lease is guaranteed, not probabilistic),
5. the HTTP job must still complete: the server's drain participants
   steal the dead worker's lease (asserted via a ``lease.steal`` span
   in the server trace) and merge every worker's chunks,
6. re-submit the identical document: the response must come back
   ``cached``, **byte-identical**, with **zero recompute** -- the
   ``study.instances_evaluated`` counter, read from ``/metrics``, must
   not move,
7. save the job's NDJSON event stream and the result document next to
   the trace for the artifact upload.

Exit code 0 means the drill passed.

Usage:  python scripts/ci_serve_e2e.py [--workdir DIR]
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

INSTANCES = 128
CHUNK = 2  # 64 claim units per study side: plenty of room for the kill
SEGMENTS = 240  # ~481-state full model: each reference solve costs real time
VICTIM = "victim"

JOB = {
    "moments": 3,
    "plan": {"kind": "montecarlo", "instances": INSTANCES, "seed": 0},
    "workload": {"kind": "montecarlo", "poles": 3},
    "chunk": CHUNK,
    "workers": 2,
}
# The identical declaration, spelled in CLI flags (defaults align:
# parameters 2, spread 0.5, variation seed 0, sigma 0.3, rank 1).
WORKER_ARGS = [
    "--moments", "3", "--instances", str(INSTANCES), "--poles", "3",
    "--chunk", str(CHUNK), "--ttl", "3", "--poll", "0.05",
    "--worker-id", VICTIM,
]


def ladder_netlist(segments: int) -> str:
    lines = [".title ci-serve-e2e ladder", "Rdrv n0 0 10", "C0 n0 0 0.02p"]
    for k in range(1, segments + 1):
        lines.append(f"R{k} n{k - 1} n{k} 25")
        lines.append(f"C{k} n{k} 0 0.02p")
    lines.append(".port in n0")
    return "\n".join(lines) + "\n"


def cli_environment(**extra):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH") else ""
    )
    environment.update(extra)
    return environment


def saved_chunk_indices(store: pathlib.Path):
    """``(key16, index)`` pairs for every chunk any manifest records."""
    saved = set()
    for manifest_path in store.glob("manifest-*.json"):
        key16 = manifest_path.name[len("manifest-"):][:16]
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            continue
        saved.update((key16, int(index)) for index in
                     manifest.get("chunks", {}))
    return saved


def victim_pending_claim(store: pathlib.Path):
    """A (key16, chunk) the victim has claimed but not saved, else None."""
    saved = saved_chunk_indices(store)
    for claim in store.glob("claims/*/*.claim"):
        try:
            record = json.loads(claim.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(record, dict) or record.get("worker") != VICTIM:
            continue
        pending = (claim.parent.name, record.get("index"))
        if pending not in saved:
            return pending
    return None


def instances_evaluated(client) -> int:
    counters = client.metrics().get("counters", {})
    return counters.get("study.instances_evaluated", 0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="ci-serve-e2e")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    netlist = workdir / "ladder.sp"
    netlist.write_text(ladder_netlist(SEGMENTS))
    store = workdir / "store"
    job_document = {"netlist": netlist.read_text(), **JOB}
    (workdir / "job.json").write_text(json.dumps(job_document, indent=1))
    deadline = time.monotonic() + args.timeout

    # -- 1: boot the server on an ephemeral port -----------------------
    server_log = open(workdir / "server.log", "w")
    server = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", str(store),
         "--port", "0", "--pool-size", "2", "--ttl", "3", "--poll", "0.05"],
        env=cli_environment(REPRO_TRACE=str(workdir / "serve.trace")),
        stdout=subprocess.PIPE, stderr=server_log, text=True,
    )
    victim = None
    try:
        url = None
        while url is None:
            if server.poll() is not None:
                print(f"FAIL: server exited {server.returncode} at startup")
                return 1
            line = server.stdout.readline()
            match = re.search(r"serving on (http://\S+)", line or "")
            if match:
                url = match.group(1)
            elif time.monotonic() > deadline:
                print("FAIL: server announced no URL within the timeout")
                return 1
        print(f"server up on {url}")

        from repro.serve.client import ServeClient

        client = ServeClient(url, timeout=args.timeout)

        # -- 2: submit the job over HTTP -------------------------------
        job = client.submit(job_document)
        print(f"submitted {job['id']} ({job['state']}), "
              f"planned peak {job['peak_bytes']} bytes")

        # -- 3: an external worker joins the drain mid-job -------------
        victim_log = open(workdir / f"{VICTIM}.log", "w")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", "montecarlo",
             str(netlist), *WORKER_ARGS, "--store", str(store)],
            env=cli_environment(), stdout=victim_log, stderr=victim_log,
            text=True,
        )

        # -- 4: SIGKILL the worker holding a live pending claim --------
        abandoned = None
        while abandoned is None:
            if time.monotonic() > deadline:
                print("FAIL: kill condition not reached within the timeout")
                return 1
            if victim.poll() is not None:
                print(f"FAIL: victim exited (code {victim.returncode}) "
                      "before the kill condition was reached")
                return 1
            if victim_pending_claim(store) is None:
                time.sleep(0.002)
                continue
            victim.send_signal(signal.SIGSTOP)
            abandoned = victim_pending_claim(store)
            if abandoned is None:
                victim.send_signal(signal.SIGCONT)  # too late; try again
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=args.timeout)
        print(f"SIGKILLed the external worker holding the lease on chunk "
              f"{abandoned[1]} of study {abandoned[0]}…")

        # -- 5: the job must complete via steal/resume -----------------
        final = client.wait(
            job["id"], timeout=max(deadline - time.monotonic(), 1.0),
            poll=0.2,
        )
        if final["state"] != "done":
            print(f"FAIL: job finished {final['state']}: {final['error']}")
            return 1
        first_bytes = client.result_bytes(job["id"])
        result = json.loads(first_bytes)["result"]
        print(f"job completed after the kill: {result['num_instances']} "
              f"instances, max pole error {result['max_error']:.3e}")
        (workdir / "result.json").write_bytes(first_bytes)
        with open(workdir / "events.ndjson", "w") as stream:
            for event in client.events(job["id"]):
                stream.write(json.dumps(event, sort_keys=True) + "\n")

        # -- 6: identical re-submission: cached, byte-identical, free --
        before = instances_evaluated(client)
        again = client.submit(job_document)
        if not again["cached"] or again["state"] != "done":
            print(f"FAIL: re-submission not served from cache: {again}")
            return 1
        second_bytes = client.result_bytes(again["id"])
        if second_bytes != first_bytes:
            print("FAIL: cached response is not byte-identical")
            return 1
        evaluated = instances_evaluated(client) - before
        if evaluated != 0:
            print(f"FAIL: cached re-submission evaluated {evaluated} "
                  "instances (expected zero recompute)")
            return 1
        print(f"re-submission served from cache: {len(second_bytes)} "
              "byte-identical bytes, zero instances recomputed")
    finally:
        if victim is not None and victim.poll() is None:
            victim.kill()
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()
        server_log.close()

    # -- 7: the server must actually have stolen the dead lease --------
    from repro.obs import read_trace

    steals = [
        record["attrs"]
        for record in read_trace(workdir / "serve.trace")
        if record.get("type") == "span" and record.get("name") == "lease.steal"
    ]
    if not any(attrs.get("previous") == VICTIM for attrs in steals):
        print("FAIL: no lease.steal span naming the killed worker in the "
              "server trace -- the abandoned lease was never stolen")
        return 1
    stolen = next(a for a in steals if a.get("previous") == VICTIM)
    print(f"server stole the dead worker's lease (chunk "
          f"{stolen.get('index')}, {len(steals)} steal(s) total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
