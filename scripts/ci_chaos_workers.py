#!/usr/bin/env python
"""CI chaos drill: SIGKILL one of three work-stealing workers mid-study.

The scheduler's operational contract is not "leases round-trip" (the
unit and property tests cover that in-process) but "a worker that
**dies without cleanup** -- SIGKILL, no atexit, no release -- cannot
stall or corrupt a shared study".  This script drills exactly that
against the CLI:

1. run a one-shot ``repro batch`` on a generated RC-ladder netlist as
   the byte-level reference,
2. start three ``repro work batch`` workers against one shared
   ``--store`` (small chunks, so the study is hundreds of claim units),
3. SIGKILL one worker the moment it has checkpointed its first chunk
   AND holds a live claim on a chunk no manifest records yet
   (SIGSTOP first, re-check, then SIGKILL -- so the claim cannot slip
   to released or saved between the check and the kill), guaranteeing
   an abandoned lease on a pending chunk,
4. wait for the survivors: they must steal the dead worker's lease
   (same-host dead-pid fast path), drain the store, and each print the
   merged envelope CSV,
5. diff both survivors' CSVs against the one-shot run: byte-identical,
6. re-verify every chunk archive in every worker manifest against its
   recorded SHA-256 -- recomputed here, independently of the library --
   and check the union of chunk records covers the whole study,
7. read the survivors' JSONL traces and require a ``lease.steal`` span:
   the drill must actually have exercised stealing, not just luck.

Exit code 0 means the drill passed.  CI uploads the worker manifests,
traces, and logs as artifacts so a failure can be debugged from the
provenance records.

Usage:  python scripts/ci_chaos_workers.py [--workdir DIR]
"""

import argparse
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Small chunks + hundreds of instances = many claim units, so the kill
# always lands while plenty of work remains for the survivors.
STUDY_ARGS = [
    "--plan", "montecarlo", "--instances", "240", "--chunk", "2",
    "--points", "24", "--moments", "3", "--seed", "3",
]
WORK_ARGS = ["--ttl", "5", "--poll", "0.05"]
WORKERS = ("w1", "w2", "w3")
VICTIM = "w1"


def ladder_netlist(segments: int) -> str:
    lines = [".title ci-chaos-workers ladder", "Rdrv n0 0 10", "C0 n0 0 0.02p"]
    for k in range(1, segments + 1):
        lines.append(f"R{k} n{k - 1} n{k} 25")
        lines.append(f"C{k} n{k} 0 0.02p")
    lines.append(".port in n0")
    return "\n".join(lines) + "\n"


def cli_environment():
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    return environment


def run_cli(arguments, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=cli_environment(), text=True, **kwargs,
    )


def popen_cli(arguments, stdout, stderr):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        env=cli_environment(), stdout=stdout, stderr=stderr, text=True,
    )


def csv_lines(text: str):
    return [line for line in text.splitlines() if line and not line.startswith("#")]


def sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    digest.update(path.read_bytes())
    return digest.hexdigest()


def saved_chunk_indices(store: pathlib.Path):
    indices = set()
    for manifest_path in store.glob("manifest-*.json"):
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            continue
        indices.update(int(index) for index in manifest.get("chunks", {}))
    return indices


def victim_pending_claim(store: pathlib.Path):
    """Index of a chunk the victim has claimed but not saved, else None."""
    saved = saved_chunk_indices(store)
    for claim in store.glob("claims/*/*.claim"):
        try:
            record = json.loads(claim.read_text())
        except (OSError, ValueError):
            continue
        if (
            isinstance(record, dict)
            and record.get("worker") == VICTIM
            and record.get("index") not in saved
        ):
            return record["index"]
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="ci-chaos-workers")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    netlist = workdir / "ladder.sp"
    netlist.write_text(ladder_netlist(40))
    store = workdir / "store"

    # -- 1: one-shot reference -----------------------------------------
    one_shot = run_cli(["batch", str(netlist), *STUDY_ARGS], capture_output=True)
    if one_shot.returncode != 0:
        print(f"FAIL: one-shot run exited {one_shot.returncode}:\n{one_shot.stderr}")
        return 1
    reference = csv_lines(one_shot.stdout)
    print(f"one-shot reference: {len(reference) - 1} envelope rows")

    # -- 2: three workers against one store ----------------------------
    processes = {}
    logs = {}
    for worker in WORKERS:
        out = open(workdir / f"{worker}.csv", "w")
        err = open(workdir / f"{worker}.log", "w")
        logs[worker] = (out, err)
        processes[worker] = popen_cli(
            ["work", "batch", str(netlist), *STUDY_ARGS,
             "--store", str(store), "--worker-id", worker, *WORK_ARGS,
             "--trace", str(workdir / f"{worker}.trace")],
            stdout=out, stderr=err,
        )

    # -- 3: SIGKILL the victim with a checkpoint behind it and a live
    #       claim on an unsaved chunk.  SIGSTOP freezes the victim
    #       before the final check, so the claim cannot be released or
    #       the chunk saved between the check and the kill: the
    #       abandoned pending lease is guaranteed, not probabilistic.
    victim = processes[VICTIM]
    deadline = time.monotonic() + args.timeout
    try:
        abandoned = None
        while abandoned is None:
            if victim.poll() is not None:
                print(f"FAIL: victim exited (code {victim.returncode}) before "
                      "the kill condition was reached")
                return 1
            if time.monotonic() > deadline:
                print("FAIL: kill condition not reached within the timeout")
                return 1
            checkpointed = bool(
                list(store.glob(f"manifest-*.worker-{VICTIM}.json"))
            )
            if not (checkpointed and victim_pending_claim(store) is not None):
                time.sleep(0.002)
                continue
            victim.send_signal(signal.SIGSTOP)
            abandoned = victim_pending_claim(store)
            if abandoned is None:
                victim.send_signal(signal.SIGCONT)  # too late; try again
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=args.timeout)
        print(f"SIGKILLed {VICTIM} holding the lease on pending chunk "
              f"{abandoned} (exit {victim.returncode})")

        # -- 4: survivors must steal the lease and drain ---------------
        for worker in WORKERS:
            if worker == VICTIM:
                continue
            returncode = processes[worker].wait(
                timeout=max(deadline - time.monotonic(), 1.0)
            )
            if returncode != 0:
                print(f"FAIL: worker {worker} exited {returncode}; see "
                      f"{workdir / (worker + '.log')}")
                return 1
    finally:
        for worker, proc in processes.items():
            if proc.poll() is None:
                proc.kill()
        for out, err in logs.values():
            out.close()
            err.close()

    # -- 5: both survivors' merged CSVs are byte-identical -------------
    for worker in WORKERS:
        if worker == VICTIM:
            continue
        merged = csv_lines((workdir / f"{worker}.csv").read_text())
        if merged != reference:
            print(f"FAIL: worker {worker}'s merged CSV differs from the "
                  "one-shot run")
            return 1
    print("both survivors' merged CSVs are byte-identical to the one-shot run")

    # -- 6: independent verification of every chunk record -------------
    manifests = sorted(store.glob("manifest-*.json"))
    if not manifests:
        print("FAIL: no manifests in the store")
        return 1
    covered = set()
    total = None
    verified = 0
    for manifest_path in manifests:
        manifest = json.loads(manifest_path.read_text())
        total = manifest["layout"]["num_chunks"]
        for index, record in manifest["chunks"].items():
            archive = store / record["file"]
            if not archive.exists():
                print(f"FAIL: chunk {index} recorded in {manifest_path.name} "
                      f"but {record['file']} is missing")
                return 1
            if sha256_file(archive) != record["sha256"]:
                print(f"FAIL: chunk {index} ({record['file']}) does not "
                      "match its manifest checksum")
                return 1
            covered.add(int(index))
            verified += 1
    if covered != set(range(total)):
        print(f"FAIL: chunk records cover {len(covered)}/{total} chunks")
        return 1
    print(f"store is consistent: {verified} chunk records across "
          f"{len(manifests)} worker manifests cover all {total} chunks, "
          "all checksums verified")

    # -- 7: the survivors must actually have stolen the dead lease -----
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import read_trace  # zero-dependency

    steals = []
    for worker in WORKERS:
        if worker == VICTIM:
            continue
        for record in read_trace(workdir / f"{worker}.trace"):
            if record.get("type") == "span" and record.get("name") == "lease.steal":
                steals.append((worker, record["attrs"]))
    if not steals:
        print("FAIL: no lease.steal span in any survivor trace -- the "
              "abandoned lease was never stolen")
        return 1
    thief, attrs = steals[0]
    print(f"abandoned lease was stolen: {thief} took chunk "
          f"{attrs.get('index')} from {attrs.get('previous')} "
          f"({len(steals)} steal(s) total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
