#!/usr/bin/env python
"""CI crash-recovery drill: kill a store-backed study mid-stream, resume it.

The durable-study contract that matters operationally is not "the happy
path round-trips" (the unit and property tests cover that in-process)
but "a **real SIGTERM** at an arbitrary instant leaves a store a fresh
process can finish from".  This script drills exactly that against the
CLI:

1. run ``repro batch --store`` on a generated RC-ladder netlist with a
   small chunk size (hundreds of checkpoint units),
2. SIGTERM the process the moment the first checkpoint manifest
   appears on disk,
3. verify the store is consistent (1 <= completed chunks < total, every
   recorded chunk archive present and matching its manifest SHA-256 --
   recomputed here, independently of the library),
4. ``--resume`` the study to completion in a new process, with a JSONL
   span trace (``--trace``) recording the run,
5. diff the resumed envelope CSV against a one-shot run without a
   store: they must be byte-identical,
6. reconstruct the per-chunk lineage from the resumed trace and check
   every chunk's SHA-256 against the manifest record bit-for-bit --
   the trace and the store must tell the same provenance story.

Exit code 0 means the drill passed.  CI uploads the store manifests
and the resume trace as artifacts so a failure can be debugged from
the provenance records.

Usage:  python scripts/ci_kill_resume.py [--workdir DIR]
"""

import argparse
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Small chunks + many instances = hundreds of checkpoint units, so the
# SIGTERM (sent at first-manifest-sighting) always lands mid-stream.
STUDY_ARGS = [
    "--plan", "montecarlo", "--instances", "600", "--chunk", "2",
    "--points", "48", "--moments", "3", "--seed", "3",
]


def ladder_netlist(segments: int) -> str:
    lines = [".title ci-kill-resume ladder", "Rdrv n0 0 10", "C0 n0 0 0.02p"]
    for k in range(1, segments + 1):
        lines.append(f"R{k} n{k - 1} n{k} 25")
        lines.append(f"C{k} n{k} 0 0.02p")
    lines.append(".port in n0")
    return "\n".join(lines) + "\n"


def run_cli(arguments, **kwargs):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=environment, text=True, **kwargs,
    )


def popen_cli(arguments, stdout):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        env=environment, stdout=stdout, stderr=subprocess.STDOUT, text=True,
    )


def csv_lines(text: str):
    return [line for line in text.splitlines() if line and not line.startswith("#")]


def sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    digest.update(path.read_bytes())
    return digest.hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="ci-kill-resume")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    netlist = workdir / "ladder.sp"
    netlist.write_text(ladder_netlist(40))
    store = workdir / "store"
    base_cmd = ["batch", str(netlist), *STUDY_ARGS, "--store", str(store)]

    # -- 1+2: start the study, SIGTERM at the first checkpoint ---------
    with open(workdir / "killed-run.log", "w") as log:
        victim = popen_cli(base_cmd, stdout=log)
        deadline = time.monotonic() + args.timeout
        try:
            while not list(store.glob("manifest-*.json")):
                if victim.poll() is not None:
                    print("FAIL: study finished before any checkpoint was seen")
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: no checkpoint appeared within the timeout")
                    return 1
                time.sleep(0.002)
            victim.send_signal(signal.SIGTERM)
            returncode = victim.wait(timeout=args.timeout)
        finally:
            if victim.poll() is None:
                victim.kill()
    if returncode == 0:
        print("FAIL: SIGTERM landed after the study completed; nothing was drilled")
        return 1
    print(f"killed the study mid-stream (exit {returncode})")

    # -- 3: independent store consistency check ------------------------
    manifest_path = next(iter(store.glob("manifest-*.json")))
    manifest = json.loads(manifest_path.read_text())
    completed = manifest["chunks"]
    total = manifest["layout"]["num_chunks"]
    if not 1 <= len(completed) < total:
        print(f"FAIL: expected a partial store, found {len(completed)}/{total} chunks")
        return 1
    for index, record in completed.items():
        archive = store / record["file"]
        if not archive.exists():
            print(f"FAIL: chunk {index} recorded but {record['file']} is missing")
            return 1
        if sha256_file(archive) != record["sha256"]:
            print(f"FAIL: chunk {index} does not match its manifest checksum")
            return 1
    print(f"store is consistent: {len(completed)}/{total} chunks checkpointed, "
          "all checksums verified")

    # -- 4: resume to completion in a fresh process, traced ------------
    trace_path = workdir / "resume.trace"
    resumed = run_cli(
        base_cmd + ["--resume", "--trace", str(trace_path)], capture_output=True
    )
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}:\n{resumed.stderr}")
        return 1

    # -- 5: byte-identical envelope vs a one-shot run ------------------
    one_shot = run_cli(
        ["batch", str(netlist), *STUDY_ARGS], capture_output=True
    )
    if one_shot.returncode != 0:
        print(f"FAIL: one-shot run exited {one_shot.returncode}")
        return 1
    if csv_lines(resumed.stdout) != csv_lines(one_shot.stdout):
        print("FAIL: resumed envelope CSV differs from the one-shot run")
        return 1
    print("resumed study is byte-identical to the one-shot run "
          f"({len(csv_lines(one_shot.stdout)) - 1} envelope rows)")

    # -- 6: trace lineage vs manifest, bit-for-bit ---------------------
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import chunk_lineage, read_trace  # zero-dependency

    lineage = chunk_lineage(read_trace(trace_path))
    final_manifest = json.loads(manifest_path.read_text())
    recorded = {int(i): r["sha256"] for i, r in final_manifest["chunks"].items()}
    if len(lineage) != total:
        print(f"FAIL: resumed trace covers {len(lineage)}/{total} chunks")
        return 1
    for entry in lineage:
        if entry["sha256"] != recorded.get(entry["index"]):
            print(f"FAIL: chunk {entry['index']} trace sha256 {entry['sha256']} "
                  f"!= manifest {recorded.get(entry['index'])}")
            return 1
    sources = {entry["source"] for entry in lineage}
    if sources != {"resumed", "computed"}:
        print(f"FAIL: a mid-stream kill must resume some chunks and compute "
              f"the rest; trace says {sorted(sources)}")
        return 1
    resumed_count = sum(1 for e in lineage if e["source"] == "resumed")
    print(f"trace lineage matches the manifest: {total} chunks "
          f"({resumed_count} resumed, {total - resumed_count} computed), "
          "all SHA-256s bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
