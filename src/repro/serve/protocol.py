"""The job declaration schema: JSON in, realized studies out.

One declaration language serves both fronts: the CLI builders
(:mod:`repro.cli`) and the HTTP job protocol realize scenario plans and
waveforms through the *same* :func:`build_plan` / :func:`build_waveform`
constructors, so a study submitted over the wire lands on the same
content fingerprint -- and therefore the same StudyStore manifests --
as the identical study declared at a terminal.

A job document looks like::

    {
      "netlist": "* RC ladder\\nR1 in n1 1k\\n...",
      "parameters": 2, "spread": 0.5, "variation_seed": 0,
      "moments": 4, "rank": 1,
      "plan": {"kind": "montecarlo", "instances": 64, "sigma": 0.3,
               "seed": 0},
      "workload": {"kind": "sweep", "fmin": 1e7, "fmax": 1e10,
                   "points": 30, "output": 0, "input": 0},
      "chunk": 8,
      "workers": 1
    }

Workload kinds: ``sweep``, ``transient``, ``poles`` (reduced-model
studies driven straight through the Study engine) and ``montecarlo``
(the full-vs-reduced pole-accuracy sign-off, two engine studies).
Malformed documents raise :class:`ProtocolError`, which the server maps
to HTTP 400 and the CLI maps to its usual exit-1 one-liner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class ProtocolError(ValueError):
    """A job document that cannot be realized into a study."""


PLAN_KINDS = ("montecarlo", "corners", "grid")
WORKLOAD_KINDS = ("sweep", "transient", "poles", "montecarlo")
WAVEFORM_KINDS = ("step", "ramp", "sine", "pwl")

_PLAN_DEFAULTS = {
    "montecarlo": {"instances": 100, "sigma": 0.3, "seed": 0},
    "corners": {"magnitude": 0.3},
    "grid": {"magnitude": 0.3, "points": 3},
}

_WORKLOAD_DEFAULTS = {
    "sweep": {"fmin": 1e7, "fmax": 1e10, "points": 30, "output": 0,
              "input": 0},
    "transient": {"waveform": {"kind": "step"}, "t_final": None,
                  "steps": 200, "method": "trapezoidal", "threshold": 0.5,
                  "delay_reference": "steady", "output": 0, "input": 0},
    "poles": {"num": 5},
    "montecarlo": {"poles": 5, "jobs": None, "bins": 10},
}

_WAVEFORM_DEFAULTS = {
    "step": {"amplitude": 1.0, "input": 0},
    "ramp": {"amplitude": 1.0, "rise_time": 1e-10, "input": 0},
    "sine": {"amplitude": 1.0, "frequency": 1e9, "input": 0},
    "pwl": {"points": [[0.0, 0.0], [1e-9, 1.0]], "input": 0},
}


def build_plan(kind: str, *, instances: int = 100, sigma: float = 0.3,
               seed: int = 0, magnitude: float = 0.3, points: int = 3):
    """Realize a scenario plan declaration (shared with the CLI).

    ``kind`` is one of ``montecarlo`` (``instances``/``sigma``/``seed``),
    ``corners`` (``magnitude``), or ``grid`` (``magnitude``/``points``
    per axis).  Raises :class:`ProtocolError` on an unknown kind.
    """
    from repro.runtime import CornerPlan, GridPlan, MonteCarloPlan

    if kind == "montecarlo":
        return MonteCarloPlan(
            num_instances=instances, three_sigma=sigma, seed=seed
        )
    if kind == "corners":
        return CornerPlan(magnitude=magnitude)
    if kind == "grid":
        axis = np.linspace(-magnitude, magnitude, points)
        return GridPlan(axis_values=tuple(axis))
    raise ProtocolError(
        f"unknown plan {kind!r} (expected one of {', '.join(PLAN_KINDS)})"
    )


def build_waveform(kind: str, *, amplitude: float = 1.0,
                   rise_time: float = 1e-10, frequency: float = 1e9,
                   points=((0.0, 0.0), (1e-9, 1.0)), input_index: int = 0):
    """Realize a transient stimulus declaration (shared with the CLI)."""
    from repro.runtime import PWLInput, RampInput, SineInput, StepInput

    if kind == "step":
        return StepInput(amplitude=amplitude, input_index=input_index)
    if kind == "ramp":
        return RampInput(
            rise_time=rise_time, amplitude=amplitude, input_index=input_index
        )
    if kind == "sine":
        return SineInput(
            frequency=frequency, amplitude=amplitude, input_index=input_index
        )
    if kind == "pwl":
        return PWLInput(
            points=tuple((float(t), float(v)) for t, v in points),
            input_index=input_index,
        )
    raise ProtocolError(
        f"unknown waveform {kind!r} "
        f"(expected one of {', '.join(WAVEFORM_KINDS)})"
    )


def _require(mapping: dict, name: str, kinds, label: str) -> dict:
    section = mapping.get(name)
    if not isinstance(section, dict):
        raise ProtocolError(f"job is missing the {name!r} object")
    kind = section.get("kind")
    if kind not in kinds:
        raise ProtocolError(
            f"unknown {label} {kind!r} (expected one of {', '.join(kinds)})"
        )
    return section


def _merged(section: dict, defaults: dict, label: str) -> dict:
    unknown = set(section) - {"kind"} - set(defaults)
    if unknown:
        raise ProtocolError(
            f"unknown {label} option(s): {', '.join(sorted(unknown))}"
        )
    return {**defaults, **{k: v for k, v in section.items() if k != "kind"}}


@dataclass(frozen=True)
class JobSpec:
    """A parsed, validated, normalized job declaration.

    ``canonical()`` returns the fully-defaulted JSON document -- two
    submissions that differ only in omitted-vs-explicit defaults
    canonicalize identically, which is what the content-addressed job
    key hashes.
    """

    netlist: str
    parameters: int
    spread: float
    variation_seed: int
    moments: int
    rank: int
    plan_kind: str
    plan_options: dict
    workload_kind: str
    workload_options: dict
    chunk: Optional[int]
    precision: str
    workers: int

    def canonical(self) -> dict:
        """The normalized declaration document (defaults applied)."""
        return {
            "netlist": self.netlist,
            "parameters": self.parameters,
            "spread": self.spread,
            "variation_seed": self.variation_seed,
            "moments": self.moments,
            "rank": self.rank,
            "plan": {"kind": self.plan_kind, **self.plan_options},
            "workload": {"kind": self.workload_kind, **self.workload_options},
            "chunk": self.chunk,
            "precision": self.precision,
            "workers": self.workers,
        }


def parse_job(payload) -> JobSpec:
    """Parse a job document (dict, JSON text, or bytes) into a JobSpec.

    Every malformation -- wrong type, unknown kind, unknown option,
    non-positive count -- raises :class:`ProtocolError` with a one-line
    diagnostic naming the offending field.
    """
    if isinstance(payload, (bytes, bytearray)):
        payload = payload.decode("utf-8", errors="replace")
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"job body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("job body must be a JSON object")

    netlist = payload.get("netlist")
    if not isinstance(netlist, str) or not netlist.strip():
        raise ProtocolError("job is missing 'netlist' (the netlist text)")

    known = {"netlist", "parameters", "spread", "variation_seed", "moments",
             "rank", "plan", "workload", "chunk", "precision", "workers"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            f"unknown job field(s): {', '.join(sorted(unknown))}"
        )

    def _int(name, default, minimum=1):
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            raise ProtocolError(
                f"'{name}' must be an integer >= {minimum}"
            )
        return value

    def _number(name, default):
        value = payload.get(name, default)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(f"'{name}' must be a number")
        return float(value)

    plan_section = _require(payload, "plan", PLAN_KINDS, "plan")
    plan_kind = plan_section["kind"]
    plan_options = _merged(plan_section, _PLAN_DEFAULTS[plan_kind], "plan")

    workload_section = _require(payload, "workload", WORKLOAD_KINDS,
                                "workload")
    workload_kind = workload_section["kind"]
    workload_options = _merged(
        workload_section, _WORKLOAD_DEFAULTS[workload_kind], "workload"
    )
    if workload_kind == "transient":
        waveform = workload_options["waveform"]
        if not isinstance(waveform, dict) or \
                waveform.get("kind") not in WAVEFORM_KINDS:
            raise ProtocolError(
                "transient workload needs a 'waveform' object with kind "
                f"one of {', '.join(WAVEFORM_KINDS)}"
            )
        workload_options["waveform"] = _merged(
            waveform, _WAVEFORM_DEFAULTS[waveform["kind"]], "waveform"
        )
        workload_options["waveform"]["kind"] = waveform["kind"]

    chunk = payload.get("chunk")
    if chunk is not None and (
        not isinstance(chunk, int) or isinstance(chunk, bool) or chunk < 1
    ):
        raise ProtocolError("'chunk' must be a positive integer or null")

    precision = payload.get("precision", "full")
    if precision not in ("full", "screen"):
        raise ProtocolError("'precision' must be 'full' or 'screen'")

    return JobSpec(
        netlist=netlist,
        parameters=_int("parameters", 2),
        spread=_number("spread", 0.5),
        variation_seed=_int("variation_seed", 0, minimum=0),
        moments=_int("moments", 4),
        rank=_int("rank", 1),
        plan_kind=plan_kind,
        plan_options=plan_options,
        workload_kind=workload_kind,
        workload_options=workload_options,
        chunk=chunk,
        precision=precision,
        workers=_int("workers", 1),
    )


@dataclass
class RealizedJob:
    """A job bound to concrete models, engines, and fingerprints.

    ``studies`` maps a short side label to a zero-argument engine
    factory: each call returns a *fresh* Study carrying the full
    declaration (so per-worker drains never share builder state).  The
    ``montecarlo`` workload realizes two sides (``full`` and
    ``reduced``); the engine workloads realize one (``study``).
    ``peak_bytes`` is the admission figure: the largest
    ``estimated_peak_bytes`` across every side's ExecutionPlan.
    """

    spec: JobSpec
    parametric: object
    model: object
    studies: dict = field(default_factory=dict)
    fingerprints: list = field(default_factory=list)
    plans: list = field(default_factory=list)
    samples: Optional[np.ndarray] = None

    @property
    def peak_bytes(self) -> int:
        """Worst estimated peak bytes across the job's study plans."""
        return max(plan.estimated_peak_bytes for plan in self.plans)

    @property
    def study_keys(self) -> list:
        """The content keys of every study this job drains."""
        return [fp["key"] for fp in self.fingerprints]


def realize(spec: JobSpec, model_cache=None) -> RealizedJob:
    """Build the parametric system, reduced model, and study engines.

    The expensive half (parse + reduce) goes through ``model_cache``
    when one is given, so repeat submissions of the same netlist and
    reducer settings skip reduction entirely.  Declarations the engine
    rejects (bad workload/target combination, out-of-range indices)
    surface as :class:`ProtocolError`.
    """
    from repro.circuits.generators import with_random_variations
    from repro.circuits.parser import parse_netlist
    from repro.core import LowRankReducer
    from repro.runtime import Study

    try:
        netlist = parse_netlist(spec.netlist, title="<submitted>")
        parametric = with_random_variations(
            netlist, spec.parameters, seed=spec.variation_seed,
            relative_spread=spec.spread,
        )
    except (ValueError, KeyError) as exc:
        raise ProtocolError(f"netlist rejected: {exc}") from None

    reducer = LowRankReducer(num_moments=spec.moments, rank=spec.rank)
    try:
        if model_cache is not None:
            model = model_cache.get_or_reduce(parametric, reducer)
        else:
            model = reducer.reduce(parametric)
    except (ValueError, np.linalg.LinAlgError) as exc:
        raise ProtocolError(f"reduction failed: {exc}") from None

    job = RealizedJob(spec=spec, parametric=parametric, model=model)
    options = dict(spec.workload_options)

    def _chunked(study: Study) -> Study:
        return study if spec.chunk is None else study.chunk(spec.chunk)

    try:
        if spec.workload_kind == "montecarlo":
            from repro.analysis.montecarlo import sample_parameters

            if spec.plan_kind != "montecarlo":
                raise ProtocolError(
                    "the montecarlo workload requires a montecarlo plan"
                )
            samples = sample_parameters(
                spec.plan_options["instances"], parametric.num_parameters,
                three_sigma=spec.plan_options["sigma"],
                seed=spec.plan_options["seed"],
            )
            job.samples = samples
            num_poles = options["poles"]
            executor = options["jobs"] if options["jobs"] is not None \
                else "serial"
            job.studies = {
                "full": lambda: _chunked(
                    Study(parametric).scenarios(samples)
                    .poles(num_poles).executor(executor)
                ),
                "reduced": lambda: _chunked(
                    Study(model).scenarios(samples)
                    .poles(2 * num_poles).precision(spec.precision)
                ),
            }
        else:
            plan = build_plan(spec.plan_kind, **spec.plan_options)
            if spec.workload_kind == "sweep":
                frequencies = np.logspace(
                    np.log10(options["fmin"]), np.log10(options["fmax"]),
                    options["points"],
                )
                _check_ports(model, options)
                job.studies = {
                    "study": lambda: _chunked(
                        Study(model).scenarios(plan).sweep(frequencies)
                        .precision(spec.precision)
                    ),
                }
            elif spec.workload_kind == "transient":
                waveform_options = dict(options["waveform"])
                waveform = build_waveform(
                    waveform_options.pop("kind"),
                    input_index=waveform_options.pop("input"),
                    **waveform_options,
                )
                _check_ports(model, options)
                job.studies = {
                    "study": lambda: _chunked(
                        Study(model).scenarios(plan).transient(
                            waveform,
                            t_final=options["t_final"],
                            num_steps=options["steps"],
                            method=options["method"],
                            delay_threshold=options["threshold"],
                            output_index=options["output"],
                            reference=options["delay_reference"],
                        )
                    ),
                }
            else:  # poles
                job.studies = {
                    "study": lambda: _chunked(
                        Study(model).scenarios(plan).poles(options["num"])
                        .precision(spec.precision)
                    ),
                }
        for factory in job.studies.values():
            study = factory()
            job.plans.append(study.plan())
            job.fingerprints.append(study.fingerprint())
    except ProtocolError:
        raise
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"declaration rejected: {exc}") from None
    return job


def _check_ports(model, options: dict) -> None:
    num_outputs = model.nominal.num_outputs
    num_inputs = model.nominal.num_inputs
    if not 0 <= options["output"] < num_outputs:
        raise ProtocolError(
            f"'output' {options['output']} out of range "
            f"(model has {num_outputs} outputs)"
        )
    if not 0 <= options["input"] < num_inputs:
        raise ProtocolError(
            f"'input' {options['input']} out of range "
            f"(model has {num_inputs} inputs)"
        )
