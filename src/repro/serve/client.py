"""Thin stdlib client for the study service.

``http.client`` only -- usable from scripts, tests, and the ``repro
submit`` / ``repro jobs`` CLI commands without any dependency beyond
the standard library.  Every method raises :class:`ServeClientError`
with the server's one-line diagnostic on a non-2xx response, carrying
the HTTP status on ``.status`` (and, for admission rejections, the
server's error document on ``.body``).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator, Optional
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-2xx response from the study service."""

    def __init__(self, status: int, message: str, body: Optional[dict] = None):
        self.status = status
        self.body = body or {}
        super().__init__(f"HTTP {status}: {message}")


class ServeClient:
    """Client for one study-service base URL (e.g. ``http://host:8787``)."""

    def __init__(self, base_url: str, timeout: float = 600.0):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[bytes] = None):
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        return connection, connection.getresponse()

    def _json(self, method: str, path: str, body: Optional[bytes] = None,
              ok=(200, 202)):
        connection, response = self._request(method, path, body)
        try:
            data = response.read()
        finally:
            connection.close()
        try:
            document = json.loads(data) if data else {}
        except json.JSONDecodeError:
            document = {"error": data.decode("utf-8", errors="replace")}
        if response.status not in ok:
            raise ServeClientError(
                response.status,
                document.get("error", "request failed"),
                body=document,
            )
        return response.status, document

    # -- API -----------------------------------------------------------

    def healthz(self) -> dict:
        """The service document (store path, budget, job count)."""
        return self._json("GET", "/healthz")[1]

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot."""
        return self._json("GET", "/metrics")[1]

    def submit(self, job) -> dict:
        """Submit a job document (dict or JSON text).

        Returns the job's status document; ``cached`` is ``True`` when
        the response was served from the content-addressed result index
        (the job is already ``done``).  Admission rejections raise
        :class:`ServeClientError` with ``status == 413`` and the
        ``peak_bytes`` estimate in ``.body``.
        """
        data = job if isinstance(job, (bytes, bytearray)) else json.dumps(
            job if isinstance(job, dict) else json.loads(job)
        ).encode()
        return self._json("POST", "/jobs", body=data)[1]["job"]

    def jobs(self) -> list:
        """Status documents for every job the server knows."""
        return self._json("GET", "/jobs")[1]["jobs"]

    def job(self, job_id: str) -> dict:
        """One job's status document."""
        return self._json("GET", f"/jobs/{job_id}")[1]["job"]

    def result_bytes(self, job_id: str) -> bytes:
        """The canonical result document, byte-exact.

        The bytes are what the server persisted in its result index --
        identical for every client that submits the same study.
        """
        connection, response = self._request(
            "GET", f"/jobs/{job_id}/result"
        )
        try:
            data = response.read()
        finally:
            connection.close()
        if response.status != 200:
            try:
                document = json.loads(data)
            except json.JSONDecodeError:
                document = {}
            raise ServeClientError(
                response.status, document.get("error", "no result"),
                body=document,
            )
        return data

    def result(self, job_id: str) -> dict:
        """The parsed result document (see :meth:`result_bytes`)."""
        return json.loads(self.result_bytes(job_id))

    def events(self, job_id: str, on_truncated=None) -> Iterator[dict]:
        """Follow the job's NDJSON progress stream until it ends.

        When the consumer's cursor falls behind the server's bounded
        event window, the server injects an ``events.truncated`` marker
        carrying how many events were dropped; ``on_truncated(dropped)``
        (when given) is called as the marker arrives, and the marker is
        yielded like any other event so plain iteration also sees the
        gap.
        """
        connection, response = self._request(
            "GET", f"/jobs/{job_id}/events"
        )
        try:
            if response.status != 200:
                data = response.read()
                try:
                    document = json.loads(data)
                except json.JSONDecodeError:
                    document = {}
                raise ServeClientError(
                    response.status, document.get("error", "no stream"),
                    body=document,
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") == "events.truncated" \
                        and on_truncated is not None:
                    on_truncated(int(event.get("dropped", 0)))
                yield event
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a final state; return its status."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "rejected"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)
