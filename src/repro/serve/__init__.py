"""repro.serve -- an async study service in front of the Study engine.

Pure stdlib (asyncio + http): clients POST a job document -- netlist,
scenario plan, and workload in the same declaration schema the CLI
builders use -- and get back a job id.  A supervisor admits jobs
against a configurable memory budget using each plan's
``estimated_peak_bytes``, a pool of worker threads drains the queue
through the shared :class:`~repro.runtime.store.StudyStore`, and
results are content-addressed by study fingerprint: re-submitting an
identical study (even from a different client) is served byte-identical
from the result index without recomputation.  Progress streams as
NDJSON events bridged from ``repro.obs`` chunk spans.

Pieces:

- :mod:`repro.serve.protocol` -- job schema, validation, realization
- :mod:`repro.serve.jobs` -- job records, lifecycle, event logs
- :mod:`repro.serve.supervisor` -- admission, queue, worker pool,
  result rendering and the content-addressed result index
- :mod:`repro.serve.server` -- the asyncio HTTP front end
- :mod:`repro.serve.client` -- thin ``http.client`` client
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobs import Job, JobRegistry
from repro.serve.protocol import (
    JobSpec,
    ProtocolError,
    RealizedJob,
    build_plan,
    build_waveform,
    parse_job,
    realize,
)
from repro.serve.server import StudyServer, run
from repro.serve.supervisor import AdmissionError, StudySupervisor

__all__ = [
    "AdmissionError",
    "Job",
    "JobRegistry",
    "JobSpec",
    "ProtocolError",
    "RealizedJob",
    "ServeClient",
    "ServeClientError",
    "StudyServer",
    "StudySupervisor",
    "build_plan",
    "build_waveform",
    "parse_job",
    "realize",
    "run",
]
