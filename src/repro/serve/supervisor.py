"""Admission, queueing, and the worker pool behind the study service.

The supervisor is the synchronous core the asyncio front end
(:mod:`repro.serve.server`) delegates to:

- :meth:`StudySupervisor.submit` parses and realizes a declaration,
  admits it against the configured memory budget using the plan's
  ``estimated_peak_bytes``, and either rejects it, serves it from the
  content-addressed result index, or enqueues it;
- a pool of worker threads drains the queue, running each job through
  ``Study.store()`` (one worker) or a cooperating group of
  ``Study.work()`` drains (``workers > 1`` in the declaration) against
  the shared :class:`~repro.runtime.store.StudyStore`;
- every finished job's response document is rendered to canonical JSON
  bytes and persisted under ``<store>/results/``, so an identical
  re-submission -- same netlist, plan, workload, from any client -- is
  served byte-identically with zero recomputation, carrying the same
  study fingerprints and per-chunk SHA-256 lineage.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from repro.obs import MemorySink, SpanEventBridge, chunk_lineage, lineage_sources
from repro.obs import metrics as obs_metrics
from repro.runtime import ModelCache, StudyStore
from repro.serve.jobs import Job, JobRegistry
from repro.serve.protocol import ProtocolError, RealizedJob, parse_job, realize

__all__ = ["AdmissionError", "StudySupervisor"]

_SUBMITTED = obs_metrics.counter("serve.jobs_submitted")
_CACHED = obs_metrics.counter("serve.jobs_cached")
_REJECTED = obs_metrics.counter("serve.jobs_rejected")
_COMPLETED = obs_metrics.counter("serve.jobs_completed")
_FAILED = obs_metrics.counter("serve.jobs_failed")


class AdmissionError(RuntimeError):
    """A job whose planned peak memory exceeds the configured budget.

    Carries the numbers the error body must surface: the plan's
    ``estimated_peak_bytes`` and the budget it failed against.
    """

    def __init__(self, peak_bytes: int, budget: int):
        self.peak_bytes = int(peak_bytes)
        self.budget = int(budget)
        super().__init__(
            f"job rejected at admission: planned peak "
            f"{self.peak_bytes} bytes exceeds the server memory budget "
            f"{self.budget} bytes (shrink the study or raise --memory-budget)"
        )


class StudySupervisor:
    """Job queue + admission control + worker pool over one StudyStore.

    Parameters
    ----------
    store:
        Directory or :class:`~repro.runtime.store.StudyStore` every job
        checkpoints through (and the content-addressed result index
        lives under ``<store>/results/``).
    memory_budget:
        Optional admission bound in bytes: a job whose worst study plan
        estimates a higher peak is rejected up front with the estimate
        in the error.  ``None`` admits everything.
    pool_size:
        Worker threads draining the queue (jobs run concurrently up to
        this count; each job may additionally declare ``workers`` > 1
        to co-drain its own chunks).
    model_cache:
        Optional directory or :class:`~repro.runtime.ModelCache` for
        the reduction step; bounded caches
        (``ModelCache(..., max_entries=...)``) are recommended for
        long-running services.
    ttl, poll:
        Lease scheduler knobs for multi-worker jobs (see
        :meth:`~repro.runtime.engine.Study.work`).
    warehouse:
        Optional directory or :class:`~repro.warehouse.Warehouse`:
        every completed job's chunk checkpoints are ingested into this
        columnar dataset (idempotently -- a warehouse shared with
        ``repro work`` drainers or a study's own
        :meth:`~repro.runtime.engine.Study.warehouse` directive never
        duplicates rows), with source attribution from the job's own
        spans.  An ingest failure is reported as a ``warehouse.error``
        job event, never as a job failure -- the result document is
        already durable by then.
    """

    def __init__(self, store, memory_budget: Optional[int] = None,
                 pool_size: int = 2, model_cache=None,
                 ttl: float = 30.0, poll: float = 0.05,
                 warehouse=None):
        self.store = store if isinstance(store, StudyStore) else \
            StudyStore(store)
        self.memory_budget = memory_budget
        self.pool_size = max(int(pool_size), 1)
        if model_cache is None or isinstance(model_cache, ModelCache):
            self.model_cache = model_cache
        else:
            self.model_cache = ModelCache(model_cache)
        self.ttl = ttl
        self.poll = poll
        if warehouse is None:
            self.warehouse = None
        else:
            from repro.warehouse import Warehouse

            self.warehouse = (
                warehouse if isinstance(warehouse, Warehouse)
                else Warehouse(warehouse)
            )
        self.registry = JobRegistry()
        self.results_dir = self.store.directory / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads = []
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "StudySupervisor":
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            for i in range(self.pool_size):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool after in-flight jobs finish."""
        with self._lock:
            if not self._started:
                return
            threads, self._threads = self._threads, []
            self._started = False
        for _ in threads:
            self._queue.put(None)
        if wait:
            for thread in threads:
                thread.join()

    # -- submission ----------------------------------------------------

    def job_key(self, realized: RealizedJob) -> str:
        """Content key of a job: its study keys + rendering options.

        The study fingerprints cover the netlist, samples, and workload
        physics; the workload options additionally pin the rendering
        knobs (which output/input the envelope reads, histogram bins)
        so two jobs are byte-compatible iff their responses are.
        """
        record = {
            "study_keys": realized.study_keys,
            "workload": {
                "kind": realized.spec.workload_kind,
                **realized.spec.workload_options,
            },
        }
        return hashlib.sha256(
            json.dumps(record, sort_keys=True, default=repr).encode()
        ).hexdigest()

    def result_path(self, key: str) -> Path:
        """Canonical result-index location for job content key ``key``."""
        return self.results_dir / f"result-{key[:16]}.json"

    def submit(self, payload) -> Job:
        """Parse, realize, admit, and route one job document.

        Returns the :class:`~repro.serve.jobs.Job` in one of three
        states: ``done`` (served from the result index), ``queued``
        (admitted and enqueued), or ``rejected`` (admission failure --
        the job's ``error`` carries the peak-bytes estimate).  Protocol
        errors raise :class:`~repro.serve.protocol.ProtocolError`
        before any job is registered.
        """
        spec = parse_job(payload)
        realized = realize(spec, self.model_cache)
        key = self.job_key(realized)
        job = Job(
            self.registry.new_id(key), key, spec.canonical(),
            study_keys=realized.study_keys,
            fingerprints=realized.fingerprints,
            peak_bytes=realized.peak_bytes,
            workers=spec.workers,
        )
        _SUBMITTED.inc()

        if self.memory_budget is not None \
                and realized.peak_bytes > self.memory_budget:
            error = AdmissionError(realized.peak_bytes, self.memory_budget)
            job.state = "rejected"
            job.error = str(error)
            self.registry.add(job)
            _REJECTED.inc()
            return job

        cached = self._load_result(key)
        if cached is not None:
            self.registry.add(job)
            job.mark_done(cached, cached=True)
            _CACHED.inc()
            return job

        job._realized = realized
        self.registry.add(job)
        job.add_event({"event": "job.state", "state": "queued"})
        self.start()
        self._queue.put(job)
        return job

    def _load_result(self, key: str) -> Optional[bytes]:
        path = self.result_path(key)
        try:
            return path.read_bytes() if path.exists() else None
        except OSError:
            return None

    # -- execution -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - job isolation
                job.mark_failed(f"{type(exc).__name__}: {exc}")
                _FAILED.inc()
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        realized: RealizedJob = job._realized
        job.mark_running()
        # The bridge streams span events to the job's NDJSON log; the
        # memory sink (warehouse mode only) keeps the raw span records
        # the post-completion ingest joins into per-chunk source
        # attribution.
        sinks = [SpanEventBridge(job.add_event)]
        lineage_sink = None
        if self.warehouse is not None:
            lineage_sink = MemorySink()
            sinks.append(lineage_sink)
        try:
            if realized.spec.workload_kind == "montecarlo":
                result = self._run_montecarlo(job, realized, sinks)
                payload = _render_montecarlo(result, realized)
            else:
                study = self._run_engine_sides(job, realized, sinks)
                payload = _render_study(study, realized)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            job.mark_failed(f"{type(exc).__name__}: {exc}")
            _FAILED.inc()
            return
        document = {
            "job": {"key": job.key, "spec": job.spec},
            "provenance": {
                "fingerprints": job.fingerprints,
                "lineage": {
                    key: self.store.lineage(key) for key in job.study_keys
                },
            },
            "result": payload,
        }
        data = json.dumps(
            document, sort_keys=True, indent=1, default=_json_default
        ).encode()
        self._store_result(job.key, data)
        self._ingest_job(job, realized, lineage_sink)
        job.mark_done(data, cached=False)
        _COMPLETED.inc()

    def _ingest_job(self, job: Job, realized: RealizedJob,
                    lineage_sink) -> None:
        """Warehouse hook: ingest a completed job's chunk checkpoints.

        Best-effort by design: the result document is already persisted
        and served, so an ingest failure degrades to a
        ``warehouse.error`` job event (and the next completed job -- or
        a ``repro query ingest`` -- retries idempotently) instead of
        failing a job whose numbers are done.
        """
        if self.warehouse is None:
            return
        try:
            lineage = lineage_sources(chunk_lineage(lineage_sink.records))
            report = None
            for key in job.study_keys:
                partial = self.warehouse.ingest_store(
                    self.store, key=key,
                    samples=realized.samples,
                    parameter_names=getattr(
                        realized.parametric, "parameter_names", None
                    ),
                    lineage=lineage,
                )
                report = partial if report is None else report.merge(partial)
            job.add_event({
                "event": "warehouse.ingest",
                "studies": list(report.studies),
                "chunks": report.chunks,
                "skipped": report.skipped,
                "rows": report.rows_added,
            })
        except Exception as exc:  # noqa: BLE001 - never fail the job
            job.add_event({
                "event": "warehouse.error",
                "error": f"{type(exc).__name__}: {exc}",
            })

    def _run_engine_sides(self, job: Job, realized: RealizedJob, sinks):
        """Drain each engine side; return the last side's merged study."""

        def traced(study):
            for sink in sinks:
                study = study.trace(sink)
            return study

        study = None
        for label, factory in realized.studies.items():
            if job.workers <= 1:
                study = traced(factory()).store(self.store).run()
            else:
                study = self._co_drain(
                    lambda worker, factory=factory: traced(factory())
                    .work(store=self.store, ttl=self.ttl, poll=self.poll,
                          worker=worker),
                    job,
                )
        return study

    def _run_montecarlo(self, job: Job, realized: RealizedJob, sinks):
        """The full-vs-reduced pole sign-off, through the shared store."""
        from repro.analysis.montecarlo import monte_carlo_pole_study

        options = realized.spec.workload_options
        kwargs = dict(
            num_instances=realized.samples.shape[0],
            num_poles=options["poles"],
            samples=realized.samples,
            executor=options["jobs"],
            store=self.store,
            chunk_size=realized.spec.chunk,
            trace=sinks,
            precision=realized.spec.precision,
        )
        if job.workers <= 1:
            return monte_carlo_pole_study(
                realized.parametric, realized.model, **kwargs
            )
        return self._co_drain(
            lambda worker: monte_carlo_pole_study(
                realized.parametric, realized.model,
                work=True, ttl=self.ttl, poll=self.poll, worker=worker,
                **kwargs,
            ),
            job,
        )

    def _co_drain(self, run_one, job: Job):
        """``job.workers`` cooperating drains of one study; first result.

        Every participant blocks until the store drains and returns the
        same merged result (bit-identical by the scheduler contract), so
        any non-``None`` return serves.  A worker that raises fails the
        job (the first exception propagates after every thread joins).
        """
        results = [None] * job.workers
        errors = []

        def participant(slot):
            try:
                results[slot] = run_one(f"{job.id}-w{slot}")
            except Exception as exc:  # noqa: BLE001 - propagated below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=participant, args=(slot,),
                name=f"{job.id}-drain-{slot}", daemon=True,
            )
            for slot in range(job.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        merged = [result for result in results if result is not None]
        if not merged:
            raise RuntimeError("no worker produced a merged result")
        return merged[0]

    def _store_result(self, key: str, data: bytes) -> None:
        """Persist one rendered result document, durably and race-safely.

        Two hazards the old plain-write version had:

        - the scratch name was pid-only, so two *worker threads* of one
          supervisor finishing identical jobs concurrently could write
          the same scratch file and race the replace -- the thread id
          joins the scratch name so every writer owns its scratch;
        - no fsync before the rename, so a crash right after could
          surface a truncated index entry that poisons every future
          identical submission (the index is trusted byte-for-byte).

        The write goes through the store's ``_durable_replace`` idiom
        and is then read back and parsed: a torn or unparsable index
        entry raises :class:`~repro.runtime.store.StoreError`
        immediately (failing this job loudly) instead of being served
        to the next client.  A well-formed file with *different* bytes
        is accepted -- two racing writers of one key render equivalent
        documents, and last-writer-wins keeps the file consistent.
        """
        from repro.runtime.store import StoreError, _durable_replace

        path = self.result_path(key)
        scratch = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            try:
                _durable_replace(scratch, path, data)
            finally:
                scratch.unlink(missing_ok=True)
            written = path.read_bytes()
            json.loads(written.decode())
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"result index entry {str(path)!r} failed its write-back "
                f"check: {exc}"
            ) from None

    # -- views ---------------------------------------------------------

    def describe(self) -> dict:
        """The service document ``GET /healthz`` returns."""
        return {
            "ok": True,
            "store": str(self.store.directory),
            "memory_budget": self.memory_budget,
            "pool_size": self.pool_size,
            "jobs": len(self.registry),
        }


def _json_default(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def _finite_list(array) -> list:
    """Float list with NaN/Inf mapped to None (strict-JSON safe)."""
    return [
        float(x) if np.isfinite(x) else None for x in np.asarray(array).ravel()
    ]


def _render_study(study, realized: RealizedJob) -> dict:
    """Workload-specific result payload for the engine workloads."""
    kind = realized.spec.workload_kind
    options = realized.spec.workload_options
    if kind == "sweep":
        low, mean, high = study.magnitude_envelope(
            output_index=options["output"], input_index=options["input"]
        )
        return {
            "workload": "sweep",
            "num_samples": int(study.num_samples),
            "num_chunks": int(study.num_chunks),
            "frequencies_hz": _finite_list(study.frequencies),
            "min_magnitude": _finite_list(low),
            "mean_magnitude": _finite_list(mean),
            "max_magnitude": _finite_list(high),
        }
    if kind == "transient":
        low, mean, high = study.output_envelope(
            output_index=options["output"]
        )
        delays = np.asarray(study.delays, dtype=float)
        crossed = delays[np.isfinite(delays)]
        return {
            "workload": "transient",
            "num_samples": int(study.num_samples),
            "num_chunks": int(study.num_chunks),
            "time_s": _finite_list(study.time),
            "min_output": _finite_list(low),
            "mean_output": _finite_list(mean),
            "max_output": _finite_list(high),
            "delays_s": _finite_list(delays),
            "delay_summary": {
                "crossed": int(crossed.size),
                "of": int(delays.size),
                "min": float(crossed.min()) if crossed.size else None,
                "mean": float(crossed.mean()) if crossed.size else None,
                "max": float(crossed.max()) if crossed.size else None,
            },
        }
    # poles: the nan-padded (m, num_poles) stack (ragged rows padded)
    poles = np.asarray(study.poles)
    return {
        "workload": "poles",
        "num_samples": int(poles.shape[0]),
        "num_poles": int(poles.shape[1]),
        "poles": [
            [
                None if not np.isfinite(p) else
                {"re": float(p.real), "im": float(p.imag)}
                for p in row
            ]
            for row in poles
        ],
    }


def _render_montecarlo(result, realized: RealizedJob) -> dict:
    """Result payload for the pole-accuracy sign-off workload."""
    counts, edges = result.histogram(
        bins=realized.spec.workload_options["bins"]
    )
    verified = result.verified
    return {
        "workload": "montecarlo",
        "num_instances": int(result.num_instances),
        "total_poles": int(result.total_poles),
        "max_error": float(result.max_error),
        "mean_error": float(result.pole_errors.mean()),
        "histogram": {
            "bin_edges_pct": _finite_list(edges),
            "counts": [int(c) for c in counts],
        },
        "verified": None if verified is None else int(verified.sum()),
    }
