"""Job records and the registry the service front ends share.

A :class:`Job` is the unit of bookkeeping between submission and
response: lifecycle state, the study fingerprints it is content-
addressed by, the admission figure, an append-only event log fed by the
:class:`~repro.obs.bridge.SpanEventBridge`, and -- once finished -- the
rendered result bytes.  All mutation goes through the job's lock, so
supervisor worker threads and asyncio readers never race.

Lifecycle::

    queued -> running -> done
                      -> failed
    (rejected)                    # never enqueued: admission or protocol

``cached`` jobs jump straight to ``done`` at submission time.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

__all__ = ["Job", "JobRegistry", "STATES"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"
STATES = (QUEUED, RUNNING, DONE, FAILED, REJECTED)
TERMINAL = (DONE, FAILED, REJECTED)

#: Per-job event-log bound: enough for tens of thousands of chunk
#: completions; beyond it the oldest events drop and ``events_dropped``
#: counts them, so a runaway study cannot exhaust server memory.
MAX_EVENTS = 10_000


class Job:
    """One submitted study job and everything a client may ask about it."""

    def __init__(self, job_id: str, key: str, spec: dict,
                 study_keys: Optional[List[str]] = None,
                 fingerprints: Optional[List[dict]] = None,
                 peak_bytes: Optional[int] = None,
                 workers: int = 1):
        self.id = job_id
        self.key = key
        self.spec = spec
        self.study_keys = list(study_keys or [])
        self.fingerprints = list(fingerprints or [])
        self.peak_bytes = peak_bytes
        self.workers = workers
        self.state = QUEUED
        self.cached = False
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result_bytes: Optional[bytes] = None
        self.events: List[dict] = []
        self.events_dropped = 0
        self._event_base = 0  # index of events[0] in the full log
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING
            self.started = time.time()
        self.add_event({"event": "job.state", "state": RUNNING})

    def mark_done(self, result_bytes: bytes, cached: bool = False) -> None:
        with self._lock:
            self.result_bytes = result_bytes
            self.cached = cached
            self.state = DONE
            self.finished = time.time()
        self.add_event({"event": "job.state", "state": DONE,
                        "cached": cached})

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self.error = error
            self.state = FAILED
            self.finished = time.time()
        self.add_event({"event": "job.state", "state": FAILED,
                        "error": error})

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL

    # -- event log -----------------------------------------------------

    def add_event(self, event: dict) -> None:
        """Append one event (bridge callback and lifecycle marks)."""
        with self._lock:
            self.events.append({"job": self.id, **event})
            overflow = len(self.events) - MAX_EVENTS
            if overflow > 0:
                del self.events[:overflow]
                self._event_base += overflow
                self.events_dropped += overflow

    def events_since(self, cursor: int):
        """``(events, next_cursor)`` for the log tail past ``cursor``.

        ``cursor`` counts over the *full* log.  A reader whose cursor
        fell behind the bounded window's eviction horizon gets an
        explicit ``events.truncated`` marker first -- carrying how many
        events were dropped and the cursor the stream resumes from --
        instead of the gap being silently skipped (a progress consumer
        must be able to tell "nothing happened" from "I missed 4,000
        chunk events").  The marker is synthesized per read, not
        stored, so it never occupies (or overflows) the window itself.
        """
        with self._lock:
            dropped = self._event_base - cursor
            offset = max(-dropped, 0)
            tail = list(self.events[offset:])
            if dropped > 0:
                tail.insert(0, {
                    "job": self.id,
                    "event": "events.truncated",
                    "dropped": dropped,
                    "next": self._event_base,
                })
            return tail, self._event_base + len(self.events)

    # -- views ---------------------------------------------------------

    def describe(self) -> dict:
        """The status document ``GET /jobs/{id}`` returns."""
        with self._lock:
            return {
                "id": self.id,
                "key": self.key,
                "state": self.state,
                "cached": self.cached,
                "error": self.error,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "peak_bytes": self.peak_bytes,
                "workers": self.workers,
                "study_keys": list(self.study_keys),
                "fingerprints": list(self.fingerprints),
                "events": self._event_base + len(self.events),
                "events_dropped": self.events_dropped,
            }


class JobRegistry:
    """Thread-safe id->Job map with stable submission order."""

    def __init__(self):
        self._jobs = {}
        self._lock = threading.Lock()
        self._counter = 0

    def new_id(self, key: str) -> str:
        """A fresh job id: submission ordinal + content-key prefix."""
        with self._lock:
            self._counter += 1
            return f"job-{self._counter:06d}-{key[:8]}"

    def add(self, job: Job) -> Job:
        with self._lock:
            self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[dict]:
        """Status documents for every known job, submission order."""
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.describe() for job in jobs]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
