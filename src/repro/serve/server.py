"""The asyncio HTTP front end of the study service.

Pure stdlib: a hand-rolled HTTP/1.1 loop over ``asyncio.start_server``
-- no framework, no threads beyond the supervisor's pool.  Blocking
work (netlist parsing, reduction, planning) runs in the default
executor so the event loop keeps serving health checks and progress
streams while a submission is being realized.

Routes::

    GET  /healthz            service document (store, budget, job count)
    GET  /metrics            process metrics-registry snapshot
    POST /jobs               submit a job document -> 202 queued,
                             200 done (served from the result index),
                             413 rejected at admission (peak estimate
                             in the body), 400 malformed
    GET  /jobs               status documents for every job
    GET  /jobs/{id}          one job's status document
    GET  /jobs/{id}/result   the canonical result bytes (409 until done)
    GET  /jobs/{id}/events   NDJSON progress stream (chunk spans,
                             checkpoint saves, lifecycle transitions);
                             ends when the job reaches a final state
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.runtime.store import StoreError
from repro.serve.protocol import ProtocolError
from repro.serve.supervisor import StudySupervisor

__all__ = ["StudyServer", "run"]

#: Submission body bound: a netlist plus options is kilobytes; anything
#: approaching this is a mistake or an attack, not a job.
MAX_BODY_BYTES = 8 * 2**20
_REQUESTS = obs_metrics.counter("serve.http_requests")

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class StudyServer:
    """One listening socket in front of a :class:`StudySupervisor`."""

    def __init__(self, supervisor: StudySupervisor,
                 host: str = "127.0.0.1", port: int = 0,
                 stream_poll: float = 0.05):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.stream_poll = stream_poll
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have run)."""
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.supervisor.shutdown(wait=False)

    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        return f"http://{self.host}:{self.port}"

    # -- request plumbing ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            method, path, body = request
            _REQUESTS.inc()
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - connection isolation
            try:
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        header_bytes = await reader.readuntil(b"\r\n\r\n")
        request_line, *header_lines = header_bytes.decode(
            "latin-1"
        ).split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            await self._send_json(writer, 400, {"error": "malformed request"})
            return None
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await self._send_json(
                writer, 413,
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
            )
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _send(self, writer, status: int, data: bytes,
                    content_type: str) -> None:
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(data)
        await writer.drain()

    async def _send_json(self, writer, status: int, payload: dict) -> None:
        await self._send(
            writer, status,
            json.dumps(payload, sort_keys=True).encode(),
            "application/json",
        )

    # -- routing -------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self.supervisor.describe())
            return
        if path == "/metrics" and method == "GET":
            await self._send_json(
                writer, 200, obs_metrics.registry().snapshot()
            )
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(body, writer)
                return
            if method == "GET":
                await self._send_json(
                    writer, 200, {"jobs": self.supervisor.registry.list()}
                )
                return
            await self._send_json(writer, 405, {"error": "use GET or POST"})
            return
        if path.startswith("/jobs/"):
            await self._job_route(method, path, writer)
            return
        await self._send_json(writer, 404, {"error": f"no route {path!r}"})

    async def _submit(self, body: bytes, writer) -> None:
        loop = asyncio.get_running_loop()
        try:
            job = await loop.run_in_executor(
                None, self.supervisor.submit, body
            )
        except ProtocolError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        except StoreError as exc:
            await self._send_json(writer, 500, {"error": str(exc)})
            return
        description = job.describe()
        if job.state == "rejected":
            await self._send_json(writer, 413, {
                "error": job.error,
                "peak_bytes": job.peak_bytes,
                "memory_budget": self.supervisor.memory_budget,
                "job": description,
            })
            return
        status = 200 if job.state == "done" else 202
        await self._send_json(writer, status, {"job": description})

    async def _job_route(self, method: str, path: str, writer) -> None:
        if method != "GET":
            await self._send_json(writer, 405, {"error": "use GET"})
            return
        segments = path.strip("/").split("/")
        job = self.supervisor.registry.get(segments[1])
        if job is None:
            await self._send_json(
                writer, 404, {"error": f"unknown job {segments[1]!r}"}
            )
            return
        action = segments[2] if len(segments) > 2 else None
        if action is None:
            await self._send_json(writer, 200, {"job": job.describe()})
            return
        if action == "result":
            if job.state != "done":
                await self._send_json(writer, 409, {
                    "error": f"job is {job.state}, not done",
                    "job": job.describe(),
                })
                return
            await self._send(
                writer, 200, job.result_bytes, "application/json"
            )
            return
        if action == "events":
            await self._stream_events(job, writer)
            return
        await self._send_json(writer, 404, {"error": f"no action {action!r}"})

    async def _stream_events(self, job, writer) -> None:
        """NDJSON progress stream: replay the log, then follow it."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        cursor = 0
        while True:
            events, cursor = job.events_since(cursor)
            for event in events:
                writer.write(json.dumps(event, sort_keys=True).encode())
                writer.write(b"\n")
            if events:
                await writer.drain()
            if job.terminal:
                tail, _ = job.events_since(cursor)
                if not tail:
                    break
                continue
            await asyncio.sleep(self.stream_poll)
        await writer.drain()


def run(store, host: str = "127.0.0.1", port: int = 8787,
        memory_budget: Optional[int] = None, pool_size: int = 2,
        model_cache=None, ttl: float = 30.0, poll: float = 0.05,
        warehouse=None, announce=print) -> None:
    """Build a supervisor + server and serve until interrupted.

    The blocking convenience entry the ``repro serve`` CLI command
    wraps; ``announce`` receives one line with the bound URL once the
    socket is listening (tests and scripts parse it to discover an
    ephemeral port).  ``warehouse`` optionally names a columnar
    warehouse directory every completed job's checkpoints are ingested
    into (see :class:`~repro.serve.supervisor.StudySupervisor`).
    """
    supervisor = StudySupervisor(
        store, memory_budget=memory_budget, pool_size=pool_size,
        model_cache=model_cache, ttl=ttl, poll=poll, warehouse=warehouse,
    )
    server = StudyServer(supervisor, host=host, port=port)

    async def _main():
        await server.start()
        if announce is not None:
            announce(
                f"# serving on {server.url}  store: "
                f"{supervisor.store.directory}"
            )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        pass
    finally:
        supervisor.shutdown(wait=False)
