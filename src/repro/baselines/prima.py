"""PRIMA: passive reduced-order interconnect macromodeling [4].

Given the MNA system ``C x' = -G x + B u, y = L^T x``, PRIMA computes
an orthonormal basis ``V`` of the block Krylov subspace

``Kr(A, R, q) = colspan{R, A R, ..., A^{q-1} R}``,
``A = -(G + s0 C)^{-1} C,   R = (G + s0 C)^{-1} B``,

and reduces all system matrices by congruence (paper eq. (2)).  The
reduced model matches ``q`` block moments of the transfer function
about the expansion point ``s0`` and -- because congruence preserves
the passivity structure of RLC MNA matrices -- is provably passive
when ``B = L``.

The expansion point ``s0`` defaults to 0 (the classic formulation);
a positive real ``s0`` is useful when ``G`` is singular (e.g. purely
capacitive loads with no DC path).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.statespace import DescriptorSystem
from repro.linalg.orth import DEFAULT_DEFLATION_TOL, block_krylov
from repro.linalg.sparselu import SparseLU


def prima_projection(
    system: DescriptorSystem,
    num_moments: int,
    expansion_point: float = 0.0,
    tol: float = DEFAULT_DEFLATION_TOL,
    lu: Optional[SparseLU] = None,
) -> np.ndarray:
    """Orthonormal PRIMA projection basis matching ``num_moments`` block moments.

    Parameters
    ----------
    system:
        The full MNA system.
    num_moments:
        Number of block moments ``q`` (the reduced order is at most
        ``q * num_inputs``, less after deflation).
    expansion_point:
        Real expansion point ``s0``; moments are of ``H(s0 + sigma)``.
    tol:
        Deflation tolerance for the block Arnoldi recursion.
    lu:
        Optional pre-computed factorization of ``G + s0 C`` (shared
        factorization; avoids recounting in the cost benchmarks).
    """
    if num_moments < 1:
        raise ValueError("num_moments must be >= 1")
    if lu is None:
        pencil = system.G + expansion_point * system.C if expansion_point else system.G
        lu = SparseLU(pencil)
    c_matrix = system.C
    b_dense = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    start = lu.solve(b_dense)

    def apply_a(block: np.ndarray) -> np.ndarray:
        return -lu.solve(np.asarray(c_matrix @ block))

    return block_krylov(apply_a, start, num_moments, tol=tol)


def prima(
    system: DescriptorSystem,
    num_moments: int,
    expansion_point: float = 0.0,
    tol: float = DEFAULT_DEFLATION_TOL,
) -> Tuple[DescriptorSystem, np.ndarray]:
    """Reduce ``system`` with PRIMA; returns ``(reduced, projection)``."""
    projection = prima_projection(
        system, num_moments, expansion_point=expansion_point, tol=tol
    )
    reduced = system.reduce(projection, title=f"{system.title}[prima q={num_moments}]")
    return reduced, projection
