"""AWE-style explicit moments and Pade pole extraction [1].

Asymptotic waveform evaluation works with the *explicit* transfer
function moments

``m_k = L^T A^k R,   A = -G^{-1} C,   R = G^{-1} B``

so that ``H(s) = sum_k m_k s^k``.  Explicit moment matching is known to
be numerically fragile beyond ~8 moments (the motivation for the Krylov
methods the paper builds on), but the first several moments are an
excellent *oracle*: this module is used by the test suite to verify
that the projection-based reducers really match the moments they claim
to match, and by the examples to extract dominant poles the AWE way.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.statespace import DescriptorSystem
from repro.linalg.sparselu import SparseLU


def transfer_moments(
    system: DescriptorSystem,
    num_moments: int,
    expansion_point: float = 0.0,
    lu: Optional[SparseLU] = None,
) -> np.ndarray:
    """Block moments ``m_0 .. m_{num_moments-1}`` of ``H`` about ``s0``.

    Returns an array of shape ``(num_moments, m_out, m_in)`` with
    ``m_k = L^T (-(G + s0 C)^{-1} C)^k (G + s0 C)^{-1} B``, i.e. the
    Taylor coefficients of ``H(s0 + sigma)`` in ``sigma``.
    """
    if num_moments < 1:
        raise ValueError("num_moments must be >= 1")
    if lu is None:
        pencil = system.G + expansion_point * system.C if expansion_point else system.G
        lu = SparseLU(pencil)
    b_dense = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    l_dense = system.L.toarray() if hasattr(system.L, "toarray") else np.asarray(system.L)
    block = lu.solve(b_dense)
    moments = np.empty((num_moments, l_dense.shape[1], b_dense.shape[1]))
    for k in range(num_moments):
        moments[k] = l_dense.T @ block
        if k + 1 < num_moments:
            block = -lu.solve(np.asarray(system.C @ block))
    return moments


def pade_poles(moments: np.ndarray, num_poles: int) -> Tuple[np.ndarray, np.ndarray]:
    """Poles and residues of a [q-1/q] Pade approximant from scalar moments.

    Implements the classic AWE procedure for a SISO moment sequence
    ``m_0 .. m_{2q-1}``: solve the Hankel system for the denominator
    coefficients, root it for the poles ``p_j`` (in the ``1/s``-style
    AWE convention poles satisfy ``sum_j r_j / (s - p_j) = H(s)``),
    then solve a Vandermonde system for the residues.

    Parameters
    ----------
    moments:
        1-D array of at least ``2 * num_poles`` scalar moments.
    num_poles:
        Approximant order ``q``.

    Returns
    -------
    (poles, residues):
        Complex arrays of length ``q`` sorted by ascending ``|pole|``
        (most dominant first).
    """
    moments = np.asarray(moments, dtype=float).ravel()
    q = int(num_poles)
    if q < 1:
        raise ValueError("num_poles must be >= 1")
    if moments.size < 2 * q:
        raise ValueError(f"need at least {2 * q} moments, got {moments.size}")
    # Hankel system: sum_{i=0}^{q-1} a_i m_{j+i} = -m_{j+q}, j = 0..q-1.
    hankel = np.empty((q, q))
    for j in range(q):
        hankel[j] = moments[j : j + q]
    rhs = -moments[q : 2 * q]
    denom = np.linalg.solve(hankel, rhs)
    # Characteristic polynomial (in 1/s after scaling): a_0 + a_1 x + ... + x^q.
    coefficients = np.concatenate(([1.0], denom[::-1]))
    roots = np.roots(coefficients)
    poles = 1.0 / roots
    # Residues from the moment equations: m_k = -sum_j r_j / p_j^{k+1}.
    vandermonde = np.empty((q, q), dtype=complex)
    for k in range(q):
        vandermonde[k] = -1.0 / poles ** (k + 1)
    residues = np.linalg.solve(vandermonde, moments[:q].astype(complex))
    order = np.argsort(np.abs(poles))
    return poles[order], residues[order]
