"""Rational (multi-shift) Krylov reduction (extension).

Complements PRIMA's single-expansion-point subspace with the standard
wide-band remedy: match moments about *several* real frequency points
``s_1, ..., s_q`` simultaneously,

``V = orth[ Kr((G + s_1 C)^{-1}C, (G + s_1 C)^{-1}B, k_1), ... ]``,

and reduce by congruence (so passivity is preserved exactly as in
PRIMA).  This is the frequency-axis analogue of the paper's Section 3.3
multi-point expansion in the *parameter* axis -- the same union-of-
subspaces construction, with the same one-factorization-per-shift cost,
which is why the two compose naturally: one can hand a rational-Arnoldi
``num_moments``/shift list to each parameter sample of the multi-point
reducer for doubly-sampled models.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.baselines.prima import prima_projection
from repro.circuits.statespace import DescriptorSystem
from repro.linalg.orth import DEFAULT_DEFLATION_TOL, stack_orthonormalize


def rational_arnoldi_projection(
    system: DescriptorSystem,
    shifts: Sequence[float],
    moments_per_shift: int,
    tol: float = DEFAULT_DEFLATION_TOL,
) -> np.ndarray:
    """Orthonormal union of shifted Krylov subspaces.

    Parameters
    ----------
    system:
        The full MNA system.
    shifts:
        Real expansion points ``s_j >= 0`` (one sparse factorization
        each).
    moments_per_shift:
        Block moments matched about every shift.
    tol:
        Deflation tolerance for the subspace union.
    """
    shifts = list(shifts)
    if not shifts:
        raise ValueError("need at least one shift")
    if any(s < 0 for s in shifts):
        raise ValueError("shifts must be non-negative reals")
    blocks = [
        prima_projection(system, moments_per_shift, expansion_point=s, tol=tol)
        for s in shifts
    ]
    return stack_orthonormalize(blocks, tol=tol)


def rational_arnoldi(
    system: DescriptorSystem,
    shifts: Sequence[float],
    moments_per_shift: int,
    tol: float = DEFAULT_DEFLATION_TOL,
) -> Tuple[DescriptorSystem, np.ndarray]:
    """Reduce ``system`` about several expansion points; ``(reduced, V)``."""
    projection = rational_arnoldi_projection(system, shifts, moments_per_shift, tol=tol)
    reduced = system.reduce(
        projection,
        title=f"{system.title}[rka x{len(list(shifts))} shifts]",
    )
    return reduced, projection


def logspaced_shifts(f_low: float, f_high: float, count: int) -> List[float]:
    """Real shifts log-spaced over a frequency band (Hz -> rad/s scale).

    A pragmatic default: ``s_j = 2 pi f_j`` for ``f_j`` log-spaced in
    ``[f_low, f_high]``.  Real shifts keep all arithmetic real while
    still pulling the approximation toward the band of interest.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if f_low <= 0 or f_high < f_low:
        raise ValueError("need 0 < f_low <= f_high")
    if count == 1:
        return [2.0 * np.pi * np.sqrt(f_low * f_high)]
    return list(2.0 * np.pi * np.logspace(np.log10(f_low), np.log10(f_high), count))
