"""The variational MOR of Liu, Pileggi, Strojwas [6]: projection fitting.

The method Taylor-expands the PRIMA projection matrix over the
variational parameters (paper eq. (4)),

``V(p) = V0 + sum_i V_{i,1} p_i + sum_i V_{i,2} p_i^2``,

determines the coefficient matrices by sampling the parameter space
(running PRIMA on each perturbed system and solving small linear
systems entrywise), and produces a parametric reduced model by
inserting ``V(p)`` into the congruence transforms (paper eq. (2)).

The paper under reproduction points out the known weakness (its
Section 3.3): the Krylov basis is not a continuous function of the
parameters -- column ordering, signs, and deflation decisions jump
around -- "sometimes it is observed that the projection matrix is
sensitive w.r.t variational parameters thus making a direct fitting
less robust".  We implement the method faithfully, including an
optional orthogonal-Procrustes alignment of each sampled basis to the
nominal one that mitigates (but cannot eliminate) sign/rotation
ambiguity.  The regression tests exercise both behaviours.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.prima import prima_projection
from repro.circuits.statespace import DescriptorSystem
from repro.circuits.variational import ParametricSystem


class FittedProjectionModel:
    """Parametric reduced model with a polynomially fitted projection.

    ``coefficients`` holds ``[V0, V_{1,1}, ..., V_{np,1}, V_{1,2}, ...,
    V_{np,2}]`` (quadratic fit) or just the linear part, depending on
    the fit degree.
    """

    def __init__(
        self,
        parametric: ParametricSystem,
        coefficients: List[np.ndarray],
        degree: int,
    ):
        self.parametric = parametric
        self.coefficients = coefficients
        self.degree = degree

    @property
    def size(self) -> int:
        """Number of reduced states (columns of the projection)."""
        return self.coefficients[0].shape[1]

    def projection_at(self, p: Sequence[float]) -> np.ndarray:
        """Evaluate ``V(p)`` from the fitted Taylor coefficients."""
        point = np.atleast_1d(np.asarray(p, dtype=float))
        num_parameters = self.parametric.num_parameters
        if point.shape != (num_parameters,):
            raise ValueError(f"expected {num_parameters} parameters")
        v = self.coefficients[0].copy()
        for i in range(num_parameters):
            v += point[i] * self.coefficients[1 + i]
        if self.degree >= 2:
            for i in range(num_parameters):
                v += point[i] ** 2 * self.coefficients[1 + num_parameters + i]
        return v

    def instantiate(self, p: Sequence[float]) -> DescriptorSystem:
        """Reduced system at parameter point ``p`` (eq. (4) into eq. (2))."""
        v = self.projection_at(p)
        return self.parametric.instantiate(p).reduce(
            v, title=f"{self.parametric.nominal.title}[fit]"
        )

    def transfer(self, s: complex, p: Sequence[float]) -> np.ndarray:
        """Reduced parametric transfer function ``H_r(s, p)``."""
        return self.instantiate(p).transfer(s)


def _align(basis: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Orthogonal-Procrustes alignment of ``basis`` onto ``reference``.

    Krylov bases of nearby systems span nearby subspaces but the
    *representatives* differ by an orthogonal transform; fitting raw
    entries without alignment mostly fits that noise.
    """
    k = min(basis.shape[1], reference.shape[1])
    u, _, v_t = np.linalg.svd(basis[:, :k].T @ reference[:, :k])
    return basis[:, :k] @ (u @ v_t)


def fit_projection_model(
    parametric: ParametricSystem,
    sample_points: Sequence[Sequence[float]],
    num_moments: int,
    degree: int = 2,
    expansion_point: float = 0.0,
    align: bool = True,
) -> FittedProjectionModel:
    """Fit ``V(p)`` over PRIMA projections sampled at ``sample_points``.

    Parameters
    ----------
    parametric:
        The variational system.
    sample_points:
        Parameter points to sample; need at least as many as fit
        coefficients (``1 + np`` for linear, ``1 + 2 np`` for quadratic).
    num_moments:
        PRIMA moments matched at each sample.
    degree:
        1 (linear) or 2 (quadratic, paper eq. (4)).
    expansion_point:
        PRIMA expansion point.
    align:
        Procrustes-align each sampled basis to the nominal basis before
        fitting (recommended; ``False`` reproduces the raw fragility).
    """
    if degree not in (1, 2):
        raise ValueError("degree must be 1 or 2")
    points = np.atleast_2d(np.asarray(sample_points, dtype=float))
    num_parameters = parametric.num_parameters
    if points.shape[1] != num_parameters:
        raise ValueError(
            f"sample points have {points.shape[1]} coordinates, expected {num_parameters}"
        )
    num_coefficients = 1 + num_parameters * degree
    if points.shape[0] < num_coefficients:
        raise ValueError(
            f"need at least {num_coefficients} sample points for a degree-{degree} "
            f"fit in {num_parameters} parameters, got {points.shape[0]}"
        )

    nominal_basis: Optional[np.ndarray] = None
    bases = []
    for point in points:
        system = parametric.instantiate(point)
        basis = prima_projection(system, num_moments, expansion_point=expansion_point)
        if nominal_basis is None:
            nominal_basis = basis
        width = min(basis.shape[1], nominal_basis.shape[1])
        basis = basis[:, :width]
        if align:
            basis = _align(basis, nominal_basis)
        bases.append(basis)
    width = min(b.shape[1] for b in bases)
    bases = [b[:, :width] for b in bases]

    # Least-squares fit of each entry of V over the polynomial basis
    # [1, p_1..p_np, p_1^2..p_np^2].
    design = np.ones((points.shape[0], num_coefficients))
    design[:, 1 : 1 + num_parameters] = points
    if degree == 2:
        design[:, 1 + num_parameters :] = points ** 2
    stacked = np.stack([b.ravel() for b in bases])  # (samples, n*q)
    solution, *_ = np.linalg.lstsq(design, stacked, rcond=None)
    n = parametric.order
    coefficients = [solution[j].reshape(n, width) for j in range(num_coefficients)]
    return FittedProjectionModel(parametric, coefficients, degree)
