"""Baseline model order reduction methods.

- :mod:`repro.baselines.prima` -- the PRIMA algorithm [4]: passive
  reduced-order interconnect macromodeling via block Krylov projection.
  Every parametric method in :mod:`repro.core` builds on it.
- :mod:`repro.baselines.tbr` -- truncated balanced realization [5][8],
  the control-theoretic baseline the paper contrasts moment matching
  against (accurate but expensive).
- :mod:`repro.baselines.awe` -- explicit moment computation and Pade
  extraction in the AWE style [1]; used as a cross-check oracle for the
  Krylov implementations.
- :mod:`repro.baselines.projection_fit` -- the variational method of
  Liu et al. [6]: Taylor-expanding the PRIMA projection matrix over
  parameter-space samples by direct fitting.
"""

from repro.baselines.awe import pade_poles, transfer_moments
from repro.baselines.prima import prima, prima_projection
from repro.baselines.projection_fit import FittedProjectionModel, fit_projection_model
from repro.baselines.rational_arnoldi import (
    logspaced_shifts,
    rational_arnoldi,
    rational_arnoldi_projection,
)
from repro.baselines.tbr import hankel_singular_values, tbr

__all__ = [
    "FittedProjectionModel",
    "fit_projection_model",
    "hankel_singular_values",
    "logspaced_shifts",
    "pade_poles",
    "prima",
    "prima_projection",
    "rational_arnoldi",
    "rational_arnoldi_projection",
    "tbr",
    "transfer_moments",
]
