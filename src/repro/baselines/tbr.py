"""Truncated balanced realization (TBR) [5][8].

The control-theoretic baseline the paper positions moment matching
against: more accurate per reduced order, but requiring the solution of
two Lyapunov equations (``O(n^3)``), which is what "precludes these
methods from being directly applied to large practical problems"
(paper, Section 1).

We implement the square-root balancing algorithm for the descriptor
system ``C x' = -G x + B u, y = L^T x`` with nonsingular ``C`` (true
for RC nets with grounded capacitors at every node and for the reduced
macromodels this package produces):

1. convert to standard form ``x' = A x + Bs u`` with ``A = -C^{-1} G``,
   ``Bs = C^{-1} B``;
2. solve ``A P + P A^T + Bs Bs^T = 0`` and ``A^T Q + Q A + L L^T = 0``;
3. balance via the SVD of ``R_q^T R_p`` for Cholesky-like factors of
   ``Q`` and ``P``; truncate at order ``q``.

Returned models are dense standard state-space systems wrapped back
into :class:`~repro.circuits.statespace.DescriptorSystem` (with
``C = I``), because balancing does not preserve the MNA congruence
structure (and hence not passivity -- one of the paper's arguments for
the projection framework).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as dla

from repro.circuits.statespace import DescriptorSystem


def _standard_form(system: DescriptorSystem) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    g = system.G.toarray() if hasattr(system.G, "toarray") else np.asarray(system.G)
    c = system.C.toarray() if hasattr(system.C, "toarray") else np.asarray(system.C)
    b = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    l_mat = system.L.toarray() if hasattr(system.L, "toarray") else np.asarray(system.L)
    try:
        a = np.linalg.solve(c, -g)
        b_std = np.linalg.solve(c, b)
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "TBR requires a nonsingular C matrix (descriptor systems with "
            "singular C are outside this baseline's scope)"
        ) from exc
    return a, b_std, l_mat


def _psd_factor(gram: np.ndarray) -> np.ndarray:
    """Cholesky-like factor ``F`` with ``gram = F F^T`` for PSD ``gram``."""
    gram = 0.5 * (gram + gram.T)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvectors * np.sqrt(eigenvalues)


def gramians(system: DescriptorSystem) -> Tuple[np.ndarray, np.ndarray]:
    """Controllability and observability Gramians ``(P, Q)``."""
    a, b_std, l_mat = _standard_form(system)
    p = dla.solve_continuous_lyapunov(a, -b_std @ b_std.T)
    q = dla.solve_continuous_lyapunov(a.T, -l_mat @ l_mat.T)
    return p, q


def hankel_singular_values(system: DescriptorSystem) -> np.ndarray:
    """Hankel singular values (the TBR truncation criterion)."""
    p, q = gramians(system)
    product = p @ q
    eigenvalues = np.linalg.eigvals(product)
    eigenvalues = np.clip(eigenvalues.real, 0.0, None)
    return np.sort(np.sqrt(eigenvalues))[::-1]


def tbr(system: DescriptorSystem, order: int) -> Tuple[DescriptorSystem, np.ndarray]:
    """Balanced truncation to ``order`` states.

    Returns ``(reduced, hankel_singular_values)``.  The reduced system
    is in standard form (``C = I``), with the truncated Hankel singular
    values quantifying the guaranteed H-infinity error bound
    ``2 * sum(discarded hsv)``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    a, b_std, l_mat = _standard_form(system)
    n = a.shape[0]
    order = min(order, n)
    p = dla.solve_continuous_lyapunov(a, -b_std @ b_std.T)
    q = dla.solve_continuous_lyapunov(a.T, -l_mat @ l_mat.T)
    factor_p = _psd_factor(p)
    factor_q = _psd_factor(q)
    u, sigma, v_t = np.linalg.svd(factor_q.T @ factor_p)
    positive = sigma > max(sigma[0], 1.0) * 1e-13 if sigma.size else sigma > 0
    rank = int(np.sum(positive))
    order = min(order, rank)
    sigma_k = sigma[:order]
    scale = 1.0 / np.sqrt(sigma_k)
    # Balancing transformations: x = T z, z = W^T x.
    t_right = factor_p @ v_t[:order, :].T * scale
    w_left = factor_q @ u[:, :order] * scale
    a_r = w_left.T @ a @ t_right
    b_r = w_left.T @ b_std
    l_r = t_right.T @ l_mat
    reduced = DescriptorSystem(
        -a_r,
        np.eye(order),
        b_r,
        l_r,
        input_names=list(system.input_names),
        output_names=list(system.output_names),
        title=f"{system.title}[tbr q={order}]",
    )
    return reduced, sigma
