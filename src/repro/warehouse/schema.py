"""Chunk payload -> columnar tables.

One verified StudyStore chunk payload (the dict of numpy arrays a
:class:`~repro.runtime.store.StudyCheckpoint` persists) becomes up to
three tables, all carrying the same provenance columns:

``instances`` (wide; one row per instance)
    ``study`` (key16), ``instance`` (global index), optional parameter
    columns ``p_<name>``, per-instance workload metrics (``delay`` /
    ``slew`` / ``steady_<j>`` for transients, ``num_poles`` for pole
    studies), and the ``verified`` precision-tier column (1 = float64
    or re-verified, 0 = screen-accepted float32).

``poles`` (long; one row per pole)
    ``instance``, ``pole_index``, ``re``, ``im`` -- the exact float64
    components of each complex pole, so ragged per-instance pole sets
    round-trip bitwise.

``envelope`` (long; one row per envelope cell)
    This chunk's contribution to the study envelope: ``pos`` (frequency
    or time index), ``out``, ``inp`` (``-1`` for transients, which have
    no input axis), ``env_min``, ``env_max``, ``env_sum``, and
    ``count`` (instances in the chunk, so means stay derivable after
    any regrouping).

Provenance columns on every table: ``chunk`` (index), ``chunk_sha256``
(the manifest-recorded archive checksum -- re-checkable against the
store), ``worker`` (work-stealing worker id, ``""`` for static runs),
``source`` (``computed`` / ``resumed`` / ``stolen`` when trace lineage
was available at ingest, else ``stored``).

Raw per-instance response grids (``keep_responses`` sweeps) and output
waveforms (``keep_outputs`` transients) deliberately stay in the store:
they are dense rectangular bulk, already durable and checksummed there,
and warehousing them would duplicate gigabytes without adding a single
queryable aggregate.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["chunk_tables"]


def _provenance(n: int, record: dict, source: str) -> Dict[str, np.ndarray]:
    return {
        "chunk": np.full(n, int(record["index"]), dtype=np.int64),
        "chunk_sha256": np.full(n, record["sha256"]),
        "worker": np.full(n, record.get("worker") or ""),
        "source": np.full(n, source),
    }


def _instance_base(
    key16: str, lo: int, hi: int, samples: Optional[np.ndarray],
    parameter_names,
) -> Dict[str, np.ndarray]:
    n = hi - lo
    columns = {
        "study": np.full(n, key16),
        "instance": np.arange(lo, hi, dtype=np.int64),
    }
    if samples is not None:
        block = np.asarray(samples, dtype=float)[lo:hi]
        names = list(parameter_names) if parameter_names is not None else [
            str(j) for j in range(block.shape[1])
        ]
        for j, name in enumerate(names):
            columns[f"p_{name}"] = np.ascontiguousarray(block[:, j])
    return columns


def _verified_column(payload: dict, n: int) -> np.ndarray:
    verified = payload.get("verified")
    if verified is None:
        # Full-precision runs: every row is float64 by construction.
        return np.ones(n, dtype=np.int8)
    return np.asarray(verified, dtype=bool).astype(np.int8)


def _envelope_table(payload: dict) -> Optional[Dict[str, np.ndarray]]:
    env_min = payload.get("env_min")
    if env_min is None:
        return None
    env_min = np.asarray(env_min, dtype=float)
    env_max = np.asarray(payload["env_max"], dtype=float)
    env_sum = np.asarray(payload["env_sum"], dtype=float)
    if env_min.ndim == 3:  # sweep: (n_f, n_out, n_in)
        pos, out, inp = np.indices(env_min.shape)
        inp = inp.ravel().astype(np.int64)
    else:  # transient: (n_t + 1, n_out); no input axis
        pos, out = np.indices(env_min.shape)
        inp = np.full(env_min.size, -1, dtype=np.int64)
    return {
        "pos": pos.ravel().astype(np.int64),
        "out": out.ravel().astype(np.int64),
        "inp": inp,
        "env_min": env_min.ravel(),
        "env_max": env_max.ravel(),
        "env_sum": env_sum.ravel(),
    }


def _pole_rows(payload: dict, lo: int):
    """``(instance, pole_index, re, im)`` rows from either pole layout.

    Standalone pole studies persist the zero-padded ``poles_padded`` +
    ``poles_lengths`` pair (ragged sets); sweep-riding poles persist a
    rectangular complex ``poles`` matrix.  Both split into exact
    float64 components.
    """
    padded = payload.get("poles_padded")
    if padded is not None:
        lengths = np.asarray(payload["poles_lengths"], dtype=np.int64)
        padded = np.asarray(padded, dtype=complex)
        instance = np.repeat(np.arange(lo, lo + lengths.size, dtype=np.int64),
                             lengths)
        pole_index = np.concatenate(
            [np.arange(length, dtype=np.int64) for length in lengths]
        ) if lengths.size else np.zeros(0, dtype=np.int64)
        mask = np.arange(padded.shape[1]) < lengths[:, None] if lengths.size \
            else np.zeros(padded.shape, dtype=bool)
        values = padded[mask]
        return instance, pole_index, values, lengths
    poles = payload.get("poles")
    if poles is None:
        return None
    poles = np.atleast_2d(np.asarray(poles, dtype=complex))
    m, width = poles.shape
    instance = np.repeat(np.arange(lo, lo + m, dtype=np.int64), width)
    pole_index = np.tile(np.arange(width, dtype=np.int64), m)
    lengths = np.full(m, width, dtype=np.int64)
    return instance, pole_index, poles.ravel(), lengths


def chunk_tables(
    key16: str,
    record: dict,
    payload: Dict[str, np.ndarray],
    samples: Optional[np.ndarray] = None,
    parameter_names=None,
    source: str = "stored",
) -> Dict[str, Dict[str, np.ndarray]]:
    """All applicable tables for one verified chunk.

    ``record`` is the annotated manifest record
    (:meth:`~repro.runtime.store.StudyStore.iter_chunks`), ``payload``
    the verified archive contents.  Returns ``{table_name: columns}``;
    the ``instances`` table is always present.
    """
    lo, hi = int(record["lo"]), int(record["hi"])
    n = hi - lo
    tables: Dict[str, Dict[str, np.ndarray]] = {}

    instances = _instance_base(key16, lo, hi, samples, parameter_names)
    if "delays" in payload:
        instances["delay"] = np.asarray(payload["delays"], dtype=float)
        instances["slew"] = np.asarray(payload["slews"], dtype=float)
        steady = np.atleast_2d(np.asarray(payload["steady_states"], dtype=float))
        for j in range(steady.shape[1]):
            instances[f"steady_{j}"] = np.ascontiguousarray(steady[:, j])

    pole_rows = _pole_rows(payload, lo)
    if pole_rows is not None:
        instance, pole_index, values, lengths = pole_rows
        instances["num_poles"] = lengths
        tables["poles"] = {
            "study": np.full(instance.size, key16),
            "instance": instance,
            "pole_index": pole_index,
            "re": np.ascontiguousarray(values.real),
            "im": np.ascontiguousarray(values.imag),
            **_provenance(instance.size, record, source),
        }

    instances["verified"] = _verified_column(payload, n)
    instances.update(_provenance(n, record, source))
    envelope = _envelope_table(payload)
    if envelope is not None:
        size = envelope["pos"].size
        envelope["count"] = np.full(size, n, dtype=np.int64)
        envelope["study"] = np.full(size, key16)
        envelope.update(_provenance(size, record, source))
        tables["envelope"] = envelope
    tables["instances"] = instances
    return tables
