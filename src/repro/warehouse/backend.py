"""Columnar file backends for the result warehouse.

The warehouse core is format-agnostic: ingest produces plain
``{column_name: numpy array}`` tables and hands them to a backend that
owns serialization.  Two backends exist:

- :class:`ParquetBackend` writes Apache Parquet through ``pyarrow`` --
  the production format, queryable by duckdb/polars out-of-core.
  ``pyarrow`` is an **optional extra**: when it is not installed the
  backend is unavailable and says so in one line.
- :class:`NativeBackend` writes columnar ``.npz`` archives (one numpy
  array per column) with no dependency beyond numpy.  It is the
  fallback ``"auto"`` resolves to when pyarrow is absent, keeps every
  warehouse feature (idempotent ingest, provenance columns, streamed
  aggregation) functional, and round-trips float64 columns bitwise.

Both write through the store's crash-durable atomic-replace idiom
(:func:`repro.runtime.store._durable_replace`), so a killed ingest can
never leave a torn table behind -- the chunk partition either holds a
complete file or none.

Readers dispatch on file extension (:func:`backend_for_file`), so one
dataset directory may legitimately mix formats -- e.g. Parquet written
on a machine with the extras, native archives appended by a bare
worker.  The query layer reads both transparently; only the external
engines (duckdb/polars) require an all-Parquet dataset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.runtime.store import StoreError, _durable_replace

__all__ = [
    "NativeBackend",
    "ParquetBackend",
    "WarehouseError",
    "backend_for_file",
    "have_duckdb",
    "have_polars",
    "have_pyarrow",
    "resolve_backend",
]


class WarehouseError(StoreError):
    """A warehouse operation failed (missing optional dependency,
    unreadable dataset, provenance mismatch, unwritable directory).

    Subclasses :class:`~repro.runtime.store.StoreError` so the CLI's
    existing mapping applies unchanged: exit code 2 with a one-line
    diagnostic, never a traceback.
    """


def _optional(module_name: str):
    try:
        return __import__(module_name)
    except ImportError:
        return None


def have_pyarrow() -> bool:
    """Whether the ``pyarrow`` optional extra is importable."""
    return _optional("pyarrow") is not None


def have_duckdb() -> bool:
    """Whether the ``duckdb`` optional extra is importable."""
    return _optional("duckdb") is not None


def have_polars() -> bool:
    """Whether the ``polars`` optional extra is importable."""
    return _optional("polars") is not None


def _write_durable(path: Path, data: bytes) -> None:
    import os

    scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        try:
            _durable_replace(scratch, path, data)
        finally:
            scratch.unlink(missing_ok=True)
    except OSError as exc:
        raise WarehouseError(
            f"cannot write warehouse file {str(path)!r}: {exc}"
        ) from None


class NativeBackend:
    """Dependency-free columnar backend: one numpy array per column.

    Tables are ``.npz`` archives.  ``np.load`` decompresses members
    lazily, so :meth:`read` with an explicit column list touches only
    the requested columns -- the property the streamed query engine's
    memory budget relies on.
    """

    name = "native"
    extension = ".npz"

    def write(self, path: Path, columns: Dict[str, np.ndarray]) -> int:
        import io

        buffer = io.BytesIO()
        np.savez(buffer, **columns)
        data = buffer.getvalue()
        _write_durable(Path(path), data)
        return len(data)

    def read(
        self, path: Path, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        try:
            with np.load(path) as archive:
                names = archive.files if columns is None else list(columns)
                return {name: archive[name] for name in names}
        except (OSError, KeyError, ValueError) as exc:
            raise WarehouseError(
                f"cannot read warehouse file {str(path)!r}: {exc}"
            ) from None

    def column_names(self, path: Path) -> list:
        try:
            with np.load(path) as archive:
                return list(archive.files)
        except (OSError, ValueError) as exc:
            raise WarehouseError(
                f"cannot read warehouse file {str(path)!r}: {exc}"
            ) from None


class ParquetBackend:
    """Parquet through pyarrow (optional extra).

    Construction raises a one-line :class:`WarehouseError` when pyarrow
    is not importable, so ``--backend parquet`` on a bare machine fails
    up front with the remedy, and ``"auto"`` quietly falls back to the
    native backend instead.
    """

    name = "parquet"
    extension = ".parquet"

    def __init__(self):
        if not have_pyarrow():
            raise WarehouseError(
                "the parquet backend needs the optional 'pyarrow' extra "
                "(pip install pyarrow), or use the dependency-free native "
                "backend"
            )

    @staticmethod
    def _arrow(columns: Dict[str, np.ndarray]):
        import pyarrow as pa

        arrays = {}
        for name, values in columns.items():
            array = np.asarray(values)
            # Unicode/object columns go through python lists: arrow's
            # numpy fast path only covers numeric dtypes.
            if array.dtype.kind in ("U", "S", "O"):
                arrays[name] = pa.array([str(v) for v in array.tolist()])
            else:
                arrays[name] = pa.array(array)
        return pa.table(arrays)

    def write(self, path: Path, columns: Dict[str, np.ndarray]) -> int:
        import io

        import pyarrow.parquet as pq

        buffer = io.BytesIO()
        pq.write_table(self._arrow(columns), buffer)
        data = buffer.getvalue()
        _write_durable(Path(path), data)
        return len(data)

    def read(
        self, path: Path, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        import pyarrow.parquet as pq

        try:
            table = pq.read_table(
                path, columns=None if columns is None else list(columns)
            )
        except (OSError, ValueError) as exc:
            raise WarehouseError(
                f"cannot read warehouse file {str(path)!r}: {exc}"
            ) from None
        out = {}
        for name in table.column_names:
            column = table.column(name)
            values = column.to_numpy(zero_copy_only=False)
            out[name] = values
        return out

    def column_names(self, path: Path) -> list:
        import pyarrow.parquet as pq

        try:
            return list(pq.ParquetFile(path).schema_arrow.names)
        except (OSError, ValueError) as exc:
            raise WarehouseError(
                f"cannot read warehouse file {str(path)!r}: {exc}"
            ) from None


def resolve_backend(spec="auto"):
    """Realize a backend spec: ``"auto"``, ``"parquet"``, ``"native"``,
    or an already-constructed backend object (passes through).

    ``"auto"`` prefers Parquet and silently falls back to the native
    backend when pyarrow is missing; an *explicit* ``"parquet"``
    request without pyarrow raises the one-line diagnostic instead --
    asking for a format you cannot write should never quietly produce
    a different one.
    """
    if hasattr(spec, "write") and hasattr(spec, "read"):
        return spec
    if spec == "auto":
        return ParquetBackend() if have_pyarrow() else NativeBackend()
    if spec == "parquet":
        return ParquetBackend()
    if spec == "native":
        return NativeBackend()
    raise WarehouseError(
        f"unknown warehouse backend {spec!r}: use 'auto', 'parquet', or 'native'"
    )


def backend_for_file(path) -> object:
    """The reader backend for one dataset file, by extension."""
    suffix = Path(path).suffix
    if suffix == ".parquet":
        return ParquetBackend()
    if suffix == ".npz":
        return NativeBackend()
    raise WarehouseError(
        f"unrecognized warehouse file {str(path)!r}: expected .parquet or .npz"
    )
