"""Out-of-core aggregation over warehouse datasets.

Three interchangeable engines compute the same aggregates:

- ``"stream"`` -- numpy, one partition file at a time, reading *only*
  the requested columns (both backends support column projection).  No
  dependency beyond numpy; honors an optional per-file memory budget.
- ``"duckdb"`` -- SQL over ``read_parquet`` file lists (all-Parquet
  datasets only).  Column values are pulled through SQL projection and
  reduced with the same numpy code as the stream engine, so results
  are exactly equal, not merely statistically close.
- ``"polars"`` -- lazy ``scan_parquet`` column projection, same final
  numpy reduction.

``"auto"`` prefers duckdb, then polars, then the stream engine -- and
silently uses the stream engine whenever the dataset contains native
``.npz`` partitions the external engines cannot read.

Exactness is the contract: ``percentile`` is a true percentile over the
gathered finite values (``np.percentile``), never a sketch; ``yield``
and ``outliers`` reduce the identical float64 values the solvers
persisted.  Every aggregate can therefore be asserted equal --
bitwise -- to the in-RAM result computed from the original study
object, which is what the acceptance tests and the warehouse CI drill
do.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.warehouse.backend import (
    WarehouseError,
    backend_for_file,
    have_duckdb,
    have_polars,
)
from repro.warehouse.ingest import Warehouse

__all__ = ["QueryEngine"]

_TABLE_EXTENSIONS = (".parquet", ".npz")


class QueryEngine:
    """Aggregations over one :class:`~repro.warehouse.Warehouse`.

    Parameters
    ----------
    warehouse:
        Dataset directory or :class:`Warehouse`.
    engine:
        ``"auto"``, ``"stream"``, ``"duckdb"``, or ``"polars"``.
        Explicitly requesting an engine that is unavailable (module not
        installed, or a non-Parquet dataset) raises a one-line
        :class:`~repro.warehouse.WarehouseError`.
    memory_budget:
        Optional bound in bytes on the column bytes materialized from
        any single partition file (the stream engine's working set).
        Files that would exceed it raise with the measured size, so an
        aggregation's memory footprint is a declared contract rather
        than an accident of dataset growth.
    """

    def __init__(self, warehouse, engine: str = "auto",
                 memory_budget: Optional[int] = None):
        self.warehouse = (
            warehouse if isinstance(warehouse, Warehouse)
            else Warehouse(warehouse, backend="auto")
        )
        if engine not in ("auto", "stream", "duckdb", "polars"):
            raise WarehouseError(
                f"unknown query engine {engine!r}: use 'auto', 'stream', "
                "'duckdb', or 'polars'"
            )
        self.engine_spec = engine
        self.memory_budget = (
            None if memory_budget is None else int(memory_budget)
        )
        if self.memory_budget is not None and self.memory_budget < 1:
            raise WarehouseError("memory budget must be >= 1 byte")
        #: Column bytes materialized by the most recent aggregation
        #: (peak per file, and total) -- how tests assert the
        #: out-of-core property instead of trusting it.
        self.last_peak_file_bytes = 0
        self.last_total_bytes = 0

    # -- dataset inventory ---------------------------------------------

    def studies(self) -> List[dict]:
        """Study records of the dataset (see :meth:`Warehouse.studies`)."""
        return self.warehouse.studies()

    def files(self, table: str, study: Optional[str] = None) -> List[Path]:
        """Sorted partition files of ``table`` (optionally one study)."""
        root = self.warehouse.directory
        prefix = f"key16={study[:16]}" if study else "key16=*"
        found: List[Path] = []
        for extension in _TABLE_EXTENSIONS:
            found.extend(
                root.glob(f"{prefix}/shard=*/chunk=*/{table}-*{extension}")
            )
        return sorted(found)

    def _resolve_engine(self, files: Sequence[Path]) -> str:
        all_parquet = bool(files) and all(
            path.suffix == ".parquet" for path in files
        )
        if self.engine_spec == "auto":
            if all_parquet and have_duckdb():
                return "duckdb"
            if all_parquet and have_polars():
                return "polars"
            return "stream"
        if self.engine_spec == "duckdb":
            if not have_duckdb():
                raise WarehouseError(
                    "the duckdb query engine needs the optional 'duckdb' "
                    "extra (pip install duckdb), or use --engine stream"
                )
            if not all_parquet:
                raise WarehouseError(
                    "the duckdb engine reads Parquet only, but this dataset "
                    "holds native .npz partitions; use --engine stream"
                )
        if self.engine_spec == "polars":
            if not have_polars():
                raise WarehouseError(
                    "the polars query engine needs the optional 'polars' "
                    "extra (pip install polars), or use --engine stream"
                )
            if not all_parquet:
                raise WarehouseError(
                    "the polars engine reads Parquet only, but this dataset "
                    "holds native .npz partitions; use --engine stream"
                )
        return self.engine_spec

    # -- column gathering (the per-engine part) ------------------------

    def _gather(self, table: str, columns: Sequence[str],
                study: Optional[str] = None) -> Dict[str, np.ndarray]:
        """Concatenated columns of ``table`` across every partition.

        Only the requested columns are materialized, whichever engine
        runs -- that is the out-of-core story: the dataset may be far
        larger than RAM as long as the projected columns fit.
        """
        files = self.files(table, study)
        if not files:
            raise WarehouseError(
                f"no {table!r} partitions"
                + (f" for study {study!r}" if study else "")
                + f" in {str(self.warehouse.directory)!r}"
            )
        engine = self._resolve_engine(files)
        self.last_peak_file_bytes = 0
        self.last_total_bytes = 0
        if engine == "duckdb":
            gathered = self._gather_duckdb(files, columns)
        elif engine == "polars":
            gathered = self._gather_polars(files, columns)
        else:
            gathered = self._gather_stream(files, columns)
        for name, values in gathered.items():
            self.last_total_bytes += int(np.asarray(values).nbytes)
        return gathered

    def _gather_stream(self, files, columns) -> Dict[str, np.ndarray]:
        parts: Dict[str, List[np.ndarray]] = {name: [] for name in columns}
        for path in files:
            loaded = backend_for_file(path).read(path, columns=columns)
            file_bytes = sum(
                int(np.asarray(values).nbytes) for values in loaded.values()
            )
            self.last_peak_file_bytes = max(
                self.last_peak_file_bytes, file_bytes
            )
            if self.memory_budget is not None \
                    and file_bytes > self.memory_budget:
                raise WarehouseError(
                    f"partition {path.name!r} materializes {file_bytes} "
                    f"column bytes, over the {self.memory_budget}-byte "
                    "memory budget; raise the budget or re-ingest with a "
                    "smaller chunk size"
                )
            for name in columns:
                parts[name].append(np.asarray(loaded[name]))
        return {name: np.concatenate(parts[name]) for name in columns}

    def _gather_duckdb(self, files, columns) -> Dict[str, np.ndarray]:
        import duckdb

        projection = ", ".join(f'"{name}"' for name in columns)
        connection = duckdb.connect()
        try:
            relation = connection.execute(
                f"SELECT {projection} FROM read_parquet(?, union_by_name=true)",
                [[str(path) for path in files]],
            )
            fetched = relation.fetchnumpy()
        finally:
            connection.close()
        return {
            name: np.asarray(fetched[name]) for name in columns
        }

    def _gather_polars(self, files, columns) -> Dict[str, np.ndarray]:
        import polars as pl

        frame = (
            pl.scan_parquet([str(path) for path in files])
            .select(list(columns))
            .collect()
        )
        return {name: frame[name].to_numpy() for name in columns}

    # -- aggregations --------------------------------------------------

    def metric_values(self, metric: str, table: str = "instances",
                      study: Optional[str] = None) -> np.ndarray:
        """All values of one metric column, dataset order."""
        return np.asarray(
            self._gather(table, [metric], study)[metric], dtype=float
        )

    def yield_fraction(self, metric: str, limit: float,
                       study: Optional[str] = None,
                       table: str = "instances") -> dict:
        """Fraction of instances whose ``metric`` passes ``<= limit``.

        Instances whose metric is NaN/Inf (e.g. a transient delay that
        never crossed the threshold) count as failing -- a delay you
        cannot measure is not a passing die.
        """
        values = self.metric_values(metric, table=table, study=study)
        passed = int(np.count_nonzero(
            np.isfinite(values) & (values <= limit)
        ))
        total = int(values.size)
        return {
            "metric": metric,
            "limit": float(limit),
            "passed": passed,
            "total": total,
            "fraction": passed / total if total else 0.0,
        }

    def percentile(self, metric: str, q: float,
                   study: Optional[str] = None,
                   table: str = "instances") -> dict:
        """Exact percentile of the finite values of ``metric``.

        Computed with :func:`np.percentile` over the gathered column,
        so the result is bitwise equal to the same reduction of the
        in-RAM study arrays -- no sketching, no approximation.
        """
        values = self.metric_values(metric, table=table, study=study)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            raise WarehouseError(
                f"percentile({metric!r}): no finite values in the dataset"
            )
        return {
            "metric": metric,
            "q": float(q),
            "value": float(np.percentile(finite, q)),
            "count": int(finite.size),
            "of": int(values.size),
        }

    def outliers(self, metric: str, k: int = 10,
                 study: Optional[str] = None,
                 largest: bool = True,
                 table: str = "instances") -> List[dict]:
        """The ``k`` most extreme instances with full provenance.

        Returns row dicts carrying the instance index and the
        provenance columns (chunk, chunk SHA-256, worker, source), so a
        suspicious corner can be traced to -- and re-verified against
        -- the exact checkpoint bytes that produced it.
        """
        columns = [
            metric, "study", "instance",
            "chunk", "chunk_sha256", "worker", "source",
        ]
        gathered = self._gather(table, columns, study)
        values = np.asarray(gathered[metric], dtype=float)
        finite = np.flatnonzero(np.isfinite(values))
        if finite.size == 0:
            return []
        order = np.argsort(values[finite], kind="stable")
        chosen = finite[order[::-1][:k] if largest else order[:k]]
        return [
            {
                "study": str(gathered["study"][i]),
                "instance": int(gathered["instance"][i]),
                metric: float(values[i]),
                "chunk": int(gathered["chunk"][i]),
                "chunk_sha256": str(gathered["chunk_sha256"][i]),
                "worker": str(gathered["worker"][i]),
                "source": str(gathered["source"][i]),
            }
            for i in chosen
        ]

    def provenance(self, study: Optional[str] = None,
                   table: str = "instances") -> List[dict]:
        """Unique chunk provenance rows of a dataset, chunk order.

        Each entry is ``{"chunk", "chunk_sha256", "worker", "source",
        "rows"}``.  Matching these SHA-256 values against
        :meth:`StudyStore.lineage` proves the warehouse rows derive
        from exactly the checkpoint bytes the store manifests record.
        """
        gathered = self._gather(
            table, ["chunk", "chunk_sha256", "worker", "source"], study
        )
        chunks = np.asarray(gathered["chunk"], dtype=np.int64)
        out = {}
        for i in range(chunks.size):
            index = int(chunks[i])
            entry = out.setdefault(index, {
                "chunk": index,
                "chunk_sha256": str(gathered["chunk_sha256"][i]),
                "worker": str(gathered["worker"][i]),
                "source": str(gathered["source"][i]),
                "rows": 0,
            })
            entry["rows"] += 1
        return [out[index] for index in sorted(out)]
