"""The result warehouse: partitioned columnar datasets from StudyStores.

A :class:`Warehouse` is a directory of partitioned column tables
converted from :class:`~repro.runtime.store.StudyStore` chunk
checkpoints::

    warehouse/
      key16=<study key16>/
        _study.json                          # fingerprint + layout record
        shard=<origin>/                      # 01of02, w-<worker>, or all
          chunk=00007/
            instances-<sha16>.parquet        # (or .npz: native backend)
            poles-<sha16>.parquet
            envelope-<sha16>.parquet

The partition keys mirror how the data was produced (study fingerprint
/ shard or worker origin / chunk index), and every file name embeds the
first 16 hex digits of the chunk archive's manifest SHA-256, so each
table file is content-addressed back to the exact checkpoint bytes it
was converted from.

**Idempotency is structural, not ledger-based.**  A chunk index is
ingested at most once per study: ingest checks the dataset for an
existing ``chunk=<index>`` partition holding an ``instances`` table
(written last, so a killed ingest re-converts) and skips it otherwise.
There is no side ledger to race on, which is what makes one warehouse
safely shared by concurrent ``repro work`` drainers and the serve
supervisor: the duplicate-suppression unit is the atomic
``os.replace`` of a content-named file, and alternate copies of one
chunk (two workers racing on the same index produce equivalent payloads
by the deterministic-kernel contract) resolve first-ingested-wins.

Provenance stays verifiable end to end: ``_study.json`` records the
full study fingerprint (target / samples / workload / config hashes),
ingest refuses a ``samples`` matrix whose fingerprint does not match
the manifest's, and every row carries the chunk SHA-256 the store
manifest records.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import array_fingerprint
from repro.runtime.store import StudyStore, _durable_replace
from repro.warehouse.backend import WarehouseError, resolve_backend
from repro.warehouse.schema import chunk_tables

__all__ = ["IngestReport", "Warehouse"]

_CHUNKS_INGESTED = obs_metrics.counter("warehouse.chunks_ingested")
_CHUNKS_SKIPPED = obs_metrics.counter("warehouse.chunks_skipped")
_ROWS_INGESTED = obs_metrics.counter("warehouse.rows_ingested")
_BYTES_WRITTEN = obs_metrics.counter("warehouse.bytes_written")

_STUDY_RECORD = "_study.json"
#: ``instances`` is written last, so its presence marks a fully
#: converted chunk partition -- the structural idempotency ledger.
_MARKER_TABLE = "instances"


@dataclass
class IngestReport:
    """What one :meth:`Warehouse.ingest_store` call did."""

    studies: List[str] = field(default_factory=list)
    chunks: int = 0
    skipped: int = 0
    rows: Dict[str, int] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)
    bytes_written: int = 0

    @property
    def rows_added(self) -> int:
        """Total rows written across all tables."""
        return sum(self.rows.values())

    def merge(self, other: "IngestReport") -> "IngestReport":
        for key16 in other.studies:
            if key16 not in self.studies:
                self.studies.append(key16)
        self.chunks += other.chunks
        self.skipped += other.skipped
        for name, count in other.rows.items():
            self.rows[name] = self.rows.get(name, 0) + count
        self.files.extend(other.files)
        self.bytes_written += other.bytes_written
        return self

    def __repr__(self) -> str:
        return (
            f"IngestReport(studies={len(self.studies)}, chunks={self.chunks}, "
            f"skipped={self.skipped}, rows={self.rows_added})"
        )


def _shard_label(record: dict) -> str:
    """Partition label for the manifest a chunk record came from."""
    worker = record.get("worker")
    if worker:
        return f"w-{worker}"
    shard = record.get("shard")
    if shard:
        index, of = shard
        return f"{index + 1:02d}of{of:02d}"
    return "all"


class Warehouse:
    """One partitioned columnar dataset directory.

    Parameters
    ----------
    directory:
        Dataset root; created if missing (writability probed up front,
        mirroring :class:`~repro.runtime.store.StudyStore`).
    backend:
        ``"auto"`` (Parquet when pyarrow is installed, else the
        dependency-free native ``.npz`` backend), ``"parquet"``,
        ``"native"``, or a backend object.  The backend governs what
        ingest *writes*; reads always dispatch per file, so mixed
        datasets stay queryable.
    """

    def __init__(self, directory, backend="auto"):
        self.directory = Path(directory)
        self.backend = resolve_backend(backend)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / f".write-probe-{os.getpid()}"
            probe.write_bytes(b"")
            probe.unlink()
        except OSError as exc:
            raise WarehouseError(
                f"warehouse directory {str(self.directory)!r} is not "
                f"writable: {exc}"
            ) from None

    # -- layout --------------------------------------------------------

    def dataset_dir(self, key16: str) -> Path:
        """Partition root for one study."""
        return self.directory / f"key16={key16}"

    def chunk_dir(self, key16: str, shard_label: str, index: int) -> Path:
        return (
            self.dataset_dir(key16)
            / f"shard={shard_label}"
            / f"chunk={index:05d}"
        )

    def _chunk_ingested(self, key16: str, index: int) -> bool:
        """Whether any shard partition already holds chunk ``index``.

        The check spans shard labels on purpose: the same chunk can
        reach the warehouse via a worker's manifest first and a resumed
        merge run's manifest later -- one logical chunk, one set of
        rows, first ingest wins.
        """
        pattern = f"shard=*/chunk={index:05d}/{_MARKER_TABLE}-*"
        return any(self.dataset_dir(key16).glob(pattern))

    def studies(self) -> List[dict]:
        """Every study record (``_study.json``) in the dataset."""
        records = []
        for path in sorted(self.directory.glob(f"key16=*/{_STUDY_RECORD}")):
            try:
                with open(path) as handle:
                    records.append(json.load(handle))
            except (OSError, json.JSONDecodeError) as exc:
                raise WarehouseError(
                    f"corrupt study record {str(path)!r}: {exc}"
                ) from None
        return records

    def _write_study_record(self, key16: str, record: dict) -> None:
        path = self.dataset_dir(key16) / _STUDY_RECORD
        if path.exists():
            return  # deterministic content; first writer wins
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            try:
                _durable_replace(
                    scratch, path,
                    json.dumps(record, indent=1, sort_keys=True).encode(),
                )
            finally:
                scratch.unlink(missing_ok=True)
        except OSError as exc:
            raise WarehouseError(
                f"cannot write study record {str(path)!r}: {exc}"
            ) from None

    # -- ingest --------------------------------------------------------

    def ingest_store(
        self,
        store,
        key: Optional[str] = None,
        samples=None,
        parameter_names=None,
        lineage: Optional[Dict[int, dict]] = None,
    ) -> IngestReport:
        """Convert a store's chunk checkpoints into dataset partitions.

        Parameters
        ----------
        store:
            Directory or :class:`~repro.runtime.store.StudyStore`.
        key:
            One study key (full or key16 prefix); default ingests every
            study the store holds manifests for.
        samples:
            The study's realized ``(m, n_p)`` sample matrix; when given
            its :func:`~repro.runtime.cache.array_fingerprint` must
            match the manifest's recorded samples hash (a mismatched
            matrix raises -- provenance is verified, not trusted) and
            per-instance parameter columns are emitted.  Omitted (bare
            CLI ingest from a store directory), rows carry metrics and
            provenance but no parameter values.
        parameter_names:
            Names for the parameter columns (``p_<name>``); defaults to
            positional indices.
        lineage:
            ``{chunk_index: {"source": ..., "worker": ...}}`` from
            :func:`repro.obs.lineage_sources`, attributing each chunk
            as ``computed`` / ``resumed`` / ``stolen``.  Without it the
            ``source`` column reads ``"stored"`` (the manifest alone
            cannot distinguish how the producing run obtained a chunk).

        Re-ingesting an already-ingested chunk is a no-op (see the
        module docstring); the returned :class:`IngestReport` counts
        both conversions and skips.
        """
        store = store if isinstance(store, StudyStore) else StudyStore(store)
        keys = self._resolve_keys(store, key)
        report = IngestReport()
        for study_key in keys:
            report.merge(
                self._ingest_study(
                    store, study_key, samples, parameter_names, lineage
                )
            )
        return report

    def _resolve_keys(self, store: StudyStore, key: Optional[str]) -> List[str]:
        keys = store.study_keys()
        if key is None:
            if not keys:
                raise WarehouseError(
                    f"nothing to ingest: no study manifests in "
                    f"{str(store.directory)!r}"
                )
            return keys
        matches = [k for k in keys if k == key or k.startswith(key)]
        if not matches:
            raise WarehouseError(
                f"no study manifest matches key {key!r} in "
                f"{str(store.directory)!r}"
            )
        if len(matches) > 1:
            raise WarehouseError(
                f"study key prefix {key!r} is ambiguous in "
                f"{str(store.directory)!r}: matches {len(matches)} studies"
            )
        return matches

    def _ingest_study(
        self, store, study_key, samples, parameter_names, lineage
    ) -> IngestReport:
        key16 = study_key[:16]
        manifest = store.load_manifests(study_key)[0]
        fingerprint = manifest.get("fingerprint", {})
        if samples is not None:
            declared = fingerprint.get("samples")
            actual = array_fingerprint(np.asarray(samples, dtype=float))
            if declared is not None and actual != declared:
                raise WarehouseError(
                    f"sample matrix does not match study {key16}...: "
                    f"manifest records samples {declared[:12]}..., got "
                    f"{actual[:12]}... (wrong study or altered samples)"
                )
        report = IngestReport(studies=[key16])
        with obs_trace.span(
            "warehouse.ingest", study=key16, backend=self.backend.name
        ) as span:
            self._write_study_record(key16, {
                "key16": key16,
                "study_key": study_key,
                "fingerprint": fingerprint,
                "layout": manifest.get("layout"),
                "workload": fingerprint.get("workload"),
                "parameter_names": (
                    None if parameter_names is None
                    else [str(name) for name in parameter_names]
                ),
                "store": str(store.directory),
            })
            for record, payload in store.iter_chunks(study_key):
                index = int(record["index"])
                if self._chunk_ingested(key16, index):
                    report.skipped += 1
                    _CHUNKS_SKIPPED.inc()
                    continue
                entry = (lineage or {}).get(index, {})
                tables = chunk_tables(
                    key16, record, payload,
                    samples=samples, parameter_names=parameter_names,
                    source=entry.get("source", "stored"),
                )
                self._write_chunk(key16, record, tables, report)
                report.chunks += 1
                _CHUNKS_INGESTED.inc()
            span.set(
                chunks=report.chunks, skipped=report.skipped,
                rows=report.rows_added,
            )
        return report

    def _write_chunk(self, key16, record, tables, report) -> None:
        directory = self.chunk_dir(
            key16, _shard_label(record), int(record["index"])
        )
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise WarehouseError(
                f"cannot create partition {str(directory)!r}: {exc}"
            ) from None
        sha16 = record["sha256"][:16]
        # The marker table goes down last: a kill between files leaves a
        # partition the next ingest re-converts (same content-addressed
        # names, so the rewrite is idempotent), never a half-counted one.
        names = sorted(tables, key=lambda name: name == _MARKER_TABLE)
        for name in names:
            columns = tables[name]
            path = directory / f"{name}-{sha16}{self.backend.extension}"
            size = self.backend.write(path, columns)
            rows = int(next(iter(columns.values())).shape[0])
            report.rows[name] = report.rows.get(name, 0) + rows
            report.files.append(str(path.relative_to(self.directory)))
            report.bytes_written += size
            _ROWS_INGESTED.inc(rows)
            _BYTES_WRITTEN.inc(size)

    def __repr__(self) -> str:
        datasets = len(list(self.directory.glob("key16=*")))
        return (
            f"Warehouse({str(self.directory)!r}, studies={datasets}, "
            f"backend={self.backend.name!r})"
        )
