"""Columnar result warehouse: partitioned datasets from StudyStores.

The warehouse tier turns durable chunk checkpoints into partitioned
columnar datasets (``key16=<study>/shard=<origin>/chunk=<index>/``)
that analytics can query out-of-core, without reloading whole studies
into RAM.  Ingest is idempotent and content-addressed (re-ingesting a
chunk is a structural no-op), every row carries provenance columns
(chunk SHA-256, worker, computed/resumed/stolen source), and
aggregations are exact -- bitwise equal to the same reduction of the
in-RAM study arrays.

Parquet output and the duckdb/polars query engines are optional
extras; without them the dependency-free native ``.npz`` backend and
the streamed numpy query engine keep every feature working.

Entry points: :class:`Warehouse` (ingest), :class:`QueryEngine`
(aggregation), ``repro query`` (CLI), and the
:meth:`Study.warehouse() <repro.runtime.engine.Study.warehouse>`
directive (ingest on run completion with live lineage attribution).
"""

from repro.warehouse.backend import (
    NativeBackend,
    ParquetBackend,
    WarehouseError,
    backend_for_file,
    have_duckdb,
    have_polars,
    have_pyarrow,
    resolve_backend,
)
from repro.warehouse.ingest import IngestReport, Warehouse
from repro.warehouse.query import QueryEngine
from repro.warehouse.schema import chunk_tables

__all__ = [
    "IngestReport",
    "NativeBackend",
    "ParquetBackend",
    "QueryEngine",
    "Warehouse",
    "WarehouseError",
    "backend_for_file",
    "chunk_tables",
    "have_duckdb",
    "have_polars",
    "have_pyarrow",
    "resolve_backend",
]
