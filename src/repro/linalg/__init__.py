"""Numerical kernels shared by the MOR algorithms.

This subpackage contains the low-level linear algebra the paper's
algorithms are built from:

- :mod:`repro.linalg.sparselu` -- a sparse LU "service" that factors a
  matrix once and answers both ``A x = b`` and ``A^T x = b`` solves,
  with a global factorization counter used by the cost benchmarks.
- :mod:`repro.linalg.orth` -- block orthonormalization with rank
  deflation (repeated modified Gram-Schmidt), the workhorse behind all
  Krylov subspace unions.
- :mod:`repro.linalg.operators` -- implicit (matrix-free) linear
  operators such as the generalized sensitivity matrices
  ``-G0^{-1} G_i`` that are dense but never formed explicitly.
- :mod:`repro.linalg.lanczos` -- Lanczos bidiagonalization with partial
  reorthogonalization for matrix-implicit truncated SVDs.
- :mod:`repro.linalg.subspace_svd` -- subspace (orthogonal) iteration
  as an alternative truncated-SVD driver and cross-check.
"""

from repro.linalg.lanczos import lanczos_bidiag_svd
from repro.linalg.operators import (
    ImplicitProduct,
    MatrixOperator,
    ScaledOperator,
    SumOperator,
    aslinearoperator_like,
)
from repro.linalg.orth import (
    block_krylov,
    deflated_qr,
    orthonormalize_against,
    stack_orthonormalize,
)
from repro.linalg.sparselu import (
    SparseLU,
    factorization_count,
    refactorization_count,
    reset_factorization_count,
    reset_refactorization_count,
)
from repro.linalg.subspace_svd import subspace_iteration_svd, truncated_svd

__all__ = [
    "ImplicitProduct",
    "MatrixOperator",
    "ScaledOperator",
    "SparseLU",
    "SumOperator",
    "aslinearoperator_like",
    "block_krylov",
    "deflated_qr",
    "factorization_count",
    "lanczos_bidiag_svd",
    "orthonormalize_against",
    "refactorization_count",
    "reset_factorization_count",
    "reset_refactorization_count",
    "stack_orthonormalize",
    "subspace_iteration_svd",
    "truncated_svd",
]
