"""Shared sparse LU factorization with transpose solves and pattern reuse.

The paper's complexity argument (Section 4.2) hinges on a single
observation: *one* LU factorization of the nominal conductance matrix
``G0 = Lg Ug`` is enough to serve every linear solve the algorithm
needs, including solves with the transpose ``G0^T = Ug^T Lg^T``.  The
Krylov subspaces with respect to ``A0 = -G0^{-1} C0`` and
``A0^T = -C0^T G0^{-T}``, as well as the matrix-implicit SVDs of the
generalized sensitivity matrices ``-G0^{-1} G_i``, all reuse the same
factors.

:class:`SparseLU` wraps :func:`scipy.sparse.linalg.splu` and exposes

- :meth:`SparseLU.solve` for ``A x = b``,
- :meth:`SparseLU.solve_transpose` for ``A^T x = b``,

both accepting vectors or blocks of right-hand sides.  A module-level
factorization counter lets the cost benchmarks report the *measured*
number of factorizations each reduction algorithm performed, which is
the paper's headline cost metric (1 for the low-rank method versus one
per sample point for the multi-point method).

Pattern reuse
-------------

The runtime serving layer factors thousands of matrices that all share
*one* sparsity pattern (every pencil ``G(p_k) + s C(p_k)`` of a
variational system lives on the union pattern of the nominal and
sensitivity matrices).  :meth:`SparseLU.refactor` exploits that: the
symbolic analysis -- the CSC structure and the fill-reducing column
ordering SuperLU selected for the first factorization -- is computed
once and reused for every subsequent *numeric* factorization, which
receives only a fresh data array.  Refactorizations are tallied by the
separate :func:`refactorization_count` counter so the paper's headline
metric (fresh symbolic factorizations) stays untouched.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics

Matrix = Union[np.ndarray, sp.spmatrix]

# The historical module-global tallies now live on the process-wide
# metrics registry (``repro.obs``); the functions below are live views
# over the same counter objects, so the measurement-window API
# (read / reset-returning-old) is unchanged.
_FACTORIZATIONS = obs_metrics.counter("linalg.sparselu.factorizations")
_REFACTORIZATIONS = obs_metrics.counter("linalg.sparselu.refactorizations")


def factorization_count() -> int:
    """Return the number of :class:`SparseLU` factorizations so far.

    The counter is global (the ``linalg.sparselu.factorizations``
    counter of the :mod:`repro.obs` metrics registry) and monotonically
    increasing; use :func:`reset_factorization_count` to start a
    measurement window.  Pattern-reusing :meth:`SparseLU.refactor`
    calls are counted separately by :func:`refactorization_count`.
    """
    return _FACTORIZATIONS.value


def reset_factorization_count() -> int:
    """Reset the global factorization counter and return the old value."""
    return _FACTORIZATIONS.reset()


def refactorization_count() -> int:
    """Number of pattern-reusing numeric refactorizations so far."""
    return _REFACTORIZATIONS.value


def reset_refactorization_count() -> int:
    """Reset the refactorization counter and return the old value."""
    return _REFACTORIZATIONS.reset()


class _PatternPlan:
    """Precomputed symbolic state shared by all refactorizations.

    Holds the CSC structure of the factored matrix, the fill-reducing
    column ordering SuperLU chose for the first factorization, and the
    gather arrays that apply that ordering to a bare data array without
    rebuilding any sparse-matrix objects.
    """

    def __init__(self, indices: np.ndarray, indptr: np.ndarray, shape, perm_c: np.ndarray):
        self.indices = indices
        self.indptr = indptr
        self.shape = shape
        # SuperLU's perm_c[i] = j places original column i at position j
        # of A @ Pc; the column gather below wants the inverse map
        # (position j <- original column perm_c^{-1}[j]).
        perm_c = np.asarray(perm_c, dtype=np.intp)
        self.perm_c = np.empty_like(perm_c)
        self.perm_c[perm_c] = np.arange(perm_c.size, dtype=np.intp)
        counts = np.diff(indptr)[self.perm_c]
        self.permuted_indptr = np.concatenate(([0], np.cumsum(counts)))
        total = int(self.permuted_indptr[-1])
        # data positions of permuted column j = indptr[perm_c[j]] + 0..counts[j]
        ends = np.cumsum(counts)
        starts_out = ends - counts
        self.gather = (
            np.arange(total)
            - np.repeat(starts_out, counts)
            + np.repeat(np.asarray(indptr)[self.perm_c], counts)
        )
        self.permuted_indices = np.asarray(indices)[self.gather]

    @property
    def nnz(self) -> int:
        """Stored-entry count of the shared pattern."""
        return int(self.indptr[-1])


class SparseLU:
    """LU factorization of a sparse square matrix with transpose solves.

    Parameters
    ----------
    matrix:
        Square matrix to factor.  Dense arrays and any scipy sparse
        format are accepted; the matrix is converted to CSC once.

    Raises
    ------
    ValueError
        If the matrix is not square.
    RuntimeError
        If the matrix is singular (propagated from SuperLU).
    """

    def __init__(self, matrix: Matrix):
        if sp.issparse(matrix):
            csc = matrix.tocsc()
            if csc is matrix:
                # tocsc() on a CSC input returns the caller's own object;
                # copy before sorting in place (and before aliasing the
                # structure arrays in the refactor plan below).
                csc = csc.copy()
        else:
            arr = np.asarray(matrix)
            if arr.ndim != 2:
                raise ValueError("matrix must be 2-dimensional")
            csc = sp.csc_matrix(arr)
        if csc.shape[0] != csc.shape[1]:
            raise ValueError(f"matrix must be square, got shape {csc.shape}")
        csc.sort_indices()
        self._shape = csc.shape
        self._lu = spla.splu(csc)
        # Symbolic state kept for refactor(): structure + chosen ordering.
        self._csc_indices = csc.indices
        self._csc_indptr = csc.indptr
        self._plan: Optional[_PatternPlan] = None
        # None = identity (this factor was built directly from the matrix).
        self._col_perm: Optional[np.ndarray] = None
        _FACTORIZATIONS.inc()

    @property
    def shape(self) -> tuple:
        """Shape of the factored matrix."""
        return self._shape

    @property
    def n(self) -> int:
        """Dimension of the factored matrix."""
        return self._shape[0]

    @property
    def nnz(self) -> int:
        """Stored-entry count of the factored matrix's pattern."""
        return int(self._csc_indptr[-1])

    # -- pattern reuse --------------------------------------------------

    def _pattern_plan(self) -> _PatternPlan:
        if self._plan is None:
            self._plan = _PatternPlan(
                self._csc_indices, self._csc_indptr, self._shape, self._lu.perm_c
            )
        return self._plan

    def refactor(self, data: np.ndarray) -> "SparseLU":
        """Numeric re-factorization of a same-pattern matrix.

        ``data`` is the CSC data array of a matrix sharing this
        factorization's sparsity structure exactly (same ``indices`` /
        ``indptr``, e.g. produced by
        :class:`repro.runtime.sparse.SparsePatternFamily`).  The
        symbolic analysis is reused: the fill-reducing column ordering
        SuperLU selected for *this* factorization is applied up front
        (a single gather on the data array) and SuperLU is invoked with
        ``permc_spec="NATURAL"``, so no ordering is recomputed.  Only
        the numeric factorization runs.

        Returns a new :class:`SparseLU` whose :meth:`solve` /
        :meth:`solve_transpose` answer in the *original* (unpermuted)
        ordering.  Complex data is supported -- the shifted pencils
        ``G + s C`` of a frequency sweep refactor a real template.
        """
        plan = self._pattern_plan()
        data = np.asarray(data)
        if data.ndim != 1 or data.size != plan.nnz:
            raise ValueError(
                f"data has shape {data.shape}, expected ({plan.nnz},) matching "
                "the factored pattern"
            )
        permuted = sp.csc_matrix(
            (data[plan.gather], plan.permuted_indices, plan.permuted_indptr),
            shape=plan.shape,
        )
        refactored = object.__new__(SparseLU)
        refactored._shape = plan.shape
        refactored._lu = spla.splu(permuted, permc_spec="NATURAL")
        refactored._csc_indices = self._csc_indices
        refactored._csc_indptr = self._csc_indptr
        refactored._plan = plan
        refactored._col_perm = plan.perm_c
        _REFACTORIZATIONS.inc()
        return refactored

    # -- solves ---------------------------------------------------------

    def _solve(self, rhs: np.ndarray, trans: str) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.n:
            raise ValueError(
                f"right-hand side has leading dimension {rhs.shape[0]}, expected {self.n}"
            )
        if rhs.ndim == 1:
            return self._permuted_solve(rhs, trans)
        if rhs.ndim != 2:
            raise ValueError("right-hand side must be a vector or a 2-D block")
        # SuperLU solves blocks column by column internally; one call is fine.
        out = np.empty_like(rhs, dtype=np.result_type(rhs.dtype, np.float64))
        for j in range(rhs.shape[1]):
            out[:, j] = self._permuted_solve(np.ascontiguousarray(rhs[:, j]), trans)
        return out

    def _permuted_solve(self, rhs: np.ndarray, trans: str) -> np.ndarray:
        """One vector solve, mapping through the reused column ordering.

        With the stored factorization of ``Ap = A[:, perm]``:
        ``A x = b``   becomes ``Ap y = b`` with ``x[perm] = y``;
        ``A^T x = b`` becomes ``Ap^T x = b[perm]`` directly.
        """
        perm = self._col_perm
        if perm is None:
            return self._lu.solve(rhs, trans=trans)
        if trans == "T":
            return self._lu.solve(np.ascontiguousarray(rhs[perm]), trans="T")
        y = self._lu.solve(rhs, trans="N")
        x = np.empty_like(y)
        x[perm] = y
        return x

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a vector or block right-hand side."""
        return self._solve(rhs, trans="N")

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = rhs`` reusing the same factors.

        With ``A = Lg Ug`` the transpose system is ``Ug^T Lg^T x = rhs``;
        SuperLU exposes this directly, so no second factorization is
        needed (paper, Section 4.2).
        """
        return self._solve(rhs, trans="T")
