"""Shared sparse LU factorization with transpose solves.

The paper's complexity argument (Section 4.2) hinges on a single
observation: *one* LU factorization of the nominal conductance matrix
``G0 = Lg Ug`` is enough to serve every linear solve the algorithm
needs, including solves with the transpose ``G0^T = Ug^T Lg^T``.  The
Krylov subspaces with respect to ``A0 = -G0^{-1} C0`` and
``A0^T = -C0^T G0^{-T}``, as well as the matrix-implicit SVDs of the
generalized sensitivity matrices ``-G0^{-1} G_i``, all reuse the same
factors.

:class:`SparseLU` wraps :func:`scipy.sparse.linalg.splu` and exposes

- :meth:`SparseLU.solve` for ``A x = b``,
- :meth:`SparseLU.solve_transpose` for ``A^T x = b``,

both accepting vectors or blocks of right-hand sides.  A module-level
factorization counter lets the cost benchmarks report the *measured*
number of factorizations each reduction algorithm performed, which is
the paper's headline cost metric (1 for the low-rank method versus one
per sample point for the multi-point method).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

Matrix = Union[np.ndarray, sp.spmatrix]

_FACTORIZATION_COUNT = 0


def factorization_count() -> int:
    """Return the number of :class:`SparseLU` factorizations so far.

    The counter is global (module level) and monotonically increasing;
    use :func:`reset_factorization_count` to start a measurement window.
    """
    return _FACTORIZATION_COUNT


def reset_factorization_count() -> int:
    """Reset the global factorization counter and return the old value."""
    global _FACTORIZATION_COUNT
    old = _FACTORIZATION_COUNT
    _FACTORIZATION_COUNT = 0
    return old


class SparseLU:
    """LU factorization of a sparse square matrix with transpose solves.

    Parameters
    ----------
    matrix:
        Square matrix to factor.  Dense arrays and any scipy sparse
        format are accepted; the matrix is converted to CSC once.

    Raises
    ------
    ValueError
        If the matrix is not square.
    RuntimeError
        If the matrix is singular (propagated from SuperLU).
    """

    def __init__(self, matrix: Matrix):
        global _FACTORIZATION_COUNT
        if sp.issparse(matrix):
            csc = matrix.tocsc()
        else:
            arr = np.asarray(matrix)
            if arr.ndim != 2:
                raise ValueError("matrix must be 2-dimensional")
            csc = sp.csc_matrix(arr)
        if csc.shape[0] != csc.shape[1]:
            raise ValueError(f"matrix must be square, got shape {csc.shape}")
        self._shape = csc.shape
        self._lu = spla.splu(csc)
        _FACTORIZATION_COUNT += 1

    @property
    def shape(self) -> tuple:
        """Shape of the factored matrix."""
        return self._shape

    @property
    def n(self) -> int:
        """Dimension of the factored matrix."""
        return self._shape[0]

    def _solve(self, rhs: np.ndarray, trans: str) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.shape[0] != self.n:
            raise ValueError(
                f"right-hand side has leading dimension {rhs.shape[0]}, expected {self.n}"
            )
        if rhs.ndim == 1:
            return self._lu.solve(rhs, trans=trans)
        if rhs.ndim != 2:
            raise ValueError("right-hand side must be a vector or a 2-D block")
        # SuperLU solves blocks column by column internally; one call is fine.
        out = np.empty_like(rhs, dtype=np.result_type(rhs.dtype, np.float64))
        for j in range(rhs.shape[1]):
            out[:, j] = self._lu.solve(np.ascontiguousarray(rhs[:, j]), trans=trans)
        return out

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a vector or block right-hand side."""
        return self._solve(rhs, trans="N")

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = rhs`` reusing the same factors.

        With ``A = Lg Ug`` the transpose system is ``Ug^T Lg^T x = rhs``;
        SuperLU exposes this directly, so no second factorization is
        needed (paper, Section 4.2).
        """
        return self._solve(rhs, trans="T")
