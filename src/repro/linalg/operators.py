"""Matrix-free linear operators for the MOR algorithms.

The generalized sensitivity matrices of the paper, ``-G0^{-1} G_i`` and
``-G0^{-1} C_i``, are dense ``n x n`` matrices even though ``G0`` and
``G_i`` are sparse.  Forming them would cost ``O(n^2)`` memory and
``O(n^2)`` solve work -- exactly what the paper avoids.  Instead, all
consumers (the Lanczos SVD, subspace iteration, Krylov recursions) only
ever need matrix-vector products

- ``y = -G0^{-1} (G_i x)``  (one sparse multiply + one LU solve), and
- ``y = -G_i^T (G0^{-T} x)``  (one transpose LU solve + one multiply),

both of which reuse the single LU factorization of ``G0``
(:class:`repro.linalg.sparselu.SparseLU`).  This module provides small
operator classes exposing ``matmat`` / ``rmatmat`` with that contract.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.linalg.sparselu import SparseLU


class LinearBlockOperator:
    """Abstract base: a linear map with block forward/adjoint products."""

    shape: tuple

    def matmat(self, block: np.ndarray) -> np.ndarray:
        """Compute ``A @ block``."""
        raise NotImplementedError

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ block``."""
        raise NotImplementedError

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Compute ``A @ vector``."""
        return self.matmat(np.asarray(vector)[:, None])[:, 0]

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ vector``."""
        return self.rmatmat(np.asarray(vector)[:, None])[:, 0]

    def to_dense(self) -> np.ndarray:
        """Materialize the operator (testing / small problems only)."""
        return self.matmat(np.eye(self.shape[1]))


class MatrixOperator(LinearBlockOperator):
    """Wrap an explicit (sparse or dense) matrix as a block operator."""

    def __init__(self, matrix):
        self._matrix = matrix
        self.shape = matrix.shape

    def matmat(self, block: np.ndarray) -> np.ndarray:
        return np.asarray(self._matrix @ block)

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        return np.asarray(self._matrix.T @ block)


class ScaledOperator(LinearBlockOperator):
    """``alpha * A`` for a block operator ``A``."""

    def __init__(self, operator: LinearBlockOperator, alpha: float):
        self._operator = operator
        self._alpha = float(alpha)
        self.shape = operator.shape

    def matmat(self, block: np.ndarray) -> np.ndarray:
        return self._alpha * self._operator.matmat(block)

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        return self._alpha * self._operator.rmatmat(block)


class SumOperator(LinearBlockOperator):
    """Sum of several block operators of identical shape."""

    def __init__(self, operators: Sequence[LinearBlockOperator]):
        if not operators:
            raise ValueError("need at least one operator")
        shapes = {op.shape for op in operators}
        if len(shapes) != 1:
            raise ValueError(f"operators have mismatched shapes: {shapes}")
        self._operators = list(operators)
        self.shape = self._operators[0].shape

    def matmat(self, block: np.ndarray) -> np.ndarray:
        result = self._operators[0].matmat(block)
        for op in self._operators[1:]:
            result = result + op.matmat(block)
        return result

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        result = self._operators[0].rmatmat(block)
        for op in self._operators[1:]:
            result = result + op.rmatmat(block)
        return result


class ImplicitProduct(LinearBlockOperator):
    """The implicit product ``sign * G0^{-1} M`` for a sparse ``M``.

    This is the generalized sensitivity matrix of the paper when
    ``M = G_i`` (or ``C_i``) and ``sign = -1``; with ``M = C0`` and
    ``sign = -1`` it is the PRIMA iteration matrix ``A0 = -G0^{-1} C0``.

    Forward product: ``y = sign * lu.solve(M @ x)``.
    Adjoint product: ``y = sign * M.T @ lu.solve_transpose(x)`` --
    note the adjoint *also* reuses the same LU factors via the
    transpose solve (paper, Section 4.2: if ``G0 = Lg Ug`` then
    ``G0^T = Ug^T Lg^T``).
    """

    def __init__(self, lu: SparseLU, matrix, sign: float = -1.0):
        if matrix.shape != lu.shape:
            raise ValueError(
                f"matrix shape {matrix.shape} does not match factorization {lu.shape}"
            )
        self._lu = lu
        self._matrix = sp.csr_matrix(matrix) if not sp.issparse(matrix) else matrix.tocsr()
        self._matrix_t = self._matrix.T.tocsr()
        self._sign = float(sign)
        self.shape = lu.shape

    def matmat(self, block: np.ndarray) -> np.ndarray:
        return self._sign * self._lu.solve(np.asarray(self._matrix @ block))

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        return self._sign * np.asarray(self._matrix_t @ self._lu.solve_transpose(block))


class CallableOperator(LinearBlockOperator):
    """Build an operator from explicit forward/adjoint callables."""

    def __init__(
        self,
        shape: tuple,
        matmat: Callable[[np.ndarray], np.ndarray],
        rmatmat: Callable[[np.ndarray], np.ndarray],
    ):
        self.shape = shape
        self._matmat = matmat
        self._rmatmat = rmatmat

    def matmat(self, block: np.ndarray) -> np.ndarray:
        return self._matmat(block)

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        return self._rmatmat(block)


def aslinearoperator_like(obj) -> LinearBlockOperator:
    """Coerce matrices or operators to :class:`LinearBlockOperator`."""
    if isinstance(obj, LinearBlockOperator):
        return obj
    if sp.issparse(obj) or isinstance(obj, np.ndarray):
        return MatrixOperator(obj)
    raise TypeError(f"cannot interpret {type(obj)!r} as a linear operator")
