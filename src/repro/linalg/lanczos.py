"""Lanczos bidiagonalization with reorthogonalization for implicit SVDs.

Step 1 of the paper's Algorithm 1 needs the ``k_svd`` dominant singular
triplets of each generalized sensitivity matrix ``-G0^{-1} G_i``.
These matrices are dense but *matrix-implicit*: only their products
with vectors are available cheaply (one sparse multiply plus one reuse
of the ``G0`` LU factors).  The paper cites large-scale SVD techniques
[14] and Lanczos bidiagonalization with partial reorthogonalization
[15] for exactly this purpose.

This module implements Golub-Kahan-Lanczos bidiagonalization driven by
an abstract :class:`repro.linalg.operators.LinearBlockOperator`.  We use
full reorthogonalization of both Lanczos bases (the problem sizes in
the paper make the extra ``O(n j)`` work per step irrelevant, and it is
unconditionally robust, which matters more here than the constant
factor that *partial* reorthogonalization would save).

The projected matrix is kept in its exact rectangular form: after ``j``
left and ``j+1`` right vectors the Golub-Kahan relations

``A V_{j+1} = U_j B_j``  (``B_j`` upper bidiagonal, ``j x (j+1)``)

hold exactly, including the trailing ``beta_j`` column.  Dropping that
column (a common implementation shortcut) loses the information needed
when the iteration terminates early on a low-rank operator -- which is
the *typical* case here, since generalized sensitivity matrices are
numerically low rank (that observation is the paper's whole point).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.linalg.operators import LinearBlockOperator, aslinearoperator_like


def _reorthogonalize(vector: np.ndarray, basis: list) -> np.ndarray:
    for _ in range(2):
        for u in basis:
            vector = vector - u * (u @ vector)
    return vector


def _projected_bidiagonal(alphas, betas) -> np.ndarray:
    """The exact projected matrix: ``B[i,i] = alpha_i``, ``B[i,i+1] = beta_i``.

    Shape ``(len(alphas), len(alphas)+1)`` when a trailing beta exists
    (``len(betas) == len(alphas)``), square otherwise.
    """
    n_left = len(alphas)
    n_right = n_left + 1 if len(betas) == n_left else n_left
    bid = np.zeros((n_left, n_right))
    for i, a in enumerate(alphas):
        bid[i, i] = a
    for i, b in enumerate(betas):
        bid[i, i + 1] = b
    return bid


def lanczos_bidiag_svd(
    operator,
    rank: int,
    max_iter: Optional[int] = None,
    tol: float = 1e-10,
    seed: int = 0,
    start_vector: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dominant singular triplets via Golub-Kahan-Lanczos bidiagonalization.

    Parameters
    ----------
    operator:
        A square matrix, sparse matrix or
        :class:`~repro.linalg.operators.LinearBlockOperator` whose
        products ``A v`` and ``A^T u`` are available.
    rank:
        Number of dominant singular triplets requested.
    max_iter:
        Maximum Lanczos steps (default: ``min(n, max(6*rank + 20, 30))``).
    tol:
        Relative stagnation tolerance on the wanted singular values.
    seed:
        Seed for the random start vector (deterministic by default).
    start_vector:
        Optional explicit start vector (overrides ``seed``).

    Returns
    -------
    (U, sigma, V):
        ``U`` is ``n x r`` with orthonormal left singular vectors,
        ``sigma`` the singular values in descending order, ``V`` the
        right singular vectors, such that ``A ~= U diag(sigma) V^T`` in
        the dominant subspace.  ``r`` may be smaller than ``rank`` if
        the operator's numerical rank is smaller.
    """
    op: LinearBlockOperator = aslinearoperator_like(operator)
    n_rows, n_cols = op.shape
    if rank < 1:
        raise ValueError("rank must be >= 1")
    rank = min(rank, n_rows, n_cols)
    if max_iter is None:
        max_iter = min(min(n_rows, n_cols), max(6 * rank + 20, 30))
    max_iter = max(max_iter, rank)

    rng = np.random.default_rng(seed)
    if start_vector is None:
        v = rng.standard_normal(n_cols)
    else:
        v = np.asarray(start_vector, dtype=float).copy()
        if v.shape != (n_cols,):
            raise ValueError(f"start vector must have shape ({n_cols},)")
    v_norm = np.linalg.norm(v)
    if v_norm == 0:
        raise ValueError("start vector must be nonzero")
    v /= v_norm

    lefts: list = []
    rights: list = [v]
    alphas: list = []
    betas: list = []
    previous_wanted: Optional[np.ndarray] = None
    scale = 0.0

    for _ in range(max_iter):
        u = op.matvec(rights[-1])
        if lefts:
            u = u - betas[-1] * lefts[-1]
        u = _reorthogonalize(u, lefts)
        alpha = np.linalg.norm(u)
        scale = max(scale, alpha)
        if alpha <= tol * max(scale, 1e-300):
            break
        u /= alpha
        lefts.append(u)
        alphas.append(alpha)

        v = op.rmatvec(u) - alpha * rights[-1]
        v = _reorthogonalize(v, rights)
        beta = np.linalg.norm(v)
        scale = max(scale, beta)
        if beta <= tol * max(scale, 1e-300):
            break
        v /= beta
        rights.append(v)
        betas.append(beta)

        # Stagnation check: wanted singular values stopped moving.
        if len(alphas) >= rank + 1:
            wanted = np.linalg.svd(
                _projected_bidiagonal(alphas, betas), compute_uv=False
            )[:rank]
            if previous_wanted is not None and wanted.shape == previous_wanted.shape:
                change = np.abs(wanted - previous_wanted) / np.maximum(wanted, 1e-300)
                if np.all(change <= tol):
                    break
            previous_wanted = wanted

    if not alphas:
        return np.empty((n_rows, 0)), np.empty(0), np.empty((n_cols, 0))

    bid = _projected_bidiagonal(alphas, betas)
    ub, sb, vbt = np.linalg.svd(bid, full_matrices=False)
    keep = min(rank, len(sb))
    # Discard numerically-zero singular values (rank-deficient operator).
    floor = max(sb[0], 1e-300) * 1e-13
    keep = min(keep, int(np.sum(sb > floor)))
    left_basis = np.column_stack(lefts)
    right_basis = np.column_stack(rights[: bid.shape[1]])
    u_full = left_basis @ ub[:, :keep]
    v_full = right_basis @ vbt[:keep, :].T
    return u_full, sb[:keep], v_full
