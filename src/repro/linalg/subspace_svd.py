"""Truncated SVD via subspace (orthogonal) iteration.

The paper (Section 4.2) notes that "a low-rank approximation of
``-G0^{-1} G_i`` can be efficiently done using a few subspace
iterations wherein the dense generalized sensitivity matrix is not
explicitly required but only its matrix-vector products".  This module
implements exactly that driver:

1. start from a random block ``Q`` with a few oversampling columns,
2. alternate ``Q <- orth(A A^T Q)`` a handful of times (power/subspace
   iteration on the symmetrized operator),
3. project and take a small dense SVD to extract the triplets.

It serves both as the default low-rank engine for small ranks (the
paper observes rank-1 is usually sufficient) and as an independent
cross-check of :func:`repro.linalg.lanczos.lanczos_bidiag_svd`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.operators import LinearBlockOperator, aslinearoperator_like
from repro.linalg.orth import deflated_qr


def subspace_iteration_svd(
    operator,
    rank: int,
    iterations: int = 8,
    oversample: int = 4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dominant singular triplets of an implicit operator.

    Parameters
    ----------
    operator:
        Matrix, sparse matrix or block operator with forward/adjoint
        products.
    rank:
        Number of singular triplets to return.
    iterations:
        Number of ``A A^T`` applications.  A handful suffices because
        convergence is geometric in ``(sigma_{r+1}/sigma_r)^{2q}``.
    oversample:
        Extra subspace columns carried during iteration for robustness.
    seed:
        Seed of the random start block (deterministic by default).

    Returns
    -------
    (U, sigma, V):
        As in :func:`repro.linalg.lanczos.lanczos_bidiag_svd`.
    """
    op: LinearBlockOperator = aslinearoperator_like(operator)
    n_rows, n_cols = op.shape
    if rank < 1:
        raise ValueError("rank must be >= 1")
    rank = min(rank, n_rows, n_cols)
    block_size = min(rank + max(oversample, 0), n_rows, n_cols)

    rng = np.random.default_rng(seed)
    q = deflated_qr(rng.standard_normal((n_cols, block_size)))
    for _ in range(max(iterations, 1)):
        y = op.matmat(q)
        q_left = deflated_qr(y)
        z = op.rmatmat(q_left)
        q = deflated_qr(z)
        if q.shape[1] == 0:
            # Operator is (numerically) zero on the remaining subspace.
            return np.empty((n_rows, 0)), np.empty(0), np.empty((n_cols, 0))

    # Rayleigh-Ritz extraction: factor the small projected matrix A @ Q.
    y = op.matmat(q)
    u_small, sigma, w_t = np.linalg.svd(y, full_matrices=False)
    # Relative rank cutoff: operator scales span ~15 decades here, so
    # the floor must be proportional to the leading singular value.
    keep = min(rank, int(np.sum(sigma > sigma[0] * 1e-13))) if sigma.size else 0
    u = u_small[:, :keep]
    v = q @ w_t[:keep, :].T
    return u, sigma[:keep], v


def truncated_svd(operator, rank: int, method: str = "lanczos", **kwargs):
    """Dispatch to a truncated-SVD driver by name.

    ``method`` is ``"lanczos"`` (default), ``"subspace"``, or
    ``"dense"`` (materializes the operator; testing only).
    """
    if method == "lanczos":
        from repro.linalg.lanczos import lanczos_bidiag_svd

        return lanczos_bidiag_svd(operator, rank, **kwargs)
    if method == "subspace":
        return subspace_iteration_svd(operator, rank, **kwargs)
    if method == "dense":
        op = aslinearoperator_like(operator)
        dense = op.to_dense()
        u, sigma, v_t = np.linalg.svd(dense, full_matrices=False)
        keep = min(rank, int(np.sum(sigma > sigma[0] * 1e-13))) if sigma.size else 0
        return u[:, :keep], sigma[:keep], v_t[:keep, :].T
    raise ValueError(f"unknown SVD method {method!r}")
