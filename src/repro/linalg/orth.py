"""Block orthonormalization with rank deflation.

Every algorithm in this package eventually reduces to "take a pile of
(block) vectors, produce an orthonormal basis of their span, and drop
directions that are numerically dependent".  PRIMA needs it for its
block Arnoldi recursion, the multi-point method needs it to union the
per-sample projection matrices, and Algorithm 1 of the paper needs it
to combine the frequency Krylov subspace with the per-parameter
subspaces (its step 3).

We use repeated modified Gram-Schmidt (MGS twice -- the classical
"twice is enough" remedy for loss of orthogonality) with a relative
deflation tolerance.  This is intentionally simple and deterministic;
for the problem sizes in the paper (hundreds to a few thousand
unknowns, subspace dimensions of tens to a couple hundred) it is both
robust and fast.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

DEFAULT_DEFLATION_TOL = 1e-10


def _as_block(vectors: np.ndarray) -> np.ndarray:
    block = np.asarray(vectors, dtype=float)
    if block.ndim == 1:
        block = block[:, None]
    if block.ndim != 2:
        raise ValueError("expected a vector or a 2-D block of column vectors")
    return block


def orthonormalize_against(
    basis: Optional[np.ndarray],
    block: np.ndarray,
    tol: float = DEFAULT_DEFLATION_TOL,
) -> np.ndarray:
    """Orthonormalize ``block`` against ``basis`` and internally.

    Parameters
    ----------
    basis:
        Existing orthonormal columns (or ``None`` for an empty basis).
        The basis itself is not modified.
    block:
        Candidate columns to orthonormalize.
    tol:
        Relative deflation tolerance: a candidate whose norm after
        projection falls below ``tol`` times its original norm (or below
        an absolute floor for zero vectors) is discarded.

    Returns
    -------
    numpy.ndarray
        The new orthonormal columns (possibly fewer than supplied, and
        possibly an ``(n, 0)`` array if everything deflated).
    """
    block = _as_block(block).copy()
    n = block.shape[0]
    if basis is not None and basis.size and basis.shape[0] != n:
        raise ValueError("basis and block have incompatible leading dimensions")
    accepted: list = []
    for j in range(block.shape[1]):
        v = block[:, j]
        original_norm = np.linalg.norm(v)
        if original_norm == 0.0:
            continue
        # Two passes of modified Gram-Schmidt against both the prior
        # basis and the columns accepted so far.
        for _ in range(2):
            if basis is not None and basis.size:
                v = v - basis @ (basis.T @ v)
            for u in accepted:
                v = v - u * (u @ v)
        norm = np.linalg.norm(v)
        # Purely *relative* deflation: physical scales differ by many
        # orders of magnitude (RC time constants ~1e-13 s), so an
        # absolute floor would discard legitimate directions.
        if norm <= tol * original_norm:
            continue
        accepted.append(v / norm)
    if not accepted:
        return np.empty((n, 0))
    return np.column_stack(accepted)


def deflated_qr(block: np.ndarray, tol: float = DEFAULT_DEFLATION_TOL) -> np.ndarray:
    """Orthonormal basis of the column span of ``block`` with deflation."""
    return orthonormalize_against(None, block, tol=tol)


def stack_orthonormalize(
    blocks: Sequence[np.ndarray],
    tol: float = DEFAULT_DEFLATION_TOL,
) -> np.ndarray:
    """Orthonormal basis of the union of several column spans.

    This is the subspace-union primitive used by the multi-point method
    (``colspan{V_1, ..., V_ns}``) and by step 3 of Algorithm 1
    (``colspan{V_0, V_{G_i,1}, V_{G_i,2}, V_{C_i,1}, V_{C_i,2}, ...}``).
    Earlier blocks take precedence: later directions that are already
    (numerically) contained in the accumulated span deflate away.
    """
    basis: Optional[np.ndarray] = None
    for block in blocks:
        block = _as_block(block)
        if block.shape[1] == 0:
            continue
        fresh = orthonormalize_against(basis, block, tol=tol)
        if fresh.shape[1] == 0:
            continue
        basis = fresh if basis is None else np.hstack([basis, fresh])
    if basis is None:
        raise ValueError("all candidate blocks deflated to nothing")
    return basis


def block_krylov(
    apply_operator: Callable[[np.ndarray], np.ndarray],
    start_block: np.ndarray,
    num_blocks: int,
    tol: float = DEFAULT_DEFLATION_TOL,
    basis: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Orthonormal basis of the block Krylov subspace.

    Computes ``colspan{R, A R, A^2 R, ..., A^{num_blocks-1} R}`` where
    ``A`` is given implicitly by ``apply_operator`` and ``R`` is
    ``start_block``.  This is the standard block Arnoldi construction
    used by PRIMA and, in Algorithm 1, by every per-parameter subspace
    (``Kr(A0, U_hat, t+1)`` and ``Kr(A0^T, V_tilde, q)``).

    The recursion applies the operator to the *orthonormalized* previous
    block (Arnoldi style) rather than to raw powers, which is the
    numerically stable formulation.  When a block deflates entirely the
    recursion terminates early -- the subspace became invariant.

    Parameters
    ----------
    apply_operator:
        Function computing ``A @ X`` for a block ``X``.
    start_block:
        Starting block ``R`` (n-by-m).
    num_blocks:
        Number of block moments spanned, i.e. powers ``A^0 .. A^{num_blocks-1}``.
    tol:
        Deflation tolerance.
    basis:
        Optional existing orthonormal basis to extend against (the
        returned array contains only the *new* columns).
    """
    if num_blocks <= 0:
        n = _as_block(start_block).shape[0]
        return np.empty((n, 0))
    accumulated = [] if basis is None else [basis]
    own: list = []

    def current_basis() -> Optional[np.ndarray]:
        parts = [p for p in accumulated + own if p is not None and p.size]
        if not parts:
            return None
        return np.hstack(parts)

    block = orthonormalize_against(current_basis(), _as_block(start_block), tol=tol)
    if block.shape[1]:
        own.append(block)
    for _ in range(1, num_blocks):
        if block.shape[1] == 0:
            break
        block = orthonormalize_against(current_basis(), apply_operator(block), tol=tol)
        if block.shape[1]:
            own.append(block)
    if not own:
        n = _as_block(start_block).shape[0]
        return np.empty((n, 0))
    return np.hstack(own)
