"""Uniform progress line driven by ``study.chunk`` span events.

One reporter serves ``batch``, ``transient``, and ``montecarlo`` alike:
it is a trace *sink*, so the chunk loop needs no bespoke callback --
the same span that feeds JSONL traces feeds the terminal line::

    chunks 3/8 · 24/64 instances · 412.0 instances/s

Spans close when a chunk finishes, so the line advances once per chunk
and ends with a newline when the final chunk of a run lands.  A run
boundary (chunk counter going backwards, as when a Monte Carlo study
runs its full-model and reduced-model sweeps back to back) resets the
rate clock.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Trace sink rendering chunk completions as one updating line."""

    def __init__(self, stream=None, label=None):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started = None
        self._instances = 0
        self._last_done = None

    def emit(self, record):
        """Consume one trace record; react only to ``study.chunk`` spans."""
        if record.get("type") != "span" or record.get("name") != "study.chunk":
            return
        attrs = record.get("attrs", {})
        done = attrs.get("done")
        total = attrs.get("total")
        chunks_done = attrs.get("chunks_done")
        num_chunks = attrs.get("num_chunks")
        if done is None or chunks_done is None:
            return
        now = time.perf_counter()
        if self._started is None or (
            self._last_done is not None and done < self._last_done
        ):
            self._started = now
            self._instances = 0
        self._last_done = done
        self._instances += attrs.get("instances", 0)
        elapsed = now - self._started
        rate = self._instances / elapsed if elapsed > 1e-9 else 0.0
        prefix = f"[{self.label}] " if self.label else ""
        line = (
            f"\r{prefix}chunks {chunks_done}/{num_chunks}"
            f" · {done}/{total} instances"
            f" · {rate:.1f} instances/s"
        )
        self.stream.write(line)
        if num_chunks is not None and chunks_done == num_chunks:
            self.stream.write("\n")
            self._last_done = None
            self._started = None
        self.stream.flush()
