"""Span tracer with a no-op disabled path and cross-process capture.

A *span* is a named, timed region of work with arbitrary attributes and
a parent link, emitted as a plain dict when it closes::

    from repro.obs import trace as obs_trace

    with obs_trace.span("study.chunk", index=3, lo=24, hi=32) as sp:
        ...
        sp.set(loaded=False)

Design constraints, in priority order:

1. **Disabled is free.**  With no sinks installed :func:`span` returns
   one shared no-op object without touching contextvars, clocks, or
   allocations beyond the ``**attrs`` dict at the call site.  The hot
   loops that call it run per *chunk*, not per sample, so the guarded
   call is far below measurement noise (enforced by
   ``benchmarks/bench_obs_overhead.py``).
2. **Workers capture, callers re-parent.**  Spans raised inside
   thread/process/shared-memory workers cannot reach the caller's sinks
   (other process) or its context (fresh thread).  :func:`wrap_task`
   wraps a per-item task so every span it raises is captured into a
   list and shipped back with the result; :func:`unwrap_results`
   replays those records into the caller's sinks, re-parenting each
   worker-side root span onto the caller's active span.  Span ids are
   unique across processes (pid-keyed prefix plus a random token), so
   merged traces never collide.
3. **Ambient context, explicit records.**  The active span lives in a
   :mod:`contextvars` variable; nesting works across ``with`` blocks
   and :func:`annotate` can decorate the innermost span from helper
   code (e.g. the store layer stamping a chunk's SHA-256) without
   threading span objects through every signature.
"""

from __future__ import annotations

import contextvars
import json
import os
import secrets
import time

__all__ = [
    "MemorySink",
    "add_sink",
    "annotate",
    "current_span",
    "emit_record",
    "enabled",
    "event",
    "remove_sink",
    "span",
    "unwrap_results",
    "wrap_task",
]

# Innermost active Span (or None); per-context, so nested spans parent
# correctly and concurrent contexts do not interfere.
_ACTIVE = contextvars.ContextVar("repro_obs_active_span", default=None)
# Worker-side capture list (or None); set by _TracedTask around the task
# body so spans raised in a pool worker are recorded, not emitted.
_CAPTURE = contextvars.ContextVar("repro_obs_capture", default=None)

_SINKS = []

# Span-id state is keyed by pid so fork-started workers regenerate their
# prefix instead of colliding with the parent's id sequence.
_ID_STATE = {"pid": None, "prefix": "", "count": 0}


def _next_id():
    state = _ID_STATE
    pid = os.getpid()
    if state["pid"] != pid:
        state["pid"] = pid
        state["prefix"] = f"{pid:x}.{secrets.token_hex(3)}"
        state["count"] = 0
    state["count"] += 1
    return f"{state['prefix']}.{state['count']:x}"


def enabled():
    """Whether spans are being recorded in this context."""
    return bool(_SINKS) or _CAPTURE.get() is not None


def add_sink(sink):
    """Install a sink and return it.

    A sink is any object with an ``emit(record)`` method (e.g.
    :class:`~repro.obs.export.JsonlSink`, :class:`MemorySink`) or a
    bare callable taking the record dict.  Installing at least one sink
    switches :func:`span` from the no-op path to real spans.
    """
    _SINKS.append(sink)
    return sink


def remove_sink(sink):
    """Uninstall a sink previously passed to :func:`add_sink`."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def _emit(record):
    captured = _CAPTURE.get()
    if captured is not None:
        captured.append(record)
        return
    for sink in _SINKS:
        emit = getattr(sink, "emit", None)
        if emit is not None:
            emit(record)
        else:
            sink(record)


def emit_record(record):
    """Emit a raw record dict (e.g. a metrics delta) to the sinks.

    Follows the same routing as closing spans: a worker-side capture
    context collects the record for later replay, otherwise every
    installed sink receives it.
    """
    _emit(record)


class Span:
    """One named, timed region; emits its record dict on ``__exit__``."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id",
        "_token", "_t_start", "_wall0", "_cpu0",
    )

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs
        self.span_id = _next_id()
        self.parent_id = None
        self._token = None

    def set(self, **attrs):
        """Attach or overwrite attributes on this span."""
        self.attrs.update(attrs)

    def __enter__(self):
        parent = _ACTIVE.get()
        self.parent_id = parent.span_id if parent is not None else None
        self._token = _ACTIVE.set(self)
        self._t_start = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        _ACTIVE.reset(self._token)
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "t_start": self._t_start,
            "wall_seconds": wall,
            "cpu_seconds": cpu,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        _emit(record)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP_SPAN = _NoopSpan()


def span(name, **attrs):
    """Open a span named ``name``; use as a context manager.

    Returns the shared no-op span unless a sink is installed (or this
    context is under worker capture), so instrumented hot paths cost
    one truthiness check when observability is off.
    """
    if not _SINKS and _CAPTURE.get() is None:
        return _NOOP_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost active :class:`Span` in this context, or ``None``."""
    return _ACTIVE.get()


def event(name, **attrs):
    """Emit a point-in-time record (a zero-duration span).

    For moments rather than regions -- a lease claimed, stolen, or
    expired -- where opening a context manager would be noise.  The
    record shares the span schema (``wall_seconds`` = 0.0, parented to
    the active span) so :func:`~repro.obs.export.read_trace` and
    lineage joins handle it without a second code path.  Free when
    tracing is off.
    """
    if not enabled():
        return
    active = _ACTIVE.get()
    _emit({
        "type": "span",
        "name": name,
        "span_id": _next_id(),
        "parent_id": active.span_id if active is not None else None,
        "pid": os.getpid(),
        "t_start": time.time(),
        "wall_seconds": 0.0,
        "cpu_seconds": 0.0,
        "attrs": attrs,
    })


def annotate(**attrs):
    """Set attributes on the innermost active span, if any.

    Lets lower layers (store I/O, solvers) stamp facts like a chunk's
    SHA-256 onto the span their caller opened, without plumbing span
    objects through call signatures.  A no-op when tracing is off.
    """
    active = _ACTIVE.get()
    if active is not None:
        active.set(**attrs)


class _TaskPayload:
    """Result of a traced task plus the spans it raised (picklable)."""

    __slots__ = ("result", "spans")

    def __init__(self, result, spans):
        self.result = result
        self.spans = spans


class _TracedTask:
    """Picklable per-item wrapper: capture worker spans with the result.

    The capture context is activated *inside* the worker call, so it
    works identically for in-process threads (which must not inherit
    the caller's context) and for separate processes (which have no
    sinks installed at all).
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, item):
        records = []
        token = _CAPTURE.set(records)
        active_token = _ACTIVE.set(None)
        try:
            result = self.fn(item)
        finally:
            _ACTIVE.reset(active_token)
            _CAPTURE.reset(token)
        return _TaskPayload(result, records)


def wrap_task(fn):
    """Wrap a per-item executor task for span capture when tracing is on.

    Returns ``fn`` unchanged while tracing is disabled, so the executor
    path is untouched by default.  When a sink is installed the task is
    wrapped in :class:`_TracedTask`; pair with :func:`unwrap_results`
    on the ordered result list.
    """
    if not enabled():
        return fn
    return _TracedTask(fn)


def unwrap_results(results):
    """Unwrap :func:`wrap_task` payloads, replaying captured spans.

    Worker-side spans whose parent is not in the same payload (the
    worker's root spans) are re-parented onto the caller's currently
    active span, then every record is emitted to the installed sinks in
    payload order.  Items that are not payloads pass through untouched,
    so callers can apply this unconditionally.
    """
    unwrapped = []
    for item in results:
        if not isinstance(item, _TaskPayload):
            unwrapped.append(item)
            continue
        _replay(item.spans)
        unwrapped.append(item.result)
    return unwrapped


def _replay(records):
    active = _ACTIVE.get()
    parent_id = active.span_id if active is not None else None
    local_ids = {record["span_id"] for record in records}
    for record in records:
        if record["parent_id"] not in local_ids:
            record = dict(record, parent_id=parent_id, reparented=True)
        _emit(record)


class MemorySink:
    """Sink that keeps records in a list (testing and summaries)."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        """Append one record."""
        self.records.append(record)

    def __len__(self):
        return len(self.records)


def _json_default(value):
    """Best-effort JSON coercion for numpy scalars and other leaves."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def encode_record(record):
    """Serialize one record to a compact single-line JSON string."""
    return json.dumps(record, default=_json_default, separators=(",", ":"))
