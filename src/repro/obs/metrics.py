"""Metrics registry: named counters, gauges, and histograms.

The registry is deliberately tiny and dependency-free.  Instruments are
*get-or-create*: ``counter("study.chunks_completed")`` returns the same
object every time, so modules can hold a reference at import time and
increment it on hot paths without a dictionary lookup.

Values survive :meth:`MetricsRegistry.reset` as *objects* -- reset zeroes
them in place -- because call sites keep module-level references.  All
instruments are best-effort under free threading: increments are plain
attribute updates guarded by the GIL, which is the same contract the
ad-hoc counters they replaced had.

Counters the performance tiers move, beyond the store/cache/scheduler
instruments: ``engine.plan_cache.hits`` / ``engine.plan_cache.misses``
(process-global :meth:`Study.plan` memoization),
``runtime.lowrank.ensembles`` (sweeps served by the low-rank update
solver), and ``runtime.batch.eig_fallbacks`` (instances the response
guard or float32 screen re-solved at full precision).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
]


class Counter:
    """Monotonic named count, e.g. chunks completed or cache hits."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def reset(self):
        """Zero the counter in place and return the previous value."""
        previous = self.value
        self.value = 0
        return previous

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written named value, e.g. peak bytes of the active plan."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        """Record ``value`` as the gauge's current reading."""
        self.value = value

    def reset(self):
        """Zero the gauge in place and return the previous value."""
        previous = self.value
        self.value = 0
        return previous

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming summary (count/total/min/max) of observed samples.

    Full sample retention is deliberately avoided: chunk timings are
    observed once per chunk on the hot path, and the summary merge is
    O(1) per observation.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def observe(self, value):
        """Fold one sample into the running summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def summary(self):
        """Return ``{count, total, min, max, mean}`` for this histogram."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": mean,
        }

    def reset(self):
        """Zero the histogram in place and return the prior summary."""
        previous = self.summary()
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        return previous

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Namespace of get-or-create instruments with a snapshot view."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name):
        """Return the :class:`Counter` called ``name``, creating it once."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        """Return the :class:`Gauge` called ``name``, creating it once."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name):
        """Return the :class:`Histogram` called ``name``, creating it once."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self):
        """Return a plain-dict copy of every instrument's current value."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self):
        """Zero every instrument in place (objects stay valid)."""
        for instrument in self._counters.values():
            instrument.reset()
        for instrument in self._gauges.values():
            instrument.reset()
        for instrument in self._histograms.values():
            instrument.reset()


_REGISTRY = MetricsRegistry()


def registry():
    """Return the process-global :class:`MetricsRegistry`."""
    return _REGISTRY


def counter(name):
    """Get-or-create a counter on the global registry."""
    return _REGISTRY.counter(name)


def gauge(name):
    """Get-or-create a gauge on the global registry."""
    return _REGISTRY.gauge(name)


def histogram(name):
    """Get-or-create a histogram on the global registry."""
    return _REGISTRY.histogram(name)


def snapshot_delta(before, after):
    """Diff two :meth:`MetricsRegistry.snapshot` dicts (``after - before``).

    Counters and histogram count/total subtract; gauges and histogram
    min/max report the ``after`` reading.  Instruments that did not move
    are dropped so the delta reads as "what this run did".
    """
    delta = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        moved = value - before_counters.get(name, 0)
        if moved:
            delta["counters"][name] = moved
    before_gauges = before.get("gauges", {})
    for name, value in after.get("gauges", {}).items():
        if value != before_gauges.get(name, 0):
            delta["gauges"][name] = value
    before_histograms = before.get("histograms", {})
    for name, summary in after.get("histograms", {}).items():
        prior = before_histograms.get(name, {"count": 0, "total": 0.0})
        count = summary["count"] - prior["count"]
        if not count:
            continue
        total = summary["total"] - prior["total"]
        delta["histograms"][name] = {
            "count": count,
            "total": total,
            "mean": total / count,
            "min": summary["min"],
            "max": summary["max"],
        }
    return delta
