"""Span→event bridge: trace records in, consumer callbacks out.

The serving layer streams study progress to remote clients as NDJSON
events.  Rather than threading bespoke callbacks through the engine,
the bridge is an ordinary trace *sink* (the same contract
:class:`~repro.obs.progress.ProgressReporter` and
:class:`~repro.obs.export.JsonlSink` implement): install it on a study
via ``Study.trace(bridge)`` and every closing span it cares about
becomes one flat, JSON-safe event dict handed to the callback.

The bridge is thread-safe on the emitting side -- chunk spans can close
on executor worker threads -- and never raises out of ``emit`` (a
broken consumer must not kill the study it is watching).
"""

from __future__ import annotations

import threading
import time

__all__ = ["SpanEventBridge"]

#: Span names forwarded by default: chunk completions (progress),
#: checkpoint saves (durability), and the study roots (start/finish).
DEFAULT_SPANS = ("study.chunk", "study.run", "study.work", "store.save")


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class SpanEventBridge:
    """Trace sink that forwards selected spans as flat event dicts.

    Parameters
    ----------
    callback:
        ``callback(event: dict)``, invoked once per matching span with
        ``{"event": <span name>, "t": <unix time>, **attrs}``.
        Exceptions from the callback are swallowed (and counted on
        :attr:`dropped`) so a misbehaving consumer never interrupts the
        producing study.
    spans:
        Span names to forward (default: chunk completions, checkpoint
        saves, and the study root spans).
    """

    def __init__(self, callback, spans=DEFAULT_SPANS):
        self.callback = callback
        self.spans = frozenset(spans)
        self.forwarded = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def emit(self, record):
        """Consume one trace record; forward matching closed spans."""
        if record.get("type") != "span" or record.get("name") not in self.spans:
            return
        event = {
            "event": record["name"],
            "t": time.time(),
            "wall_seconds": record.get("wall_seconds"),
        }
        if record.get("error"):
            event["error"] = record["error"]
        for key, value in record.get("attrs", {}).items():
            event[key] = _json_safe(value)
        with self._lock:
            try:
                self.callback(event)
                self.forwarded += 1
            except Exception:
                self.dropped += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanEventBridge(spans={sorted(self.spans)}, "
            f"forwarded={self.forwarded}, dropped={self.dropped})"
        )
