"""Observability substrate: span tracing, metrics, trace exporters.

``repro.obs`` is a zero-dependency leaf package (stdlib only, no
imports from the runtime stack) that the rest of the runtime emits
into:

- :mod:`repro.obs.trace`    -- spans with ambient context, worker-side
  capture, and re-parenting across thread/process/shared executors;
- :mod:`repro.obs.metrics`  -- get-or-create counters, gauges, and
  histograms on a process-global registry;
- :mod:`repro.obs.export`   -- JSONL trace files, ``repro trace
  summarize`` reports, and per-chunk lineage merging;
- :mod:`repro.obs.progress` -- a uniform progress line driven by
  ``study.chunk`` span events;
- :mod:`repro.obs.bridge`   -- a span→event sink that feeds chunk and
  checkpoint spans to consumer callbacks (the NDJSON progress streams
  of :mod:`repro.serve`).

Tracing is off until a sink is installed -- the instrumented hot paths
then cost one truthiness check (enforced by
``benchmarks/bench_obs_overhead.py``).  Enable it per study with
``Study.trace(sink_or_path)``, per CLI invocation with ``--trace
FILE``, or process-wide with the ``REPRO_TRACE`` environment variable
(see :func:`configure_from_env`).
"""

from __future__ import annotations

import os

from repro.obs.export import (
    TRACE_FORMAT,
    JsonlSink,
    chunk_lineage,
    lineage_sources,
    read_trace,
    summarize_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.bridge import SpanEventBridge
from repro.obs.progress import ProgressReporter
from repro.obs.trace import (
    MemorySink,
    add_sink,
    annotate,
    current_span,
    enabled,
    remove_sink,
    span,
    unwrap_results,
    wrap_task,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "ProgressReporter",
    "SpanEventBridge",
    "TRACE_FORMAT",
    "add_sink",
    "annotate",
    "chunk_lineage",
    "configure_from_env",
    "counter",
    "current_span",
    "enabled",
    "gauge",
    "histogram",
    "lineage_sources",
    "read_trace",
    "registry",
    "remove_sink",
    "span",
    "summarize_trace",
    "unwrap_results",
    "wrap_task",
]

REPRO_TRACE_ENV = "REPRO_TRACE"


def configure_from_env(environ=None):
    """Install a JSONL sink if ``REPRO_TRACE`` names a file path.

    Returns the installed :class:`~repro.obs.export.JsonlSink` (the
    caller owns it: remove with :func:`remove_sink` and ``close()``
    when done) or ``None`` when the variable is unset or empty.
    """
    environ = os.environ if environ is None else environ
    path = environ.get(REPRO_TRACE_ENV, "").strip()
    if not path:
        return None
    sink = JsonlSink(path)
    add_sink(sink)
    return sink
