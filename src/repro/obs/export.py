"""Trace exporters: JSONL files, human summaries, chunk lineage.

The on-disk format is one JSON object per line (``repro-trace/v1``).
Three record types share the stream:

- ``meta``    -- file header: format tag, creating pid, wall-clock time;
- ``span``    -- one closed span (see :mod:`repro.obs.trace`);
- ``metrics`` -- a metrics-registry delta, emitted once per study run.

JSONL appends are line-atomic, so several shards may point at separate
files and the files can simply be concatenated (or read together with
:func:`read_trace`) -- span ids are unique across processes, which is
what makes :func:`chunk_lineage` able to merge shard traces into one
per-chunk report.
"""

from __future__ import annotations

import json
import os
import time

from repro.obs.trace import encode_record

__all__ = [
    "JsonlSink",
    "TRACE_FORMAT",
    "chunk_lineage",
    "lineage_sources",
    "read_trace",
    "summarize_trace",
]

TRACE_FORMAT = "repro-trace/v1"


class JsonlSink:
    """Trace sink appending one JSON record per line to a file.

    The file is opened lazily on the first record (so configuring a
    trace path never creates empty files for runs that emit nothing)
    and a ``meta`` header line is written first.

    Appends are **line-atomic across processes**: the file descriptor
    is opened with ``O_APPEND`` and every record goes down as a single
    ``os.write`` of one pre-joined line, so several workers tracing to
    the same file can never interleave mid-record.  (The previous
    buffered-text implementation could tear lines under concurrency;
    :func:`read_trace` silently drops unparsable lines, so the tear
    cost real lineage, not just cosmetics.)  Kernel-level appends also
    mean there is no userspace buffer to flush -- a SIGKILL loses
    nothing already emitted.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fd = None

    def _open(self):
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        header = {
            "type": "meta",
            "format": TRACE_FORMAT,
            "pid": os.getpid(),
            "created": time.time(),
        }
        self._write_line(header)

    def _write_line(self, record):
        data = (encode_record(record) + "\n").encode("utf-8")
        # One write() per line: with O_APPEND the kernel serializes the
        # offset update and the data, which is the whole atomicity story.
        os.write(self._fd, data)

    def emit(self, record):
        """Append one record as a single atomic write."""
        if self._fd is None:
            self._open()
        self._write_line(record)

    def close(self):
        """Close the underlying file descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"JsonlSink({self.path!r})"


def read_trace(path):
    """Read a JSONL trace file into a list of record dicts.

    Lines that fail to parse (e.g. a final line truncated by a kill)
    are skipped rather than fatal -- traces are evidence, and partial
    evidence is still evidence.
    """
    records = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def _spans(records):
    return [r for r in records if r.get("type") == "span"]


def _format_seconds(value):
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.2f}ms"


def _phase_tree_lines(spans):
    """Aggregate spans by (depth, name) under their parent grouping."""
    by_id = {s["span_id"]: s for s in spans}
    children = {}
    roots = []
    for record in spans:
        parent = record.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    lines = []

    def walk(group, depth):
        if depth > 6 or not group:
            return
        named = {}
        for record in group:
            named.setdefault(record["name"], []).append(record)
        ordered = sorted(
            named.items(),
            key=lambda item: -sum(r["wall_seconds"] for r in item[1]),
        )
        for name, members in ordered:
            wall = sum(r["wall_seconds"] for r in members)
            cpu = sum(r["cpu_seconds"] for r in members)
            lines.append(
                f"{'  ' * depth}{name:<{max(28 - 2 * depth, 8)}}"
                f" {_format_seconds(wall):>9}  cpu {_format_seconds(cpu):>9}"
                f"  x{len(members)}"
            )
            grandchildren = []
            for member in members:
                grandchildren.extend(children.get(member["span_id"], []))
            walk(grandchildren, depth + 1)

    walk(roots, 0)
    return lines


def summarize_trace(records):
    """Render a human report: phase time tree, tiers, throughput.

    ``records`` is the output of :func:`read_trace`; records from
    several trace files may be concatenated first to summarize a
    sharded study as one run.
    """
    spans = _spans(records)
    lines = []
    runs = [s for s in spans if s["name"] == "study.run"]
    lines.append(
        f"=== trace summary: {len(spans)} spans, "
        f"{len(runs)} study run(s), "
        f"{len({s['pid'] for s in spans})} process(es) ==="
    )

    lines.append("")
    lines.append("phase tree (wall time, summed over spans):")
    tree = _phase_tree_lines(spans)
    lines.extend("  " + line for line in tree)
    if not tree:
        lines.append("  (no spans)")

    tiers = {}
    for record in spans:
        if record["name"] != "sparse.refactor":
            continue
        kind = record["attrs"].get("solver", "unknown")
        count, wall = tiers.get(kind, (0, 0.0))
        tiers[kind] = (count + 1, wall + record["wall_seconds"])
    if tiers:
        lines.append("")
        lines.append("solver tiers:")
        for kind, (count, wall) in sorted(tiers.items()):
            lines.append(f"  {kind}: {count} solve(s), {_format_seconds(wall)}")

    chunk_spans = [s for s in spans if s["name"] == "study.chunk"]
    if chunk_spans:
        instances = sum(s["attrs"].get("instances", 0) for s in chunk_spans)
        wall = sum(r["wall_seconds"] for r in runs) or sum(
            s["wall_seconds"] for s in chunk_spans
        )
        lines.append("")
        rate = instances / wall if wall > 0 else 0.0
        lines.append(
            f"throughput: {instances} instance(s) over "
            f"{len(chunk_spans)} chunk(s) in {_format_seconds(wall)}"
            f" ({rate:.1f} instances/s)"
        )

    for record in records:
        if record.get("type") != "metrics":
            continue
        counters = record.get("delta", {}).get("counters", {})
        if not counters:
            continue
        lines.append("")
        lines.append("counters (run delta):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name}: {value}")

    return "\n".join(lines)


def chunk_lineage(records):
    """Merge trace records into one per-chunk lineage, sorted by index.

    Joins each ``study.chunk`` / ``scheduler.chunk`` span with its
    child ``store.save`` / ``store.load`` span (same parentage),
    yielding one dict per chunk span::

        {"index", "lo", "hi", "instances", "sha256", "source",
         "pid", "shard", "worker", "stolen", "wall_seconds"}

    ``source`` is ``"computed"`` (saved this run), ``"resumed"``
    (loaded from a checkpoint), or ``"volatile"`` (no store attached).
    ``worker`` and ``stolen`` come from work-stealing drains
    (``scheduler.chunk`` spans; ``None``/``False`` elsewhere).
    ``scheduler.chunk`` spans carry only ``index`` -- their ``lo`` /
    ``hi`` / ``instances`` are filled from the joined ``store.save``
    child.  Note that a worker which drains a study and then merges it
    reports the same index twice: once as a ``scheduler.chunk`` entry
    (source ``"computed"``) and once as a ``study.chunk`` entry from
    the fold (source ``"resumed"``).

    Records may come from several shards' or workers' trace files
    concatenated together; span ids are globally unique so the join is
    unambiguous.  The ``sha256`` values are exactly the ones the
    StudyStore manifest records, which is what lets a lineage be
    verified bit-for-bit.
    """
    spans = _spans(records)
    chunks = {
        s["span_id"]: s
        for s in spans
        if s["name"] in ("study.chunk", "scheduler.chunk")
    }
    store_by_parent = {}
    for record in spans:
        if record["name"] in ("store.save", "store.load"):
            parent = record.get("parent_id")
            if parent in chunks:
                store_by_parent[parent] = record

    lineage = []
    for span_id, chunk in chunks.items():
        attrs = chunk["attrs"]
        entry = {
            "index": attrs.get("index"),
            "lo": attrs.get("lo"),
            "hi": attrs.get("hi"),
            "instances": attrs.get("instances"),
            "sha256": None,
            "source": "volatile",
            "pid": chunk["pid"],
            "shard": attrs.get("shard"),
            "worker": attrs.get("worker"),
            "stolen": bool(attrs.get("stolen", False)),
            "wall_seconds": chunk["wall_seconds"],
        }
        store_span = store_by_parent.get(span_id)
        if store_span is not None:
            store_attrs = store_span["attrs"]
            entry["sha256"] = store_attrs.get("sha256")
            entry["source"] = (
                "computed" if store_span["name"] == "store.save" else "resumed"
            )
            for field in ("lo", "hi"):
                if entry[field] is None:
                    entry[field] = store_attrs.get(field)
            if entry["instances"] is None and None not in (
                entry["lo"], entry["hi"]
            ):
                entry["instances"] = entry["hi"] - entry["lo"]
        lineage.append(entry)
    lineage.sort(key=lambda entry: (entry["index"] is None, entry["index"]))
    return lineage


def lineage_sources(lineage):
    """Collapse :func:`chunk_lineage` entries to one attribution per chunk.

    Returns ``{chunk_index: {"source", "worker"}}`` where ``source`` is
    ``"stolen"`` / ``"computed"`` / ``"resumed"`` / ``"volatile"``.  A
    chunk that appears several times (a worker drain records it as
    computed, the subsequent merge fold as resumed) keeps the most
    informative attribution: stolen > computed > resumed > volatile --
    how the work actually got done beats how it was later folded.  This
    is the shape the warehouse ingest layer consumes for its ``source``
    provenance column.
    """
    rank = {"stolen": 3, "computed": 2, "resumed": 1, "volatile": 0}
    sources = {}
    for entry in lineage:
        index = entry.get("index")
        if index is None:
            continue
        source = "stolen" if entry.get("stolen") else entry.get("source", "volatile")
        current = sources.get(index)
        if current is None or rank.get(source, 0) > rank.get(current["source"], 0):
            sources[index] = {"source": source, "worker": entry.get("worker")}
    return sources
