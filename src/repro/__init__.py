"""repro: parametric model order reduction for interconnect variability.

A from-scratch reproduction of

    Peng Li, Frank Liu, Xin Li, Lawrence T. Pileggi, Sani R. Nassif,
    "Modeling Interconnect Variability Using Efficient Parametric
    Model Order Reduction", DATE 2005.

Quickstart
----------
>>> from repro import rcnet_a, LowRankReducer
>>> parametric = rcnet_a()                    # clock-tree net, 3 width params
>>> model = LowRankReducer(num_moments=4).reduce(parametric)
>>> H = model.transfer(2j * 3.14159e9, [0.3, -0.1, 0.0])

Package map
-----------
- :mod:`repro.core` -- the paper's algorithms (low-rank Algorithm 1,
  single-point, multi-point, nominal baseline, moment oracles).
- :mod:`repro.circuits` -- MNA substrate: netlists, stamping,
  parametric systems, extraction, benchmark generators.
- :mod:`repro.baselines` -- PRIMA, TBR, AWE, projection fitting [6].
- :mod:`repro.analysis` -- frequency sweeps, poles, passivity,
  transient simulation, Monte Carlo studies.
- :mod:`repro.runtime` -- the serving layer: the declarative ``Study``
  engine (one front door routing to batched, sparse shared-pattern,
  streamed, and executor-parallel kernels), scenario plans, the
  content-addressed model cache, and parallel executors.
- :mod:`repro.warehouse` -- the analytics tier: partitioned columnar
  datasets ingested from StudyStore checkpoints (idempotent,
  provenance-carrying) and exact out-of-core aggregation over them.
- :mod:`repro.linalg` -- shared numerical kernels.

See the repository-root ``README.md`` for installation, CLI usage, and
a tour of the runtime subsystem.
"""

from repro.analysis import (
    compare_frequency_responses,
    dominant_poles,
    match_poles,
    monte_carlo_pole_study,
    passivity_report,
    pole_error_grid,
    sample_parameters,
    simulate_step,
    simulate_transient,
    sweep,
)
from repro.baselines import fit_projection_model, prima, prima_projection, tbr
from repro.circuits import (
    DescriptorSystem,
    Netlist,
    ParametricSystem,
    assemble,
    clock_tree,
    coupled_rlc_bus,
    finite_difference_sensitivities,
    parse_netlist,
    power_grid_mesh,
    rc_ladder,
    rc_network_767,
    rc_tree,
    rcnet_a,
    rcnet_b,
    standard_stack,
    with_random_variations,
)
from repro.core import (
    AdaptiveLowRankReducer,
    LowRankReducer,
    MultiPointReducer,
    NominalReducer,
    ParametricReducedModel,
    SinglePointReducer,
    factorial_grid,
    shifted_parametric_system,
)
from repro.runtime import (
    CornerPlan,
    ExecutionPlan,
    GridPlan,
    ModelCache,
    MonteCarloPlan,
    ProcessExecutor,
    PWLInput,
    RampInput,
    SerialExecutor,
    SharedMemoryExecutor,
    SineInput,
    SparsePatternFamily,
    StepInput,
    StoreError,
    Study,
    StudyStore,
    ThreadExecutor,
    batch_frequency_response,
    batch_instantiate,
    batch_poles,
    batch_simulate_transient,
    batch_transfer,
    batch_transient_study,
    run_frequency_scenarios,
    sparse_batch_frequency_response,
    stream_sweep_study,
    stream_transient_study,
)
from repro.warehouse import Warehouse, WarehouseError

__version__ = "0.1.0"

__all__ = [
    "AdaptiveLowRankReducer",
    "CornerPlan",
    "DescriptorSystem",
    "ExecutionPlan",
    "GridPlan",
    "LowRankReducer",
    "ModelCache",
    "MonteCarloPlan",
    "MultiPointReducer",
    "Netlist",
    "NominalReducer",
    "PWLInput",
    "ParametricReducedModel",
    "ParametricSystem",
    "ProcessExecutor",
    "RampInput",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "SineInput",
    "SinglePointReducer",
    "SparsePatternFamily",
    "StepInput",
    "StoreError",
    "Study",
    "StudyStore",
    "ThreadExecutor",
    "Warehouse",
    "WarehouseError",
    "__version__",
    "assemble",
    "batch_frequency_response",
    "batch_instantiate",
    "batch_poles",
    "batch_simulate_transient",
    "batch_transfer",
    "batch_transient_study",
    "clock_tree",
    "compare_frequency_responses",
    "coupled_rlc_bus",
    "dominant_poles",
    "factorial_grid",
    "finite_difference_sensitivities",
    "fit_projection_model",
    "match_poles",
    "monte_carlo_pole_study",
    "parse_netlist",
    "passivity_report",
    "pole_error_grid",
    "power_grid_mesh",
    "prima",
    "prima_projection",
    "rc_ladder",
    "rc_network_767",
    "rc_tree",
    "rcnet_a",
    "rcnet_b",
    "run_frequency_scenarios",
    "sample_parameters",
    "shifted_parametric_system",
    "simulate_step",
    "simulate_transient",
    "sparse_batch_frequency_response",
    "standard_stack",
    "stream_sweep_study",
    "stream_transient_study",
    "sweep",
    "tbr",
    "with_random_variations",
]
