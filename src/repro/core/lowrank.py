"""Low-rank approximation based multi-parameter moment matching.

This is the paper's contribution (Section 4, Algorithm 1 / Fig. 2).

The key idea: the multi-parameter moments (paper eq. (9)) interleave
the frequency operator ``A0 = -G0^{-1} C0`` with the *generalized
sensitivity matrices* ``S_gi = -G0^{-1} G_i`` and ``S_ci = -G0^{-1} C_i``.
Approximating each generalized sensitivity by a truncated SVD,

``S ~= U_hat Sigma V_hat^T``  (rank ``k_svd``, usually 1),

collapses every operator product through ``S`` onto ``colspan(U_hat)``:
``... S x = U_hat (Sigma V_hat^T x)``.  The Krylov subspaces of the
frequency variable therefore *decouple* from those of the parameters
-- no cross-term blow-up -- and the projection is a union of small
independent pieces (Algorithm 1, steps 2-3):

- ``V_0      = Kr(A0, R0, k+1)``                    (nominal/frequency)
- ``V_{Gi,1} = Kr(A0, U_hat_Gi, k+1)``              (parameter, primal)
- ``V_{Gi,2} = Kr(A0^T, V_tilde_Gi, k)``            (parameter, dual)
- ``V_{Ci,1} = Kr(A0, U_hat_Ci, k)``                (cross, primal)
- ``V_{Ci,2} = Kr(A0^T, V_tilde_Ci, k-1)``          (cross, dual)

with ``V_tilde = -G0^{-T} V_hat`` and ``R0 = G0^{-1} B``.  The dual
(``A0^T``) subspaces are optional: dropping them and appending
``V_hat`` directly halves the model size at some accuracy cost (the
"simplified" variant discussed below Theorem 1); keeping them improves
accuracy because step 4 reduces the *original* -- not low-rank --
sensitivity matrices, preserving passivity.

Cost: ONE sparse LU factorization of ``G0`` serves every solve,
including the ``A0^T`` products (transpose solves reuse the factors)
and the matrix-implicit SVDs (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuits.variational import ParametricSystem
from repro.core.model import ParametricReducedModel
from repro.linalg.operators import ImplicitProduct
from repro.linalg.orth import DEFAULT_DEFLATION_TOL, block_krylov, stack_orthonormalize
from repro.linalg.sparselu import SparseLU
from repro.linalg.subspace_svd import truncated_svd


def sensitivity_rank_factors(
    matrices,
    tol: float = 1e-9,
    max_total_rank: Optional[int] = None,
):
    """Numerical-rank SVD splits ``M_i = X_i Y_i^T`` of dense sensitivities.

    The runtime's low-rank ensemble solver
    (:mod:`repro.runtime.lowrank`) needs the paper's structural premise
    -- each ``dG_i`` / ``dC_i`` is a low-rank matrix -- as explicit
    factors.  For every matrix this returns ``(X, Y)`` with
    ``X = U diag(sigma)`` and ``Y = V`` truncated at the numerical rank
    (singular values above ``tol`` relative to the largest), so
    ``M = X @ Y.T`` to working precision.

    ``max_total_rank`` is an early-abort budget: the accumulated rank
    across all matrices is checked after each SVD and ``None`` is
    returned as soon as it is exceeded -- detection on a densely
    perturbed model then pays for one SVD, not ``2 n_p``.  An all-zero
    matrix contributes rank 0 (empty factors).
    """
    factors = []
    total = 0
    for matrix in matrices:
        matrix = np.asarray(
            matrix.toarray() if hasattr(matrix, "toarray") else matrix, dtype=float
        )
        rows, cols = matrix.shape
        if not matrix.any():
            factors.append((np.zeros((rows, 0)), np.zeros((cols, 0))))
            continue
        u, sigma, vt = np.linalg.svd(matrix, full_matrices=False)
        rank = int(np.count_nonzero(sigma > tol * sigma[0]))
        total += rank
        if max_total_rank is not None and total > max_total_rank:
            return None
        factors.append((u[:, :rank] * sigma[:rank], vt[:rank].T))
    return factors


class LowRankReducer:
    """Algorithm 1 of the paper.

    Parameters
    ----------
    num_moments:
        Moment-matching order ``k``: the reduced model matches all
        multi-parameter moments of the (low-rank-approximated)
        parametric system up to total order ``k`` (Theorem 1).
    rank:
        SVD rank ``k_svd`` for the generalized sensitivity matrices.
        The paper observes rank 1 is usually sufficient.
    svd_method:
        ``"lanczos"`` (default), ``"subspace"`` or ``"dense"`` -- the
        truncated-SVD driver (:func:`repro.linalg.subspace_svd.truncated_svd`).
    include_dual_subspaces:
        Keep the ``A0^T`` Krylov subspaces (full Algorithm 1).  With
        ``False`` the simplified variant is built instead: duals are
        dropped and ``V_hat`` blocks are appended, roughly halving the
        model size (paper, discussion after Theorem 1).
    approximate_sensitivities:
        If ``True``, step 4 reduces the *low-rank approximated*
        sensitivities instead of the originals.  The paper reduces the
        originals (better accuracy, passivity of the true parametric
        model); the approximated mode exists to verify Theorem 1
        exactly in the tests.
    raw_sensitivity_svd:
        Ablation switch: apply the SVD to the raw sensitivities
        ``G_i``/``C_i`` instead of the generalized ones ``G0^{-1} G_i``.
        The paper reports this "will incur a larger error ... due to
        their [the generalized ones'] stronger connection to moments".
    expansion_point:
        Real frequency expansion point ``s0`` (default 0, the paper's
        setting).  With ``s0 != 0`` the algorithm runs on the shifted
        system of :mod:`repro.core.expansion` and matches moments of
        ``H(s0 + sigma, p)`` -- useful for wide-band targets and for
        circuits whose ``G0`` is singular.
    tol:
        Deflation tolerance for all orthonormalizations.
    """

    def __init__(
        self,
        num_moments: int,
        rank: int = 1,
        svd_method: str = "lanczos",
        include_dual_subspaces: bool = True,
        approximate_sensitivities: bool = False,
        raw_sensitivity_svd: bool = False,
        expansion_point: float = 0.0,
        tol: float = DEFAULT_DEFLATION_TOL,
    ):
        if num_moments < 1:
            raise ValueError("num_moments must be >= 1")
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if expansion_point != 0.0 and approximate_sensitivities:
            raise ValueError(
                "approximate_sensitivities (the Theorem 1 verification mode) "
                "is defined at the s0 = 0 expansion only"
            )
        self.num_moments = num_moments
        self.rank = rank
        self.svd_method = svd_method
        self.include_dual_subspaces = include_dual_subspaces
        self.approximate_sensitivities = approximate_sensitivities
        self.raw_sensitivity_svd = raw_sensitivity_svd
        self.expansion_point = float(expansion_point)
        self.tol = tol

    # -- step 1: low-rank approximation of generalized sensitivities ----

    def _sensitivity_factors(
        self, lu: SparseLU, matrix
    ) -> Dict[str, np.ndarray]:
        """Truncated SVD of ``-G0^{-1} M`` (or of raw ``M`` for the ablation).

        Returns ``U`` (scaled by the singular values), the raw left
        vectors ``U_hat`` and right vectors ``V_hat``.
        """
        if self.raw_sensitivity_svd:
            operator = matrix
        else:
            operator = ImplicitProduct(lu, matrix, sign=-1.0)
        u_hat, sigma, v_hat = truncated_svd(operator, self.rank, method=self.svd_method)
        return {"U": u_hat * sigma, "U_hat": u_hat, "V_hat": v_hat, "sigma": sigma}

    # -- steps 2-3: Krylov subspaces and their union ---------------------

    def projection(
        self,
        parametric: ParametricSystem,
        lu: Optional[SparseLU] = None,
        return_factors: bool = False,
    ):
        """Compute the Algorithm 1 projection matrix ``V``.

        One factorization of ``G0`` (or ``G0 + s0 C0`` for a shifted
        expansion; reused if ``lu`` is supplied); everything else is
        triangular solves, sparse multiplies and small dense
        orthonormalizations.
        """
        if self.expansion_point != 0.0:
            from repro.core.expansion import shifted_parametric_system

            parametric = shifted_parametric_system(parametric, self.expansion_point)
        nominal = parametric.nominal
        if lu is None:
            lu = SparseLU(nominal.G)
        k = self.num_moments
        c0 = nominal.C
        c0_t = c0.T

        def apply_a0(block: np.ndarray) -> np.ndarray:
            return -lu.solve(np.asarray(c0 @ block))

        def apply_a0_t(block: np.ndarray) -> np.ndarray:
            return -np.asarray(c0_t @ lu.solve_transpose(block))

        b_dense = (
            nominal.B.toarray() if hasattr(nominal.B, "toarray") else np.asarray(nominal.B)
        )
        start = lu.solve(b_dense)

        # Step 2.1: the nominal frequency subspace, powers 0..k.
        blocks: List[np.ndarray] = [block_krylov(apply_a0, start, k + 1, tol=self.tol)]

        factors: List[Dict[str, Dict[str, np.ndarray]]] = []
        for gi, ci in zip(parametric.dG, parametric.dC):
            per_parameter = {
                "G": self._sensitivity_factors(lu, gi),
                "C": self._sensitivity_factors(lu, ci),
            }
            factors.append(per_parameter)

            # Step 2.2, primal subspaces: Kr(A0, U_hat, .).
            # G_i couples through p_i (one order), C_i through s*p_i
            # (two orders): block counts k+1 and k as in Fig. 2.
            g_u = per_parameter["G"]["U_hat"]
            c_u = per_parameter["C"]["U_hat"]
            if g_u.shape[1]:
                blocks.append(block_krylov(apply_a0, g_u, k + 1, tol=self.tol))
            if c_u.shape[1] and k >= 1:
                blocks.append(block_krylov(apply_a0, c_u, k, tol=self.tol))

            if self.include_dual_subspaces:
                # Step 2.2, dual subspaces: V_tilde = -G0^{-T} V_hat,
                # then Kr(A0^T, V_tilde, .) with counts k and k-1.
                g_v = per_parameter["G"]["V_hat"]
                c_v = per_parameter["C"]["V_hat"]
                if g_v.shape[1] and k >= 1:
                    g_v_tilde = -lu.solve_transpose(g_v)
                    blocks.append(block_krylov(apply_a0_t, g_v_tilde, k, tol=self.tol))
                if c_v.shape[1] and k >= 2:
                    c_v_tilde = -lu.solve_transpose(c_v)
                    blocks.append(block_krylov(apply_a0_t, c_v_tilde, k - 1, tol=self.tol))
            else:
                # Simplified variant: append the right singular vectors
                # directly (keeps Theorem 1, halves the model size).
                if per_parameter["G"]["V_hat"].shape[1]:
                    blocks.append(per_parameter["G"]["V_hat"])
                if per_parameter["C"]["V_hat"].shape[1]:
                    blocks.append(per_parameter["C"]["V_hat"])

        # Step 3: orthonormal basis of the union.
        projection = stack_orthonormalize(blocks, tol=self.tol)
        if return_factors:
            return projection, factors
        return projection

    # -- step 4: congruence transforms -----------------------------------

    def reduce(self, parametric: ParametricSystem) -> ParametricReducedModel:
        """Build the parametric reduced model (Algorithm 1, step 4).

        The congruence transforms are applied to the original
        sensitivity matrices (not their low-rank approximations), so
        passivity of the original parametric model carries over.
        """
        if not self.approximate_sensitivities:
            return parametric.reduce(self.projection(parametric))
        projection, factors = self.projection(parametric, return_factors=True)
        approximated = self.approximated_system(parametric, factors)
        model = approximated.reduce(projection)
        return model

    def approximated_system(
        self,
        parametric: ParametricSystem,
        factors: Optional[List[Dict[str, Dict[str, np.ndarray]]]] = None,
        lu: Optional[SparseLU] = None,
    ) -> ParametricSystem:
        """The nearby parametric system built from low-rank sensitivities.

        Theorem 1 is a statement about this system: with
        ``G~_i = -G0 U_hat Sigma V_hat^T`` (so that
        ``-G0^{-1} G~_i = U_hat Sigma V_hat^T``), the reduced model of
        ``{G0, C0, G~_i, C~_i, B, L}`` under the Algorithm 1 projection
        matches its multi-parameter moments up to order ``k``.
        """
        if self.raw_sensitivity_svd:
            raise ValueError(
                "approximated_system is defined for generalized-sensitivity SVDs"
            )
        nominal = parametric.nominal
        if factors is None:
            if lu is None:
                lu = SparseLU(nominal.G)
            factors = [
                {
                    "G": self._sensitivity_factors(lu, gi),
                    "C": self._sensitivity_factors(lu, ci),
                }
                for gi, ci in zip(parametric.dG, parametric.dC)
            ]
        g0 = nominal.G.toarray() if hasattr(nominal.G, "toarray") else np.asarray(nominal.G)
        dg_approx, dc_approx = [], []
        for per_parameter in factors:
            g_f = per_parameter["G"]
            c_f = per_parameter["C"]
            dg_approx.append(-(g0 @ g_f["U"]) @ g_f["V_hat"].T)
            dc_approx.append(-(g0 @ c_f["U"]) @ c_f["V_hat"].T)
        return ParametricSystem(
            nominal,
            dg_approx,
            dc_approx,
            parameter_names=list(parametric.parameter_names),
        )
