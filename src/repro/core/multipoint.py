"""Multi-point expansion in the variational parameter space (paper Section 3.3).

Take ``n_s`` samples ``P_j`` of the parameter vector, run a standard
Krylov reduction (PRIMA) on each perturbed system ``(G(P_j), C(P_j))``
to match ``k`` moments of ``s``, and project the parametric family onto
the union ``colspan{V_1, ..., V_ns}`` (paper Fig. 1).  The model
"approximates the full model at the sample points ... and then
interpolates implicitly between these samples" via the projection --
the robust alternative to the direct fitting of Liu et al. [6].

Cost: one sparse factorization *per sample* (the paper's Section 4.2
contrast with the low-rank method's single factorization); a full
factorial grid with ``c`` samples per axis costs ``c^{n_p}``
factorizations, e.g. 81 for 3 samples/axis in 4 dimensions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.prima import prima_projection
from repro.circuits.variational import ParametricSystem
from repro.core.model import ParametricReducedModel
from repro.linalg.orth import DEFAULT_DEFLATION_TOL, stack_orthonormalize


def factorial_grid(
    num_parameters: int, samples_per_axis: int, half_range: float
) -> np.ndarray:
    """Full factorial sampling grid in ``[-half_range, +half_range]^np``.

    ``samples_per_axis = 1`` returns just the nominal point;
    ``2`` the corners ``+/-half_range``; ``3`` adds the center, etc.
    """
    if num_parameters < 1:
        raise ValueError("need at least one parameter")
    if samples_per_axis < 1:
        raise ValueError("need at least one sample per axis")
    if samples_per_axis == 1:
        axis = np.array([0.0])
    else:
        axis = np.linspace(-half_range, half_range, samples_per_axis)
    return np.array(list(itertools.product(axis, repeat=num_parameters)))


class MultiPointReducer:
    """Union-of-PRIMA-subspaces over parameter-space samples.

    Parameters
    ----------
    sample_points:
        Explicit parameter points ``P_j`` (each an ``n_p``-vector).
        Use :func:`factorial_grid` for the paper-style grids.
    num_moments:
        Moments of ``s`` matched at every sample (``k``).
    expansion_point:
        Real PRIMA expansion point shared by all samples.
    tol:
        Deflation tolerance for the subspace union.
    """

    def __init__(
        self,
        sample_points: Sequence[Sequence[float]],
        num_moments: int,
        expansion_point: float = 0.0,
        tol: float = DEFAULT_DEFLATION_TOL,
    ):
        points = np.atleast_2d(np.asarray(sample_points, dtype=float))
        if points.shape[0] < 1:
            raise ValueError("need at least one sample point")
        if num_moments < 1:
            raise ValueError("num_moments must be >= 1")
        self.sample_points = points
        self.num_moments = num_moments
        self.expansion_point = expansion_point
        self.tol = tol

    @property
    def num_samples(self) -> int:
        """Number of expansion points ``n_s`` (= factorizations needed)."""
        return self.sample_points.shape[0]

    def sample_projections(self, parametric: ParametricSystem) -> List[np.ndarray]:
        """Per-sample PRIMA bases ``V_j`` (one factorization each)."""
        if self.sample_points.shape[1] != parametric.num_parameters:
            raise ValueError(
                f"sample points have {self.sample_points.shape[1]} coordinates, "
                f"system has {parametric.num_parameters} parameters"
            )
        projections = []
        for point in self.sample_points:
            system = parametric.instantiate(point)
            projections.append(
                prima_projection(
                    system,
                    self.num_moments,
                    expansion_point=self.expansion_point,
                    tol=self.tol,
                )
            )
        return projections

    def projection(self, parametric: ParametricSystem) -> np.ndarray:
        """Orthonormal basis of ``colspan{V_1, ..., V_ns}``."""
        return stack_orthonormalize(self.sample_projections(parametric), tol=self.tol)

    def reduce(self, parametric: ParametricSystem) -> ParametricReducedModel:
        """Build the multi-point parametric reduced model."""
        return parametric.reduce(self.projection(parametric))
