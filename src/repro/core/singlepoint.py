"""Single-point multi-parameter moment matching (paper Section 3.1, after [10]).

Expands the parametric transfer function at a single point of the
joint ``(s, p)`` space and projects onto the span of *all*
multi-parameter moments up to total order ``k`` (paper eq. (8)).

Two subspace constructions are provided:

- ``span="moments"`` (default): the exact moment vectors ``M_alpha``,
  ``|alpha| <= k``, from the recurrence
  ``M_alpha = -sum_i A_i M_{alpha - e_i}`` (see
  :mod:`repro.core.moments`), orthonormalized in graded order with
  deflation.  This is the construction whose size the paper's formulas
  count: at most ``m * C(k + mu, mu)`` columns for ``mu = 2 n_p + 1``
  generalized parameters -- the cross-term blow-up of Section 3.2.
- ``span="products"``: the graded Arnoldi construction
  ``W_j = orth([A_1 W_{j-1}, ..., A_mu W_{j-1}])``, which spans every
  operator product of length ``<= k``.  This is a *superset* of the
  moment span (the operators do not commute), numerically more robust
  for high orders, and correspondingly larger.

Both match all multi-parameter moments up to total order ``k``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.variational import ParametricSystem
from repro.core.model import ParametricReducedModel
from repro.core.moments import GeneralizedParameterization, multi_indices_up_to
from repro.linalg.orth import DEFAULT_DEFLATION_TOL, orthonormalize_against
from repro.linalg.sparselu import SparseLU


class SinglePointReducer:
    """Multi-parameter moment matching at one expansion point.

    Parameters
    ----------
    total_order:
        Maximum total moment order ``k`` matched across all generalized
        parameters (frequency, parameters, and cross terms).
    span:
        ``"moments"`` (exact moment vectors, the paper's size formulas)
        or ``"products"`` (graded operator products, a robust superset).
    expansion_point:
        Real frequency expansion point ``s0`` (default 0); nonzero
        values match moments of ``H(s0 + sigma, p)`` via the shifted
        system of :mod:`repro.core.expansion`.
    tol:
        Deflation tolerance.
    """

    def __init__(
        self,
        total_order: int,
        span: str = "moments",
        expansion_point: float = 0.0,
        tol: float = DEFAULT_DEFLATION_TOL,
    ):
        if total_order < 0:
            raise ValueError("total_order must be >= 0")
        if span not in ("moments", "products"):
            raise ValueError(f"unknown span mode {span!r}")
        self.total_order = total_order
        self.span = span
        self.expansion_point = float(expansion_point)
        self.tol = tol

    def projection(
        self,
        parametric: ParametricSystem,
        lu: Optional[SparseLU] = None,
    ) -> np.ndarray:
        """Orthonormal basis spanning all moments up to ``total_order``."""
        if self.expansion_point != 0.0:
            from repro.core.expansion import shifted_parametric_system

            parametric = shifted_parametric_system(parametric, self.expansion_point)
        parameterization = GeneralizedParameterization(parametric, lu=lu)
        if self.span == "moments":
            return self._moment_span(parameterization)
        return self._product_span(parameterization)

    def _moment_span(self, parameterization: GeneralizedParameterization) -> np.ndarray:
        mu = parameterization.num_variables
        table = {(0,) * mu: parameterization.start_block}
        basis = orthonormalize_against(None, parameterization.start_block, tol=self.tol)
        if basis.shape[1] == 0:
            raise ValueError("start block deflated to nothing (zero B?)")
        for alpha in multi_indices_up_to(mu, self.total_order):
            if sum(alpha) == 0:
                continue
            accumulator = None
            for i in range(mu):
                if alpha[i] == 0:
                    continue
                parent = list(alpha)
                parent[i] -= 1
                term = parameterization.apply(i, table[tuple(parent)])
                accumulator = term if accumulator is None else accumulator + term
            moment = -accumulator
            table[alpha] = moment
            fresh = orthonormalize_against(basis, moment, tol=self.tol)
            if fresh.shape[1]:
                basis = np.hstack([basis, fresh])
        return basis

    def _product_span(self, parameterization: GeneralizedParameterization) -> np.ndarray:
        mu = parameterization.num_variables
        level = orthonormalize_against(None, parameterization.start_block, tol=self.tol)
        if level.shape[1] == 0:
            raise ValueError("start block deflated to nothing (zero B?)")
        basis = level
        for _ in range(self.total_order):
            if level.shape[1] == 0:
                break
            candidates = np.hstack(
                [parameterization.apply(i, level) for i in range(mu)]
            )
            level = orthonormalize_against(basis, candidates, tol=self.tol)
            if level.shape[1]:
                basis = np.hstack([basis, level])
        return basis

    def reduce(self, parametric: ParametricSystem) -> ParametricReducedModel:
        """Build the single-point parametric reduced model."""
        return parametric.reduce(self.projection(parametric))
