"""The paper's parametric model order reduction algorithms.

- :mod:`repro.core.lowrank` -- **the contribution**: low-rank
  approximation based multi-parameter moment matching (Algorithm 1).
- :mod:`repro.core.singlepoint` -- single-point multi-parameter moment
  matching (Section 3.1, after Daniel et al. [10]).
- :mod:`repro.core.multipoint` -- multi-point expansion in the
  variational parameter space (Section 3.3).
- :mod:`repro.core.nominal` -- the nominal-projection strawman of
  Figs. 3-4.
- :mod:`repro.core.moments` -- exact multi-parameter moments (the
  verification oracle for Theorem 1).
- :mod:`repro.core.model` -- the reduced parametric macromodel object.
- :mod:`repro.core.complexity` -- the paper's model-size/cost formulas.

Extensions beyond the paper:

- :mod:`repro.core.expansion` -- shifted expansion points ``s0 > 0``.
- :mod:`repro.core.adaptive` -- automatic rank/order selection.
- :mod:`repro.core.io` -- macromodel persistence (save/load).
"""

from repro.core.complexity import (
    factorization_counts,
    low_rank_size,
    multi_point_grid_samples,
    multi_point_size,
    single_point_size,
    single_point_size_first_order_example,
)
from repro.core.adaptive import AdaptiveLowRankReducer, AdaptiveReport
from repro.core.expansion import shifted_parametric_system
from repro.core.io import load_model, save_model
from repro.core.lowrank import LowRankReducer, sensitivity_rank_factors
from repro.core.model import ParametricReducedModel
from repro.core.moments import (
    GeneralizedParameterization,
    moment_table,
    multi_indices_up_to,
    output_moments,
)
from repro.core.multipoint import MultiPointReducer, factorial_grid
from repro.core.nominal import NominalReducer
from repro.core.singlepoint import SinglePointReducer

__all__ = [
    "AdaptiveLowRankReducer",
    "AdaptiveReport",
    "GeneralizedParameterization",
    "LowRankReducer",
    "MultiPointReducer",
    "NominalReducer",
    "ParametricReducedModel",
    "SinglePointReducer",
    "factorial_grid",
    "factorization_counts",
    "load_model",
    "low_rank_size",
    "moment_table",
    "multi_indices_up_to",
    "multi_point_grid_samples",
    "multi_point_size",
    "output_moments",
    "save_model",
    "sensitivity_rank_factors",
    "shifted_parametric_system",
    "single_point_size",
    "single_point_size_first_order_example",
]
