"""Nominal-projection baseline (the strawman of paper Figs. 3-4).

The cheapest conceivable "variational" model: run PRIMA once on the
*nominal* system, then reduce the full parametric family (including
all sensitivity matrices) with that single nominal projection matrix.
The paper's Figs. 3 and 4 show this "Redu. Pert. Model: Nomi. Proj."
curve failing to track the perturbed system -- the motivation for
incorporating variational information into the projection.
"""

from __future__ import annotations

from repro.baselines.prima import prima_projection
from repro.circuits.variational import ParametricSystem
from repro.core.model import ParametricReducedModel
from repro.linalg.orth import DEFAULT_DEFLATION_TOL


class NominalReducer:
    """Reduce a parametric system with the nominal PRIMA projection.

    Parameters
    ----------
    num_moments:
        Number of block moments of ``s`` matched at the nominal point
        (the paper's Fig. 3 uses 8).
    expansion_point:
        Real PRIMA expansion point ``s0``.
    tol:
        Deflation tolerance.
    """

    def __init__(
        self,
        num_moments: int,
        expansion_point: float = 0.0,
        tol: float = DEFAULT_DEFLATION_TOL,
    ):
        if num_moments < 1:
            raise ValueError("num_moments must be >= 1")
        self.num_moments = num_moments
        self.expansion_point = expansion_point
        self.tol = tol

    def projection(self, parametric: ParametricSystem):
        """The nominal PRIMA basis (no variational information)."""
        return prima_projection(
            parametric.nominal,
            self.num_moments,
            expansion_point=self.expansion_point,
            tol=self.tol,
        )

    def reduce(self, parametric: ParametricSystem) -> ParametricReducedModel:
        """Build the parametric reduced model."""
        return parametric.reduce(self.projection(parametric))
