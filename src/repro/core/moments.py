"""Multi-parameter transfer-function moments (paper Section 3.1).

The parametric transfer function (paper eq. (6)) is

``X(s, p) = (I + s A_s + sum_i p_i A_gi + sum_i s p_i A_ci)^{-1} R``

with ``A_s = G0^{-1} C0``, ``A_gi = G0^{-1} G_i``, ``A_ci = G0^{-1} C_i``
and ``R = G0^{-1} B``.  Treating ``sigma = (s, p_1, ..., s p_1, ...)``
as ``mu = 2 n_p + 1`` formal "generalized parameters" (the device of
Daniel et al. [10]), the power-series coefficients -- the
*multi-parameter moments* of eq. (7) -- obey the exact recurrence

``M_0 = R``,
``M_alpha = - sum_{i : alpha_i > 0} A_i M_{alpha - e_i}``

over multi-indices ``alpha``.  (Derivation: multiply through by the
pencil and match coefficients of ``sigma^alpha``; because the ``A_i``
do not commute each ``M_alpha`` is a signed sum over interleavings,
which is exactly what the recurrence accumulates.)

This module provides:

- :class:`GeneralizedParameterization` -- builds the operator family
  from a :class:`~repro.circuits.variational.ParametricSystem` (sparse,
  reusing one LU of ``G0``) or from a reduced model (dense);
- :func:`moment_table` -- all moment blocks up to a total order, via
  the recurrence (used by tests and the single-point reducer's oracle);
- :func:`output_moments` -- the corresponding transfer-function moments
  ``L^T M_alpha``, the quantities the paper's Theorem 1 is about.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from repro.linalg.sparselu import SparseLU

MultiIndex = Tuple[int, ...]


def multi_indices_up_to(num_variables: int, max_order: int) -> List[MultiIndex]:
    """All multi-indices ``alpha`` with ``|alpha| <= max_order``, graded order."""
    if num_variables < 1:
        raise ValueError("need at least one variable")
    if max_order < 0:
        raise ValueError("max_order must be >= 0")
    result: List[MultiIndex] = []
    for total in range(max_order + 1):
        # Compositions of `total` into `num_variables` nonnegative parts.
        for cuts in itertools.combinations(
            range(total + num_variables - 1), num_variables - 1
        ):
            parts = []
            previous = -1
            for cut in cuts:
                parts.append(cut - previous - 1)
                previous = cut
            parts.append(total + num_variables - 2 - previous)
            result.append(tuple(parts))
    return result


class GeneralizedParameterization:
    """The operator family ``(R, [A_1..A_mu])`` of paper eq. (6)/(7).

    Variable ordering: index 0 is the frequency variable ``s`` (operator
    ``A_s = G0^{-1} C0``); indices ``1..n_p`` are the parameters ``p_i``
    (operators ``G0^{-1} G_i``); indices ``n_p+1..2n_p`` are the cross
    variables ``s p_i`` (operators ``G0^{-1} C_i``).  The cross
    variables are *formally independent* -- treating them so matches
    strictly more moments than required (Daniel et al. [10] do the
    same).
    """

    def __init__(self, parametric, lu: SparseLU = None):
        nominal = parametric.nominal
        if lu is None:
            lu = SparseLU(nominal.G)
        self._lu = lu
        b_dense = (
            nominal.B.toarray() if hasattr(nominal.B, "toarray") else np.asarray(nominal.B)
        )
        l_dense = (
            nominal.L.toarray() if hasattr(nominal.L, "toarray") else np.asarray(nominal.L)
        )
        self.start_block = lu.solve(b_dense)
        self.output_map = l_dense
        self._matrices = [nominal.C] + list(parametric.dG) + list(parametric.dC)
        self.num_parameters = len(parametric.dG)
        self.variable_names = (
            ["s"]
            + [f"p{i + 1}" for i in range(self.num_parameters)]
            + [f"s*p{i + 1}" for i in range(self.num_parameters)]
        )

    @property
    def num_variables(self) -> int:
        """``mu = 2 n_p + 1`` generalized parameters."""
        return len(self._matrices)

    def apply(self, variable: int, block: np.ndarray) -> np.ndarray:
        """``A_variable @ block`` (one sparse multiply + one LU solve)."""
        return self._lu.solve(np.asarray(self._matrices[variable] @ block))


def moment_table(
    parameterization: GeneralizedParameterization, max_order: int
) -> Dict[MultiIndex, np.ndarray]:
    """All moment blocks ``M_alpha`` with ``|alpha| <= max_order``.

    Exponential in the number of variables -- intended for validation
    on small systems and for the single-point reducer's exact-moment
    mode, not for production reduction (that is the whole point of the
    paper).
    """
    mu = parameterization.num_variables
    table: Dict[MultiIndex, np.ndarray] = {}
    zero = (0,) * mu
    table[zero] = parameterization.start_block
    for alpha in multi_indices_up_to(mu, max_order):
        if alpha == zero:
            continue
        accumulator = None
        for i in range(mu):
            if alpha[i] == 0:
                continue
            parent = list(alpha)
            parent[i] -= 1
            term = parameterization.apply(i, table[tuple(parent)])
            accumulator = term if accumulator is None else accumulator + term
        table[alpha] = -accumulator
    return table


def output_moments(
    parameterization: GeneralizedParameterization, max_order: int
) -> Dict[MultiIndex, np.ndarray]:
    """Transfer-function moments ``L^T M_alpha`` up to ``max_order``.

    These are the quantities preserved by the reducers (paper
    Theorem 1); the tests compare them between full and reduced
    parametric models.
    """
    table = moment_table(parameterization, max_order)
    output = parameterization.output_map
    return {alpha: output.T @ block for alpha, block in table.items()}
