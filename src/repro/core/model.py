"""Reduced parametric macromodels.

A :class:`ParametricReducedModel` is the object every reducer in
:mod:`repro.core` produces: the congruence-reduced matrices

``G~(p) = G~0 + sum_i p_i G~_i,   C~(p) = C~0 + sum_i p_i C~_i``

(paper Algorithm 1, step 4) together with the projection matrix that
produced them.  It mirrors the evaluation API of the full
:class:`~repro.circuits.variational.ParametricSystem` -- instantiate at
a parameter point, evaluate ``H(s, p)``, compute poles -- so full and
reduced models are interchangeable in the analysis and benchmark code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.statespace import DescriptorSystem


class ParametricReducedModel:
    """Dense parametric reduced-order model (congruence-transformed).

    Parameters
    ----------
    nominal:
        The reduced nominal system ``{G~0, C~0, B~, L~}``.
    dG, dC:
        Reduced sensitivity matrices ``G~_i = V^T G_i V`` etc.
    parameter_names:
        Labels copied from the full parametric system.
    projection:
        The ``n x q`` projection matrix ``V`` (kept for diagnostics,
        state reconstruction ``x ~= V z``, and the tests of the
        paper's Theorem 1).
    """

    def __init__(
        self,
        nominal: DescriptorSystem,
        dG: Sequence[np.ndarray],
        dC: Sequence[np.ndarray],
        parameter_names: Optional[List[str]] = None,
        projection: Optional[np.ndarray] = None,
    ):
        if len(dG) != len(dC):
            raise ValueError("need matching dG/dC lists")
        q = nominal.order
        for i, (gi, ci) in enumerate(zip(dG, dC)):
            if gi.shape != (q, q) or ci.shape != (q, q):
                raise ValueError(f"reduced sensitivity {i} has wrong shape")
        self.nominal = nominal
        self.dG = [np.asarray(gi) for gi in dG]
        self.dC = [np.asarray(ci) for ci in dC]
        if parameter_names is None:
            parameter_names = [f"p{i + 1}" for i in range(len(dG))]
        self.parameter_names = list(parameter_names)
        self.projection = None if projection is None else np.asarray(projection)
        # Densify the nominal matrices exactly once: instantiate() runs
        # inside Monte Carlo / sweep loops, where a per-call toarray()
        # dominated the reduced-model evaluation cost.
        self._dense_g0 = np.asarray(
            nominal.G.toarray() if hasattr(nominal.G, "toarray") else nominal.G,
            dtype=float,
        )
        self._dense_c0 = np.asarray(
            nominal.C.toarray() if hasattr(nominal.C, "toarray") else nominal.C,
            dtype=float,
        )
        self._dG_stack: Optional[np.ndarray] = None
        self._dC_stack: Optional[np.ndarray] = None

    # -- basic properties ---------------------------------------------

    @property
    def size(self) -> int:
        """Reduced model size (number of states) -- the paper's metric."""
        return self.nominal.order

    @property
    def num_parameters(self) -> int:
        """Number of variational parameters."""
        return len(self.dG)

    def _check_point(self, p: Sequence[float]) -> np.ndarray:
        point = np.atleast_1d(np.asarray(p, dtype=float))
        if point.shape != (self.num_parameters,):
            raise ValueError(
                f"parameter point has shape {point.shape}, expected ({self.num_parameters},)"
            )
        return point

    def dense_nominal(self) -> Tuple[np.ndarray, np.ndarray]:
        """The cached dense nominal pair ``(G~0, C~0)``.

        Shared with the batch kernels in :mod:`repro.runtime.batch`;
        callers must treat the returned arrays as read-only.
        """
        return self._dense_g0, self._dense_c0

    def sensitivity_stacks(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sensitivities stacked as ``(n_p, q, q)`` arrays (cached).

        The stacked layout is what the einsum-based batch kernels
        contract against; it is built lazily on first use.  Callers
        must treat the returned arrays as read-only.
        """
        if self._dG_stack is None:
            q = self.nominal.order
            if self.num_parameters:
                self._dG_stack = np.stack([np.asarray(gi, dtype=float) for gi in self.dG])
                self._dC_stack = np.stack([np.asarray(ci, dtype=float) for ci in self.dC])
            else:
                self._dG_stack = np.zeros((0, q, q))
                self._dC_stack = np.zeros((0, q, q))
        return self._dG_stack, self._dC_stack

    # -- evaluation -----------------------------------------------------

    def instantiate(self, p: Sequence[float]) -> DescriptorSystem:
        """Reduced system at parameter point ``p``."""
        point = self._check_point(p)
        g = self._dense_g0.copy()
        c = self._dense_c0.copy()
        for value, gi, ci in zip(point, self.dG, self.dC):
            if value != 0.0:
                g += value * gi
                c += value * ci
        return DescriptorSystem(
            g,
            c,
            self.nominal.B,
            self.nominal.L,
            input_names=list(self.nominal.input_names),
            output_names=list(self.nominal.output_names),
            title=f"{self.nominal.title}@p",
        )

    def transfer(self, s: complex, p: Sequence[float]) -> np.ndarray:
        """Reduced parametric transfer function ``H~(s, p)``."""
        return self.instantiate(p).transfer(s)

    def frequency_response(self, frequencies: Sequence[float], p: Sequence[float]) -> np.ndarray:
        """``H~(j 2 pi f, p)`` over frequencies in hertz."""
        return self.instantiate(p).frequency_response(frequencies)

    def poles(self, p: Sequence[float], num: Optional[int] = None) -> np.ndarray:
        """Dominant poles of the reduced model at ``p``."""
        return self.instantiate(p).poles(num=num)

    def reconstruct_state(self, z: np.ndarray) -> np.ndarray:
        """Lift a reduced state ``z`` back to full coordinates ``x ~= V z``."""
        if self.projection is None:
            raise ValueError("model was built without storing its projection")
        return self.projection @ z

    def passivity_structure_margin(self, p: Sequence[float]) -> float:
        """Symmetric-part eigenvalue margin of the instantiated model."""
        return self.instantiate(p).passivity_structure_margin()

    def __repr__(self) -> str:
        return (
            f"ParametricReducedModel(size={self.size}, np={self.num_parameters}, "
            f"params={self.parameter_names})"
        )
