"""Adaptive order/rank selection for Algorithm 1 (extension).

The paper leaves two knobs to the user: the moment order ``k`` and the
SVD rank ``k_svd`` ("we have observed that a rank-one approximation is
usually sufficient").  This module automates both:

- **Rank** is chosen per sensitivity from the singular-value decay of
  the generalized sensitivity matrix: the smallest rank capturing an
  ``energy`` fraction of the (probed) spectral mass, capped by
  ``max_rank``.  This formalizes the paper's rank-1 observation --
  when the leading singular value dominates, rank 1 is selected
  automatically.
- **Order** ``k`` grows until an inexpensive a-posteriori error
  estimate falls below ``target_error`` or ``max_order`` is hit.  The
  estimate compares the order-``k`` and order-``k+1`` reduced responses
  at a handful of probe frequencies and parameter corners -- the
  classic "compare against the next-richer model" heuristic; it never
  touches the full model after the initial factorization-sized setup.

The result carries an :class:`AdaptiveReport` documenting every
decision so that model choices are auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.variational import ParametricSystem
from repro.core.lowrank import LowRankReducer
from repro.core.model import ParametricReducedModel
from repro.linalg.operators import ImplicitProduct
from repro.linalg.sparselu import SparseLU
from repro.linalg.subspace_svd import truncated_svd


@dataclass
class AdaptiveReport:
    """Record of the adaptive reducer's decisions."""

    chosen_ranks: List[int] = field(default_factory=list)
    singular_values: List[np.ndarray] = field(default_factory=list)
    order_history: List[int] = field(default_factory=list)
    error_estimates: List[float] = field(default_factory=list)
    final_order: int = 0
    final_size: int = 0
    converged: bool = False

    def summary(self) -> str:
        """One-paragraph human-readable account."""
        ranks = ", ".join(str(r) for r in self.chosen_ranks)
        steps = ", ".join(
            f"k={k}: est {e:.2e}"
            for k, e in zip(self.order_history, self.error_estimates)
        )
        status = "converged" if self.converged else "hit max_order"
        return (
            f"ranks per sensitivity: [{ranks}]; order sweep: {steps}; "
            f"{status} at k={self.final_order}, size={self.final_size}"
        )


class AdaptiveLowRankReducer:
    """Algorithm 1 with automatic rank and order selection.

    Parameters
    ----------
    target_error:
        Stop growing ``k`` once the estimated relative response error
        falls below this.
    max_order, min_order:
        Bounds on the moment order sweep.
    max_rank:
        Cap on the per-sensitivity SVD rank.
    energy:
        Spectral-mass fraction the truncated SVD must capture (on the
        probed leading ``max_rank + 2`` singular values).
    probe_frequencies:
        Frequencies (Hz) at which the error estimate is evaluated;
        default: 8 log-spaced points over 10 MHz - 50 GHz.
    probe_corners:
        Parameter points for the estimate; default: nominal plus the
        ``+/-0.3`` diagonal corners.
    svd_method:
        Truncated-SVD driver (see :class:`~repro.core.lowrank.LowRankReducer`).
    """

    def __init__(
        self,
        target_error: float = 1e-3,
        max_order: int = 10,
        min_order: int = 2,
        max_rank: int = 4,
        energy: float = 0.95,
        probe_frequencies: Optional[Sequence[float]] = None,
        probe_corners: Optional[Sequence[Sequence[float]]] = None,
        svd_method: str = "lanczos",
    ):
        if not 0 < energy <= 1:
            raise ValueError("energy must be in (0, 1]")
        if target_error <= 0:
            raise ValueError("target_error must be positive")
        if min_order < 1 or max_order < min_order:
            raise ValueError("need 1 <= min_order <= max_order")
        if max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        self.target_error = target_error
        self.max_order = max_order
        self.min_order = min_order
        self.max_rank = max_rank
        self.energy = energy
        self.probe_frequencies = (
            np.logspace(7, np.log10(5e10), 8)
            if probe_frequencies is None
            else np.asarray(probe_frequencies, dtype=float)
        )
        self.probe_corners = probe_corners
        self.svd_method = svd_method

    # -- rank selection --------------------------------------------------

    def select_ranks(
        self, parametric: ParametricSystem, lu: Optional[SparseLU] = None
    ):
        """Per-sensitivity ranks from generalized-sensitivity SVD decay.

        Returns ``(ranks, singular_value_arrays)`` with one entry per
        sensitivity pair (the max over the G- and C-channels, since one
        rank parameterizes both in :class:`LowRankReducer`).
        """
        if lu is None:
            lu = SparseLU(parametric.nominal.G)
        probe = self.max_rank + 2
        ranks: List[int] = []
        spectra: List[np.ndarray] = []
        for gi, ci in zip(parametric.dG, parametric.dC):
            pair_rank = 1
            pair_sigma = []
            for matrix in (gi, ci):
                operator = ImplicitProduct(lu, matrix, sign=-1.0)
                _, sigma, _ = truncated_svd(operator, probe, method=self.svd_method)
                pair_sigma.append(sigma)
                if sigma.size == 0:
                    continue
                mass = np.cumsum(sigma ** 2) / np.sum(sigma ** 2)
                needed = int(np.searchsorted(mass, self.energy) + 1)
                pair_rank = max(pair_rank, min(needed, self.max_rank))
            ranks.append(pair_rank)
            spectra.append(
                pair_sigma[0] if len(pair_sigma[0]) >= len(pair_sigma[1]) else pair_sigma[1]
            )
        return ranks, spectra

    # -- order selection --------------------------------------------------

    def _probe_points(self, parametric: ParametricSystem) -> np.ndarray:
        if self.probe_corners is not None:
            points = np.atleast_2d(np.asarray(self.probe_corners, dtype=float))
            if points.shape[1] != parametric.num_parameters:
                raise ValueError("probe corners have the wrong parameter count")
            return points
        np_count = parametric.num_parameters
        return np.vstack(
            [np.zeros(np_count), 0.3 * np.ones(np_count), -0.3 * np.ones(np_count)]
        )

    def _probe_response(self, model: ParametricReducedModel, points) -> np.ndarray:
        responses = []
        for point in points:
            responses.append(
                model.frequency_response(self.probe_frequencies, point).ravel()
            )
        return np.concatenate(responses)

    def reduce(self, parametric: ParametricSystem):
        """Build the model; returns ``(model, report)``.

        The order sweep reuses one LU factorization across all candidate
        orders, so the adaptive loop costs triangular solves only.
        """
        lu = SparseLU(parametric.nominal.G)
        ranks, spectra = self.select_ranks(parametric, lu=lu)
        rank = max(ranks)
        report = AdaptiveReport(chosen_ranks=ranks, singular_values=spectra)

        points = self._probe_points(parametric)
        previous_model: Optional[ParametricReducedModel] = None
        previous_response: Optional[np.ndarray] = None
        chosen: Optional[ParametricReducedModel] = None
        for order in range(self.min_order, self.max_order + 1):
            reducer = LowRankReducer(
                num_moments=order, rank=rank, svd_method=self.svd_method
            )
            projection = reducer.projection(parametric, lu=lu)
            model = parametric.reduce(projection)
            response = self._probe_response(model, points)
            if previous_response is not None:
                scale = max(np.abs(response).max(), 1e-300)
                estimate = np.abs(response - previous_response).max() / scale
                report.order_history.append(order - 1)
                report.error_estimates.append(float(estimate))
                if estimate <= self.target_error:
                    report.converged = True
                    chosen = previous_model
                    report.final_order = order - 1
                    break
            previous_model = model
            previous_response = response
        if chosen is None:
            chosen = previous_model
            report.final_order = self.max_order
        report.final_size = chosen.size
        return chosen, report
