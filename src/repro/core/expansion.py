"""Shifted expansion points for the parametric reducers (extension).

The paper expands all transfer functions about ``s = 0``.  For
wide-band targets (or systems with singular ``G0``) a real shifted
expansion point ``s0 > 0`` is the standard remedy, and the paper's
framework admits it with a purely notational substitution: writing
``sigma = s - s0``,

``G(p) + s C(p) = K0 + sum_i p_i K_i + sigma (C0 + sum_i p_i C_i)``

with

``K0 = G0 + s0 C0``  (the shifted base matrix, factored once) and
``K_i = G_i + s0 C_i``  (the shifted parameter sensitivities),

which has *exactly* the form of paper eq. (5) in the variables
``(sigma, p)``.  Every algorithm in :mod:`repro.core` therefore applies
verbatim to the shifted system: Algorithm 1's generalized sensitivities
become ``-K0^{-1} K_i`` and ``-K0^{-1} C_i``, the frequency operator
``A0 = -K0^{-1} C0``, and the resulting reduced model matches
multi-parameter moments of ``H(s0 + sigma, p)`` about ``sigma = 0``.

:func:`shifted_parametric_system` performs the substitution; reducers
accept an ``expansion_point`` argument and use it internally.  The
congruence transforms still act on the *original* (unshifted) matrices,
so passivity preservation is untouched.
"""

from __future__ import annotations

from repro.circuits.statespace import DescriptorSystem
from repro.circuits.variational import ParametricSystem


def shifted_parametric_system(
    parametric: ParametricSystem, expansion_point: float
) -> ParametricSystem:
    """The equivalent parametric system in the shifted variable ``s - s0``.

    Returns a new :class:`~repro.circuits.variational.ParametricSystem`
    with base matrix ``K0 = G0 + s0 C0`` and parameter sensitivities
    ``K_i = G_i + s0 C_i``; the capacitance family is unchanged.  For
    ``s0 = 0`` the input object is returned unchanged.

    ``s0`` must be real so that all Krylov computations stay in real
    arithmetic (complex expansion points would double memory and break
    the congruence-passivity argument).
    """
    s0 = float(expansion_point)
    if s0 == 0.0:
        return parametric
    nominal = parametric.nominal
    shifted_base = nominal.G + s0 * nominal.C
    shifted_nominal = DescriptorSystem(
        shifted_base,
        nominal.C,
        nominal.B,
        nominal.L,
        input_names=list(nominal.input_names),
        output_names=list(nominal.output_names),
        state_names=list(nominal.state_names),
        title=f"{nominal.title}[s0={s0:g}]",
    )
    shifted_dg = [gi + s0 * ci for gi, ci in zip(parametric.dG, parametric.dC)]
    return ParametricSystem(
        shifted_nominal,
        shifted_dg,
        list(parametric.dC),
        parameter_names=list(parametric.parameter_names),
    )
