"""Macromodel persistence (save/load).

A parametric macromodel is the *product* of the reduction flow -- the
artifact handed from the extraction/reduction team to the
timing/signal-integrity users.  This module serializes a
:class:`~repro.core.model.ParametricReducedModel` to a single
compressed ``.npz`` archive (dense matrices, names, metadata) and loads
it back, bit-exactly, with format versioning for forward compatibility.

The format is deliberately plain NumPy: no pickling (loadable with
``allow_pickle=False``, so archives are safe to exchange), and every
array is stored under a stable key.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.circuits.statespace import DescriptorSystem
from repro.core.model import ParametricReducedModel

FORMAT_VERSION = 1


def save_model(model: ParametricReducedModel, path) -> None:
    """Write a parametric macromodel to ``path`` (``.npz``).

    Stores the reduced nominal quadruple, all sensitivity matrices, the
    projection (if kept), names, and a JSON metadata record with the
    format version.
    """
    nominal = model.nominal
    payload = {
        "G0": np.asarray(nominal.G, dtype=float),
        "C0": np.asarray(nominal.C, dtype=float),
        "B": np.asarray(
            nominal.B.toarray() if hasattr(nominal.B, "toarray") else nominal.B,
            dtype=float,
        ),
        "L": np.asarray(
            nominal.L.toarray() if hasattr(nominal.L, "toarray") else nominal.L,
            dtype=float,
        ),
    }
    for i, (gi, ci) in enumerate(zip(model.dG, model.dC)):
        payload[f"dG{i}"] = np.asarray(gi, dtype=float)
        payload[f"dC{i}"] = np.asarray(ci, dtype=float)
    if model.projection is not None:
        payload["projection"] = np.asarray(model.projection, dtype=float)
    metadata = {
        "format_version": FORMAT_VERSION,
        "num_parameters": model.num_parameters,
        "parameter_names": model.parameter_names,
        "input_names": list(nominal.input_names),
        "output_names": list(nominal.output_names),
        "title": nominal.title,
    }
    payload["metadata_json"] = np.array(json.dumps(metadata))
    np.savez_compressed(path, **payload)


def load_model(path) -> ParametricReducedModel:
    """Load a macromodel previously written by :func:`save_model`.

    Raises
    ------
    ValueError
        If the archive is missing required keys or carries an
        unsupported format version.
    """
    with np.load(path, allow_pickle=False) as archive:
        if "metadata_json" not in archive:
            raise ValueError(f"{path}: not a repro macromodel archive")
        metadata = json.loads(str(archive["metadata_json"]))
        version = metadata.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        required = {"G0", "C0", "B", "L"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path}: archive missing arrays {sorted(missing)}")
        nominal = DescriptorSystem(
            archive["G0"],
            archive["C0"],
            archive["B"],
            archive["L"],
            input_names=metadata["input_names"],
            output_names=metadata["output_names"],
            title=metadata["title"],
        )
        num_parameters = int(metadata["num_parameters"])
        dg = [archive[f"dG{i}"] for i in range(num_parameters)]
        dc = [archive[f"dC{i}"] for i in range(num_parameters)]
        projection = archive["projection"] if "projection" in archive.files else None
    return ParametricReducedModel(
        nominal,
        dg,
        dc,
        parameter_names=metadata["parameter_names"],
        projection=projection,
    )


def roundtrip_equal(
    a: ParametricReducedModel, b: ParametricReducedModel, tol: float = 0.0
) -> bool:
    """True if two models have identical matrices/names (testing aid)."""

    def close(x, y) -> bool:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            return False
        return bool(np.abs(x - y).max() <= tol) if x.size else True

    if a.parameter_names != b.parameter_names:
        return False
    if not close(a.nominal.G, b.nominal.G) or not close(a.nominal.C, b.nominal.C):
        return False
    if not close(
        a.nominal.B.toarray() if hasattr(a.nominal.B, "toarray") else a.nominal.B,
        b.nominal.B.toarray() if hasattr(b.nominal.B, "toarray") else b.nominal.B,
    ):
        return False
    for ga, gb in zip(a.dG, b.dG):
        if not close(ga, gb):
            return False
    for ca, cb in zip(a.dC, b.dC):
        if not close(ca, cb):
            return False
    return True
