"""Model-size and cost predictions (paper Sections 3.2, 3.3, 4.2).

The paper's quantitative comparison of the three parametric approaches
is in terms of (a) reduced model size before deflation and (b) the
number of sparse matrix factorizations.  This module encodes those
closed forms; the model-size benchmark prints them next to the
*measured* sizes (after deflation) for the shared workloads.

Formulas (``k`` = moment order in ``s``/total order, ``m`` = ports,
``n_p`` = parameters, ``k_svd`` = SVD rank, ``c`` = samples per axis):

- single-point, general: one block moment per multi-index of
  ``mu = 2 n_p + 1`` generalized parameters with total order ``<= k``:
  ``m * C(k + mu, mu)``.
- single-point, the Section 3.3 example (one parameter to first
  order, ``s`` to order ``k`` including cross terms):
  ``(k^2 + k + 1) m``.
- multi-point: ``k + 1`` s-moments at each of ``n_s`` samples:
  ``n_s (k+1) m``;  a factorial grid has ``n_s = c^{n_p}``
  (and the same count of factorizations).
- low-rank (Algorithm 1): ``(k+1) m`` nominal columns plus per
  parameter ``k_svd`` columns in each of the four Krylov subspaces
  with block counts ``(k+1) + k + k + (k-1) = 4k + 2``:
  ``(k+1) m + (4k + 2) k_svd n_p``  --  the paper's
  ``O((4 k_svd n_p + m) k)``; the simplified variant replaces the two
  dual subspaces by single ``V_hat`` blocks:
  ``(k+1) m + (2k + 3) k_svd n_p``  --  ``O((2 k_svd n_p + m) k)``.
"""

from __future__ import annotations

from math import comb


def single_point_size(order: int, num_parameters: int, num_ports: int) -> int:
    """Upper-bound model size of the single-point method (general form)."""
    _validate(order, num_parameters, num_ports)
    mu = 2 * num_parameters + 1
    return num_ports * comb(order + mu, mu)


def single_point_size_first_order_example(order: int, num_ports: int) -> int:
    """The Section 3.3 example: ``(k^2 + k + 1) m``.

    One variational parameter matched to first order, ``s`` to order
    ``k``, including all cross terms ``s^t p s^q``.
    """
    if order < 0:
        raise ValueError("order must be >= 0")
    if num_ports < 1:
        raise ValueError("num_ports must be >= 1")
    return (order ** 2 + order + 1) * num_ports


def multi_point_size(order: int, num_samples: int, num_ports: int) -> int:
    """Model size of the multi-point method: ``n_s (k+1) m``."""
    if order < 0:
        raise ValueError("order must be >= 0")
    if num_samples < 1 or num_ports < 1:
        raise ValueError("num_samples and num_ports must be >= 1")
    return num_samples * (order + 1) * num_ports


def multi_point_grid_samples(samples_per_axis: int, num_parameters: int) -> int:
    """Factorial-grid sample count ``c^{n_p}`` (= factorizations)."""
    if samples_per_axis < 1 or num_parameters < 1:
        raise ValueError("arguments must be >= 1")
    return samples_per_axis ** num_parameters


def low_rank_size(
    order: int,
    num_parameters: int,
    num_ports: int,
    rank: int = 1,
    simplified: bool = False,
) -> int:
    """Upper-bound model size of Algorithm 1 (before deflation).

    ``simplified=True`` is the variant without the ``A0^T`` subspaces
    (paper: "can reduce the model size approximately by a factor of
    two").
    """
    _validate(order, num_parameters, num_ports)
    if rank < 1:
        raise ValueError("rank must be >= 1")
    nominal = (order + 1) * num_ports
    if simplified:
        per_parameter = (order + 1) + max(order, 0) + 2  # primal G + primal C + 2 V_hat
    else:
        per_parameter = (order + 1) + order + order + max(order - 1, 0)
    return nominal + per_parameter * rank * num_parameters


def factorization_counts(num_samples_multi_point: int) -> dict:
    """Factorizations needed by each method (the Section 4.2 cost claim)."""
    if num_samples_multi_point < 1:
        raise ValueError("num_samples_multi_point must be >= 1")
    return {
        "nominal": 1,
        "single_point": 1,
        "low_rank": 1,
        "multi_point": num_samples_multi_point,
    }


def _validate(order: int, num_parameters: int, num_ports: int) -> None:
    if order < 0:
        raise ValueError("order must be >= 0")
    if num_parameters < 0:
        raise ValueError("num_parameters must be >= 0")
    if num_ports < 1:
        raise ValueError("num_ports must be >= 1")
