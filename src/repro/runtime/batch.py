"""Batched evaluation kernels for parametric macromodels.

The reason a reduced model exists at all is amortized reuse: one
reduction, thousands of evaluations (Monte Carlo instances, corner
sweeps, grid studies).  Evaluating those instances one at a time from
Python wastes that amortization on interpreter and dispatch overhead --
every sample re-enters :meth:`ParametricReducedModel.instantiate`,
rebuilds a :class:`DescriptorSystem`, and performs a lone ``q x q``
solve or eigendecomposition.

This module evaluates a whole ``(m, n_p)`` sample matrix at once:

- :func:`batch_instantiate` -- stacked ``G(p_k) = G~0 + sum_i p_ki G~_i``
  over all samples, either bit-identical to the scalar path (``exact``)
  or as a single einsum contraction;
- :func:`batch_transfer` / :func:`batch_frequency_response` -- stacked
  complex solves ``H(s, p_k)`` via LAPACK's batched ``gesv`` dispatch;
- :func:`batch_poles` -- stacked eigenvalue extraction with the same
  dominance ordering as :meth:`DescriptorSystem.poles`;
- :func:`batch_transfer_sensitivities` -- stacked exact ``dH/dp_i``.

``exact=True`` (the default) reproduces the per-sample accumulation
``g += p_i * G_i`` (skipping zero coefficients) bit-for-bit, which is
what lets :func:`repro.analysis.montecarlo.monte_carlo_pole_study`
adopt these kernels without perturbing any published result.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.circuits.statespace import DescriptorSystem
from repro.obs import metrics as obs_metrics


def supports_batching(model) -> bool:
    """True when ``model`` exposes the dense parametric form the kernels need.

    Requires a ``nominal`` descriptor system plus ``dG``/``dC``
    sensitivity lists (i.e. a
    :class:`~repro.core.model.ParametricReducedModel` or any object
    with the same shape contract) with dense, stackable matrices.
    """
    if not all(hasattr(model, name) for name in ("nominal", "dG", "dC", "num_parameters")):
        return False
    matrices = [model.nominal.G, model.nominal.C, *model.dG, *model.dC]
    return not any(hasattr(matrix, "tocsc") for matrix in matrices)


def as_sample_matrix(model, samples) -> np.ndarray:
    """Validate ``samples`` into an ``(m, n_p)`` float matrix for ``model``."""
    matrix = np.atleast_2d(np.asarray(samples, dtype=float))
    if matrix.ndim != 2 or matrix.shape[1] != model.num_parameters:
        raise ValueError(
            f"sample matrix has shape {np.asarray(samples).shape}, expected "
            f"(m, {model.num_parameters})"
        )
    return matrix


# Historical module global, now a live view over the process-wide
# metrics registry (``repro.obs``): same read/reset API, one shared
# counter object.
_DENSIFICATIONS = obs_metrics.counter("runtime.batch.densifications")


def densification_count() -> int:
    """How many times the kernels densified a model's matrices.

    Diagnostic counter (the ``runtime.batch.densifications`` counter of
    the :mod:`repro.obs` metrics registry) behind the memoization of
    :func:`_dense_nominal` / :func:`_sensitivity_stacks`: a model
    evaluated through any number of batched calls should contribute at
    most two densification passes (one for the nominal pair, one for
    the sensitivity stacks).
    """
    return _DENSIFICATIONS.value


def reset_densification_count() -> int:
    """Reset the densification counter and return the old value."""
    return _DENSIFICATIONS.reset()


def _memo_cache(model) -> Optional[dict]:
    """The kernels' per-model memo dict, created on first use.

    Models that implement the ``dense_nominal`` / ``sensitivity_stacks``
    protocol (e.g. :class:`~repro.core.model.ParametricReducedModel`)
    carry their own cache and never reach this; for everything else the
    stacks are memoized on the model object, mirroring the PR-1
    nominal-matrix cache.  Returns ``None`` for objects that reject new
    attributes (``__slots__``), which then densify per call.
    """
    cache = getattr(model, "_batch_dense_cache", None)
    if cache is None:
        cache = {}
        try:
            model._batch_dense_cache = cache
        except AttributeError:
            return None
    return cache


def _dense_nominal(model) -> Tuple[np.ndarray, np.ndarray]:
    if hasattr(model, "dense_nominal"):
        return model.dense_nominal()
    cache = _memo_cache(model)
    if cache is not None and "nominal" in cache:
        return cache["nominal"]
    g0 = model.nominal.G
    c0 = model.nominal.C
    g0 = np.asarray(g0.toarray() if hasattr(g0, "toarray") else g0, dtype=float)
    c0 = np.asarray(c0.toarray() if hasattr(c0, "toarray") else c0, dtype=float)
    _DENSIFICATIONS.inc()
    if cache is not None:
        cache["nominal"] = (g0, c0)
    return g0, c0


def _sensitivity_stacks(model) -> Tuple[np.ndarray, np.ndarray]:
    if hasattr(model, "sensitivity_stacks"):
        return model.sensitivity_stacks()
    cache = _memo_cache(model)
    if cache is not None and "stacks" in cache:
        return cache["stacks"]
    q = model.nominal.order
    if not model.num_parameters:
        stacks = np.zeros((0, q, q)), np.zeros((0, q, q))
    else:
        dg = np.stack([_dense(gi).astype(float, copy=False) for gi in model.dG])
        dc = np.stack([_dense(ci).astype(float, copy=False) for ci in model.dC])
        stacks = dg, dc
        _DENSIFICATIONS.inc()
    if cache is not None:
        cache["stacks"] = stacks
    return stacks


def _dense(matrix) -> np.ndarray:
    return np.asarray(matrix.toarray() if hasattr(matrix, "toarray") else matrix)


def batch_instantiate(
    model, samples, exact: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked system matrices ``(G, C)`` over a sample matrix.

    Parameters
    ----------
    model:
        A dense parametric model (reduced macromodel or compatible).
    samples:
        ``(m, n_p)`` parameter sample matrix (one row per instance).
    exact:
        With ``exact`` (default) the accumulation order and the
        skip-zero-coefficient rule of
        :meth:`~repro.core.model.ParametricReducedModel.instantiate`
        are reproduced so each slice is *bit-identical* to the scalar
        path.  With ``exact=False`` the whole update is one einsum
        contraction ``G = G0 + P . dG`` -- fastest, equal to the scalar
        path only to rounding (~1e-16 relative).

    Returns
    -------
    (G, C):
        Arrays of shape ``(m, q, q)``; slice ``k`` is the system at
        sample ``k``.
    """
    matrix = as_sample_matrix(model, samples)
    g0, c0 = _dense_nominal(model)
    num_samples = matrix.shape[0]
    if not exact:
        dg, dc = _sensitivity_stacks(model)
        g = g0[None] + np.einsum("kp,pij->kij", matrix, dg)
        c = c0[None] + np.einsum("kp,pij->kij", matrix, dc)
        return g, c
    g = np.broadcast_to(g0, (num_samples,) + g0.shape).copy()
    c = np.broadcast_to(c0, (num_samples,) + c0.shape).copy()
    dg, dc = _sensitivity_stacks(model)
    for i in range(model.num_parameters):
        weights = matrix[:, i]
        # Matches `if value != 0.0` in the scalar path: rows with a zero
        # coefficient are left untouched rather than having +0.0 added.
        nonzero = (weights != 0.0)[:, None, None]
        np.add(g, weights[:, None, None] * dg[i], out=g, where=nonzero)
        np.add(c, weights[:, None, None] * dc[i], out=c, where=nonzero)
    return g, c


def systems_from_stacks(model, g: np.ndarray, c: np.ndarray):
    """Iterate :class:`DescriptorSystem` views over stacked ``(G, C)``.

    Bridges the batched kernels back to per-instance consumers (pole
    residues, passivity checks) without re-instantiating from scratch.
    """
    for k in range(g.shape[0]):
        yield DescriptorSystem(
            g[k],
            c[k],
            model.nominal.B,
            model.nominal.L,
            input_names=list(model.nominal.input_names),
            output_names=list(model.nominal.output_names),
            title=f"{model.nominal.title}@batch[{k}]",
        )


def _transfer_from_stacks(model, g: np.ndarray, c: np.ndarray, s: complex) -> np.ndarray:
    s = complex(s)
    pencil = (g + s * c).astype(np.complex128)
    b = _dense(model.nominal.B).astype(np.complex128)
    l_mat = _dense(model.nominal.L)
    rhs = np.broadcast_to(b, (pencil.shape[0],) + b.shape)
    x = np.linalg.solve(pencil, rhs)
    return l_mat.T @ x


def batch_transfer(model, s: complex, samples) -> np.ndarray:
    """Stacked transfer matrices ``H(s, p_k)``.

    One batched LAPACK solve replaces ``m`` instantiate-plus-solve
    round trips.  Returns an array of shape ``(m, m_out, m_in)``.
    """
    g, c = batch_instantiate(model, samples)
    return _transfer_from_stacks(model, g, c, s)


def _pencil_time_scales(g: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Per-instance power-of-two ``alpha`` with ``|C|*alpha ~ |G|``.

    SI-unit circuit pencils have ``|C|/|G| ~ RC ~ 1e-13``, which puts
    ``G^{-1}C`` *below* single-precision LAPACK's safe-scaling
    threshold (``sqrt(smallest normal)/eps ~ 9e-13``) -- float32
    ``geev`` can silently mis-scale such matrices.  Substituting
    ``C' = alpha*C`` moves the pencil's dynamic range to O(1);
    eigenvalues of the scaled ``G^{-1}C'`` divided by ``alpha`` (and
    poles of the scaled pencil times ``alpha``) recover the original
    spectrum.  A power-of-two ``alpha`` makes both the scaling and the
    un-scaling bit-lossless, so only the float32 screening paths use
    it -- the float64 reference paths stay untouched.
    """
    g_norm = np.abs(g).max(axis=(1, 2))
    c_norm = np.abs(c).max(axis=(1, 2))
    with np.errstate(all="ignore"):
        exponent = np.round(np.log2(g_norm / c_norm))
    exponent = np.where(np.isfinite(exponent), exponent, 0.0)
    return np.exp2(exponent)


def _eig_response_factors(model, g: np.ndarray, c: np.ndarray):
    """Per-instance spectral factors for rational transfer evaluation.

    Diagonalizing ``A_k = G_k^{-1} C_k = V_k diag(lambda_k) V_k^{-1}``
    turns every later frequency point into an ``O(q)``-per-entry
    rational sum

    ``H(s, p_k) = (L^T V_k) diag(1/(1 + s lambda_k)) (V_k^{-1} G_k^{-1} B)``

    so the ``O(q^3)`` factorization cost is paid once per instance
    instead of once per (instance, frequency) pair.  Returns
    ``(eigenvalues, L^T V, V^{-1} G^{-1} B)``.

    Precision follows the stacks: float64 input runs the historical
    complex128 path bit-for-bit, float32 input stays in
    float32/complex64 throughout (the screening tier's fast pass).
    """
    complex_dtype = np.result_type(g.dtype, np.complex64)
    b = _dense(model.nominal.B).astype(complex_dtype)
    l_mat = _dense(model.nominal.L).astype(g.dtype, copy=False)
    a = np.linalg.solve(g, c)
    eigenvalues, v = np.linalg.eig(a)
    lt_v = l_mat.T @ v
    g_inv_b = np.linalg.solve(
        g.astype(complex_dtype), np.broadcast_to(b, (g.shape[0],) + b.shape)
    )
    w = np.linalg.solve(v, g_inv_b)
    return eigenvalues, lt_v, w


# _eig_responses dispatch: the grid contraction wins when few instances
# sweep a dense frequency axis (one big GEMM per instance); the batched
# per-frequency kernel wins for wide Monte Carlo ensembles, where each
# frequency already amortizes over all instances in one matmul.
_GRID_MAX_SAMPLES = 16
_GRID_MIN_FREQS = 32


def _eig_responses(eigenvalues, lt_v, w, freqs: np.ndarray) -> np.ndarray:
    """Rational-sum responses over the whole ``(m, n_freq, q)`` grid.

    Two equivalent vectorized contractions of

    ``H[k, j] = (L^T V_k) diag(1 / (1 + s_j lambda_k)) w_k``

    are dispatched by ensemble shape.  Small ensembles over dense
    frequency axes (corner plans, CLI sweeps) precompute the
    frequency-independent residue tensor ``(L^T V_k) odot w_k`` and
    collapse the whole grid into one ``(n_f, q) @ (q, m_out m_in)``
    GEMM per instance -- no per-frequency Python iteration.  Wide
    ensembles (Monte Carlo) keep the per-frequency batched matmul,
    which amortizes each frequency over all ``m`` instances at once and
    is bit-identical to the historical loop.  Both paths are pinned to
    the reference loop by a regression test (grid path to rounding,
    batched path bit-for-bit).
    """
    freqs = np.asarray(freqs, dtype=float)
    num_samples, q = eigenvalues.shape
    num_outputs = lt_v.shape[1]
    num_inputs = w.shape[2]
    # Stay in the factors' precision: complex128 factors keep the
    # historical bit-identical arithmetic, complex64 factors (screening
    # tier) must not be silently promoted by a complex128 grid.
    complex_dtype = np.result_type(eigenvalues.dtype, np.complex64)
    s = (2j * np.pi * freqs).astype(complex_dtype)
    if num_samples <= _GRID_MAX_SAMPLES and freqs.size >= _GRID_MIN_FREQS:
        reciprocal = 1.0 / (1.0 + s[None, :, None] * eigenvalues[:, None, :])
        residues = lt_v.transpose(0, 2, 1)[:, :, :, None] * w[:, :, None, :]
        out = reciprocal @ residues.reshape(num_samples, q, num_outputs * num_inputs)
        return out.reshape(num_samples, freqs.size, num_outputs, num_inputs)
    out = np.empty((num_samples, freqs.size, num_outputs, num_inputs), dtype=complex_dtype)
    for j in range(freqs.size):
        out[:, j] = lt_v @ (w / (1.0 + s[j] * eigenvalues)[:, :, None])
    return out


# The eig kernel's accuracy hinges on the conditioning of each
# instance's eigenvector basis, which nothing upstream guarantees.  One
# probe frequency per sweep is re-evaluated through the exact pencil
# solve; instances whose rational responses disagree beyond the
# tolerance are recomputed entirely via solves (counted in
# ``runtime.batch.eig_fallbacks``).  Thresholds are strictly
# per-instance -- no batch-global scale -- so chunked streaming flags
# exactly what one-shot evaluation flags (the bit-determinism contract).
_GUARD_RTOL = 1e-6
_SCREEN_RTOL = 1e-4
_EIG_FALLBACKS = obs_metrics.counter("runtime.batch.eig_fallbacks")


def _solve_responses(model, g: np.ndarray, c: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Exact per-frequency pencil-solve responses for a (sub)stack."""
    out = np.empty(
        (g.shape[0], freqs.size, model.nominal.L.shape[1], model.nominal.B.shape[1]),
        dtype=complex,
    )
    for j, f in enumerate(freqs):
        out[:, j] = _transfer_from_stacks(model, g, c, 2j * np.pi * f)
    return out


def _response_guard_flags(
    model, g, c, responses: np.ndarray, freqs: np.ndarray, rtol: float
) -> np.ndarray:
    """Per-instance accuracy flags for rational (eig-path) responses.

    Compares the probe frequency (middle of the grid) against a
    complex128 pencil solve of the same stacks.  The tolerance scales
    with that instance's own response magnitude only, never with the
    rest of the batch, so the flag vector is invariant to chunking.
    Non-finite rows are always flagged.
    """
    probe = freqs.size // 2
    reference = _transfer_from_stacks(model, g, c, 2j * np.pi * freqs[probe])
    diff = np.abs(responses[:, probe] - reference).max(axis=(1, 2))
    # Probe-local scale only: folding in the rest of the grid would let
    # wildly wrong values at other frequencies inflate the tolerance
    # and mask a bad probe (the ill-conditioned-basis failure mode).
    scale = np.abs(reference).max(axis=(1, 2))
    with np.errstate(invalid="ignore"):
        flags = diff > rtol * scale
    flags |= ~np.isfinite(responses).all(axis=(1, 2, 3))
    return flags


def batch_frequency_response(
    model, frequencies: Sequence[float], samples, method: str = "solve"
) -> np.ndarray:
    """``H(j 2 pi f, p_k)`` for every (sample, frequency) pair.

    The system matrices are instantiated once and re-used across the
    frequency axis.  Returns shape ``(m, n_f, m_out, m_in)``.

    Parameters
    ----------
    method:
        ``"solve"`` (default) performs one batched pencil solve per
        frequency -- bitwise-grade agreement with the per-sample path.
        ``"eig"`` diagonalizes each instance once and evaluates all
        frequencies as rational sums -- asymptotically ``n_f`` times
        cheaper for dense sweeps, accurate to rounding (~1e-15
        relative) for well-conditioned eigenvector bases.
    """
    freqs = np.asarray(frequencies, dtype=float)
    g, c = batch_instantiate(model, samples, exact=(method == "solve"))
    if method == "solve":
        out = np.empty(
            (g.shape[0], freqs.size, model.nominal.L.shape[1], model.nominal.B.shape[1]),
            dtype=complex,
        )
        for j, f in enumerate(freqs):
            out[:, j] = _transfer_from_stacks(model, g, c, 2j * np.pi * f)
        return out
    if method != "eig":
        raise ValueError(f"unknown method {method!r} (use 'solve' or 'eig')")
    eigenvalues, lt_v, w = _eig_response_factors(model, g, c)
    return _eig_responses(eigenvalues, lt_v, w, freqs)


def _poles_from_eigenvalues(eigenvalues: np.ndarray, num: Optional[int]) -> np.ndarray:
    """Row-wise pole extraction matching :meth:`DescriptorSystem.poles`.

    ``eigenvalues`` is ``(m, q)`` from the stacked ``G^{-1} C``
    matrices; returns ``(m, k)`` dominant poles, ``nan``-padded where an
    instance has fewer finite poles.
    """
    per_sample = []
    for row in eigenvalues:
        magnitude = np.abs(row)
        scale = magnitude.max() if magnitude.size else 0.0
        if scale == 0.0:
            per_sample.append(np.empty(0, dtype=complex))
            continue
        finite = row[magnitude > 1e-12 * scale]
        poles = -1.0 / finite
        poles = poles[np.argsort(np.abs(poles))]
        per_sample.append(poles[:num] if num is not None else poles)
    width = max((p.size for p in per_sample), default=0)
    if num is not None:
        width = num
    out = np.full((len(per_sample), width), np.nan + 1j * np.nan, dtype=complex)
    for k, poles in enumerate(per_sample):
        out[k, : poles.size] = poles
    return out


def batch_poles(model, samples, num: Optional[int] = None) -> np.ndarray:
    """Dominant poles of every sampled instance, stacked.

    Same semantics per instance as :meth:`DescriptorSystem.poles`
    (finite poles of the pencil ``G(p_k) + s C(p_k)``, most dominant
    first), but computed through one batched ``solve`` + ``eigvals``
    call pair.  Returns a complex array of shape ``(m, k)`` where ``k``
    is ``num`` (when given) or the largest finite-pole count; rows with
    fewer finite poles are padded with ``nan``.

    ``num`` is passed all the way down: when the model's sensitivities
    are detected as low rank, the per-instance ``G_k^{-1} C_k`` solves
    are replaced by rank-``rho`` dominant-block corrections of the
    nominal operator (:mod:`repro.runtime.lowrank`), and the truncated
    result is by construction the leading block of the full-ordering
    result -- pinned by a regression test.
    """
    # Imported lazily: repro.runtime.lowrank builds on this module.
    from repro.runtime.lowrank import lowrank_solver

    solver = lowrank_solver(model) if supports_batching(model) else None
    if solver is not None:
        return _poles_from_eigenvalues(solver.instance_eigenvalues(samples), num)
    g, c = batch_instantiate(model, samples)
    a = np.linalg.solve(g, c)
    return _poles_from_eigenvalues(np.linalg.eigvals(a), num)


def _sweep_study(
    model,
    frequencies: Sequence[float],
    samples,
    num_poles: Optional[int] = 5,
    want_poles: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Frequency responses *and* dominant poles from one factorization.

    The canonical Monte Carlo workload evaluates both the response
    envelope and the pole distribution of every instance.  One batched
    eigendecomposition per instance serves both quantities: the
    eigenvalues give the poles, the eigenvectors give the rational form
    of ``H``.  Returns ``(responses, poles)`` with shapes
    ``(m, n_f, m_out, m_in)`` and ``(m, num_poles)``; with
    ``want_poles=False`` the pole extraction is skipped and ``poles``
    is ``None``.

    Instances whose eigenvector basis is too ill conditioned for the
    rational form (checked against an exact probe solve) are recomputed
    through per-frequency pencil solves instead of silently returning
    inaccurate responses; each fallback increments the
    ``runtime.batch.eig_fallbacks`` counter.

    This is the engine-internal kernel behind the dense sweep routes of
    :class:`repro.runtime.engine.Study`; the historical public name
    :func:`batch_sweep_study` is a deprecated shim over it.
    """
    freqs = np.asarray(frequencies, dtype=float)
    g, c = batch_instantiate(model, samples, exact=False)
    eigenvalues, lt_v, w = _eig_response_factors(model, g, c)
    responses = _eig_responses(eigenvalues, lt_v, w, freqs)
    if freqs.size:
        flags = _response_guard_flags(model, g, c, responses, freqs, _GUARD_RTOL)
        if flags.any():
            _EIG_FALLBACKS.inc(int(flags.sum()))
            responses[flags] = _solve_responses(model, g[flags], c[flags], freqs)
    if not want_poles:
        return responses, None
    return responses, _poles_from_eigenvalues(eigenvalues, num_poles)


def _screen_sweep_study(
    model,
    frequencies: Sequence[float],
    samples,
    num_poles: Optional[int] = 5,
    want_poles: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Float32 screening sweep: fast single-precision pass + re-verify.

    Runs the eig sweep kernel entirely in float32/complex64 (the
    eigendecomposition, the dominant cost, runs roughly twice as fast
    in single precision), then checks every instance against an exact
    complex128 probe solve.  Instances whose single-precision responses
    disagree beyond ``_SCREEN_RTOL`` -- or are non-finite -- are
    recomputed in full float64 precision (responses through exact
    per-frequency solves, poles through the float64
    eigendecomposition).

    Returns ``(responses, poles, verified)`` where ``verified[k]`` is
    ``True`` exactly when instance ``k`` was re-verified in float64;
    unflagged instances carry screened single-precision values and
    ``verified[k] = False``.  Flags are per-instance only, so chunked
    streaming screens identically to one-shot evaluation.
    """
    freqs = np.asarray(frequencies, dtype=float)
    g, c = batch_instantiate(model, samples, exact=False)
    alpha = _pencil_time_scales(g, c)
    g32 = g.astype(np.float32)
    c32 = (c * alpha[:, None, None]).astype(np.float32)
    eigenvalues, lt_v, w = _eig_response_factors(model, g32, c32)
    # Scaling C scaled the eigenvalues of G^{-1}C by alpha (eigenvectors
    # and therefore lt_v/w are unchanged); undo it losslessly here so
    # everything downstream sees the original spectrum.
    eigenvalues = eigenvalues / alpha[:, None].astype(eigenvalues.real.dtype)
    responses = _eig_responses(eigenvalues, lt_v, w, freqs).astype(np.complex128)
    if freqs.size:
        flags = _response_guard_flags(model, g, c, responses, freqs, _SCREEN_RTOL)
    else:
        flags = ~np.isfinite(eigenvalues).all(axis=1)
    poles = None
    if want_poles:
        poles = _poles_from_eigenvalues(eigenvalues.astype(np.complex128), num_poles)
        flags = flags | ~np.isfinite(poles).any(axis=1)
    if flags.any():
        _EIG_FALLBACKS.inc(int(flags.sum()))
        if freqs.size:
            responses[flags] = _solve_responses(model, g[flags], c[flags], freqs)
        if want_poles:
            a64 = np.linalg.solve(g[flags], c[flags])
            sub = _poles_from_eigenvalues(np.linalg.eigvals(a64), num_poles)
            if sub.shape[1] < poles.shape[1]:
                pad = np.full(
                    (sub.shape[0], poles.shape[1] - sub.shape[1]),
                    np.nan + 1j * np.nan,
                    dtype=complex,
                )
                sub = np.concatenate([sub, pad], axis=1)
            elif sub.shape[1] > poles.shape[1]:
                grown = np.full(
                    (poles.shape[0], sub.shape[1]),
                    np.nan + 1j * np.nan,
                    dtype=complex,
                )
                grown[:, : poles.shape[1]] = poles
                poles = grown
            poles[flags] = sub
    return responses, poles, flags.copy()


def batch_sweep_study(
    model,
    frequencies: Sequence[float],
    samples,
    num_poles: Optional[int] = 5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deprecated shim: responses + poles of a sampled ensemble.

    Delegates to the identical internal kernel the engine uses, so
    results are bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(samples).sweep(frequencies,
    keep_responses=True).poles(num_poles).run()`` instead.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "batch_sweep_study",
        "Study(model).scenarios(samples).sweep(frequencies, "
        "keep_responses=True).poles(num_poles).run()",
    )
    return _sweep_study(model, frequencies, samples, num_poles=num_poles)


def batch_transfer_sensitivities(model, s: complex, samples) -> np.ndarray:
    """Exact ``dH/dp_i (s, p_k)`` for every sample, stacked.

    The batched counterpart of
    :func:`repro.analysis.sensitivity.transfer_sensitivities` for dense
    parametric models: forward and adjoint stacked solves against the
    shared pencil, then one einsum contraction per side.  Returns shape
    ``(m, n_p, m_out, m_in)``.
    """
    matrix = as_sample_matrix(model, samples)
    g, c = batch_instantiate(model, matrix)
    s = complex(s)
    pencil = (g + s * c).astype(np.complex128)
    b = _dense(model.nominal.B).astype(np.complex128)
    l_mat = _dense(model.nominal.L).astype(np.complex128)
    x = np.linalg.solve(pencil, np.broadcast_to(b, (pencil.shape[0],) + b.shape))
    adjoint = np.transpose(pencil, (0, 2, 1))
    y = np.linalg.solve(adjoint, np.broadcast_to(l_mat, (pencil.shape[0],) + l_mat.shape))
    dg, dc = _sensitivity_stacks(model)
    k_stack = dg + s * dc
    kx = np.einsum("pij,kjn->kpin", k_stack, x)
    return -np.einsum("kio,kpin->kpon", y, kx)
