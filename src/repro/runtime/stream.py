"""Chunked streaming studies: million-sample plans in bounded memory.

The one-shot batch kernels materialize every intermediate for the whole
ensemble at once -- ``(m, q, q)`` system stacks, ``(m, nt + 1, m_out)``
trajectories, ``(m, n_f, m_out, m_in)`` response grids.  For a
laptop-scale reduced model that caps ``m`` at a few tens of thousands;
the paper's protocol (and the ROADMAP's million-user north star) wants
ensembles far beyond that.

This module runs any scenario plan through the existing batch kernels
in **fixed-size chunks** with incremental reducers:

- :func:`stream_sweep_study` -- frequency-domain: chunked
  :func:`~repro.runtime.batch.batch_sweep_study` for dense-batchable
  models, chunked
  :meth:`~repro.runtime.sparse.SparsePatternFamily.frequency_response`
  for sparse full-order models;
- :func:`stream_transient_study` -- time-domain: chunked
  :func:`~repro.runtime.transient.batch_transient_study` with the
  delay/slew metrics extracted per chunk.

Peak-memory bound
-----------------

Per chunk of ``c`` instances (order ``q``, ``n_f`` frequencies,
``n_t`` timesteps, ``m_out``/``m_in`` ports), the drivers hold

- sweep:      ``16 c (2 q^2 + q (q + m_in) + n_f m_out m_in)`` bytes
  (system stacks + eigenfactors + the chunk's response grid),
- transient:  ``8 c (4 q^2 + n_t q + (n_t + 1) m_out)`` bytes
  (system stacks + propagators + forcing table + trajectories),

within a small constant factor -- see :func:`sweep_chunk_bytes` and
:func:`transient_chunk_bytes`.  Everything retained across chunks is
``O(m)`` scalars per instance (delays, poles, steady states) plus the
``O(n_f)`` / ``O(n_t)`` envelope accumulators, so total memory is flat
in the plan size for any fixed ``chunk_size``.  (The accumulator's
three running arrays are part of the working set and are included in
the engine's :class:`~repro.runtime.engine.ExecutionPlan` peak
estimate as a fixed term.)

Checkpoint units
----------------

Each chunk is also the **checkpoint unit** of the durable-study layer
(:mod:`repro.runtime.store`): the drivers accept a
:class:`~repro.runtime.store.StudyCheckpoint` and, per chunk, either
load the persisted payload (envelope contributions + per-instance
blocks) or compute it and persist it before folding.  Because the
folded arrays round-trip ``.npz`` bit-exactly and are folded in the
same chunk order, a resumed or sharded-then-merged study is
bit-identical to an uninterrupted one.  ``shard=(i, n)`` restricts a
driver to the chunks with ``index % n == i``; the result then covers
only those instances (``instance_indices`` maps them back to plan
rows).

Determinism contract
--------------------

Every per-instance quantity (responses, poles, trajectories, delays,
slews, steady states) and the envelope ``min``/``max`` are
**bit-identical** to the one-shot batched path: the batch kernels
process instances independently, so slicing the sample matrix into
chunks cannot change any row's arithmetic.  The envelope ``mean`` is
accumulated as a running chunk sum and may differ from the one-shot
``numpy.mean`` (pairwise summation) in the last bits -- the only
deliberate deviation, and it is documented here.  Progress callbacks
``progress(done, total)`` fire after every chunk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.batch import (
    _screen_sweep_study,
    _sweep_study,
    as_sample_matrix,
    supports_batching,
)
from repro.runtime.scenarios import ScenarioPlan, StepInput
from repro.runtime.sparse import shared_pattern_family, supports_sparse_batching
from repro.runtime.transient import _transient_study, default_horizon

ProgressCallback = Callable[[int, int], None]

# Per-chunk instruments, shared by the sweep/transient drivers and the
# engine's pole loop.  Counters/histograms are always live (a handful of
# attribute updates per *chunk*); spans additionally fire only while a
# trace sink is installed.
_CHUNKS_COMPLETED = obs_metrics.counter("study.chunks_completed")
_INSTANCES_EVALUATED = obs_metrics.counter("study.instances_evaluated")
_CHUNK_WALL = obs_metrics.histogram("study.chunk_wall_seconds")
_CHUNK_CPU = obs_metrics.histogram("study.chunk_cpu_seconds")


def _realize_samples(model, scenarios) -> Tuple[Optional[ScenarioPlan], np.ndarray]:
    if isinstance(scenarios, ScenarioPlan) or hasattr(scenarios, "sample_matrix"):
        return scenarios, scenarios.sample_matrix(model.num_parameters)
    return None, as_sample_matrix(model, scenarios)


def _chunk_slices(num_items: int, chunk_size: Optional[int]):
    if chunk_size is None:
        chunk_size = num_items
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for lo in range(0, num_items, chunk_size):
        yield lo, min(lo + chunk_size, num_items)


def _owned_chunks(num_items: int, chunk_size: Optional[int], shard):
    """``(index, lo, hi)`` for the chunks this run executes.

    ``shard=(i, n)`` keeps the chunks with ``index % n == i`` (the
    global chunk grid is identical for every shard, so shards own
    disjoint checkpoint units and a merge sees no gaps or overlaps).
    """
    chunks = [
        (index, lo, hi)
        for index, (lo, hi) in enumerate(_chunk_slices(num_items, chunk_size))
    ]
    if shard is None:
        return chunks
    index, of = shard
    owned = [chunk for chunk in chunks if chunk[0] % of == index]
    if not owned:
        raise ValueError(
            f"shard {index + 1}/{of} owns no chunks: the study has only "
            f"{len(chunks)} chunk(s); lower the shard count or the chunk size"
        )
    return owned


def sweep_chunk_bytes(
    order: int,
    num_frequencies: int,
    chunk_size: int,
    num_outputs: int = 1,
    num_inputs: int = 1,
) -> int:
    """Estimated peak bytes one sweep chunk holds (constant factor ~2).

    ``16 c (2 q^2 + q (q + m_in) + n_f m_out m_in)``: the complex
    eigenvector stack dominates for big models, the response grid for
    dense frequency axes.  Use it to size ``chunk_size`` against a
    memory budget: ``chunk_size ~= budget_bytes / sweep_chunk_bytes(q,
    n_f, 1, ...)``.
    """
    q = order
    per_instance = 2 * q * q + q * (q + num_inputs) + num_frequencies * num_outputs * num_inputs
    return int(16 * chunk_size * per_instance)


def transient_chunk_bytes(
    order: int,
    num_steps: int,
    chunk_size: int,
    num_outputs: int = 1,
) -> int:
    """Estimated peak bytes one transient chunk holds (constant factor ~2).

    ``8 c (4 q^2 + n_t q + (n_t + 1) m_out)``: system + propagator
    stacks plus the precomputed forcing table and output trajectories.
    """
    q = order
    per_instance = 4 * q * q + num_steps * q + (num_steps + 1) * num_outputs
    return int(8 * chunk_size * per_instance)


def _chunk_telemetry(wall0: float, cpu0: float, instances: int) -> dict:
    """Per-chunk compute telemetry persisted into the store manifest."""
    return {
        "wall_seconds": time.perf_counter() - wall0,
        "cpu_seconds": time.process_time() - cpu0,
        "instances": int(instances),
    }


def _observe_chunk(wall0: float, cpu0: float, instances: int) -> None:
    """Fold one finished chunk into the global metrics registry."""
    _CHUNKS_COMPLETED.inc()
    _INSTANCES_EVALUATED.inc(instances)
    _CHUNK_WALL.observe(time.perf_counter() - wall0)
    _CHUNK_CPU.observe(time.process_time() - cpu0)


def _sweep_chunk_payload(
    model,
    family,
    freqs: np.ndarray,
    block: np.ndarray,
    num_poles: Optional[int] = None,
    keep_poles: bool = False,
    keep_responses: bool = False,
    precision: str = "full",
    solver=None,
) -> dict:
    """One sweep chunk's persistable payload (the checkpoint unit).

    The single definition of what a sweep chunk *is*, shared by the
    streaming driver and the work-stealing drain loop
    (:meth:`repro.runtime.engine.Study.work`) -- both paths therefore
    checkpoint byte-identical arrays for the same chunk.  ``family`` is
    the shared sparsity pattern for sparse targets, ``None`` for dense.

    ``precision="screen"`` runs the float32 screening kernel and adds a
    per-instance ``verified`` column to the payload; ``solver`` (a
    :class:`~repro.runtime.lowrank.LowRankEnsembleSolver`) switches the
    dense kernel to the low-rank correction path.  Every kernel below
    treats instances independently, so chunked payloads are
    bit-identical to one-shot evaluation whichever route the planner
    picked.
    """
    verified = None
    if family is None:
        if precision == "screen":
            responses, poles, verified = _screen_sweep_study(
                model, freqs, block, num_poles=num_poles, want_poles=keep_poles
            )
        elif solver is not None:
            responses, poles = solver.sweep(
                block, freqs, num_poles=num_poles, want_poles=keep_poles
            )
        else:
            responses, poles = _sweep_study(
                model, freqs, block, num_poles=num_poles, want_poles=keep_poles
            )
    else:
        responses = family.frequency_response(freqs, block)
        poles = None
    magnitudes = np.abs(responses)
    payload = {
        "env_min": magnitudes.min(axis=0),
        "env_max": magnitudes.max(axis=0),
        "env_sum": magnitudes.sum(axis=0),
    }
    if keep_poles:
        payload["poles"] = poles
    if keep_responses:
        payload["responses"] = responses
    if verified is not None:
        payload["verified"] = verified
    return payload


def _transient_chunk_payload(
    model,
    block: np.ndarray,
    waveform,
    t_final: float,
    num_steps: int,
    method: str,
    delay_threshold: float,
    slew_bounds: Tuple[float, float],
    output_index: int,
    reference: str,
    keep_outputs: bool = False,
) -> dict:
    """One transient chunk's persistable payload (the checkpoint unit).

    Counterpart of :func:`_sweep_chunk_payload` for the time-domain
    driver; same sharing contract.
    """
    study = _transient_study(
        model, block,
        waveform=waveform, t_final=t_final, num_steps=num_steps, method=method,
    )
    outputs = study.result.outputs
    payload = {
        "env_min": outputs.min(axis=0),
        "env_max": outputs.max(axis=0),
        "env_sum": outputs.sum(axis=0),
        "delays": study.delays(
            threshold=delay_threshold,
            output_index=output_index,
            reference=reference,
        ),
        "slews": study.slews(
            low=slew_bounds[0],
            high=slew_bounds[1],
            output_index=output_index,
            reference=reference,
        ),
        "steady_states": study.steady_states,
    }
    if keep_outputs:
        payload["outputs"] = outputs
    return payload


class _EnvelopeAccumulator:
    """Running per-position min / sum / max over the instance axis."""

    def __init__(self):
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None
        self.total: Optional[np.ndarray] = None
        self.count = 0

    def update(self, block: np.ndarray) -> None:
        """Fold in a ``(chunk, ...)`` block of per-instance values."""
        self.merge(
            block.min(axis=0), block.max(axis=0), block.sum(axis=0), block.shape[0]
        )

    def merge(
        self,
        chunk_min: np.ndarray,
        chunk_max: np.ndarray,
        chunk_sum: np.ndarray,
        count: int,
    ) -> None:
        """Fold in one chunk's already-reduced ``(min, max, sum, count)``.

        This is the seam the durable-study checkpoints use: the same
        three arrays :meth:`update` reduces from a live block are
        persisted per chunk and folded back through this method on
        resume, in the same order, so the accumulated state (including
        the chunk-ordered ``total`` behind :attr:`mean`) is
        bit-identical either way.
        """
        if self.minimum is None:
            self.minimum = chunk_min
            self.maximum = chunk_max
            self.total = chunk_sum
        else:
            self.minimum = np.minimum(self.minimum, chunk_min)
            self.maximum = np.maximum(self.maximum, chunk_max)
            self.total = self.total + chunk_sum
        self.count += count

    @property
    def mean(self) -> np.ndarray:
        """Chunk-accumulated mean (see the module determinism contract)."""
        return self.total / self.count


@dataclass
class StreamedSweepStudy:
    """Incremental result of a chunked frequency-domain study.

    ``envelope_*`` hold the per-(frequency, output, input) magnitude
    statistics over all instances; ``poles`` is the stacked
    ``(m, num_poles)`` array (dense-batchable models only);
    ``responses`` is kept only when the driver was asked to retain the
    full grid (small studies / regression tests).  ``verified`` is the
    per-instance provenance column of float32-screened runs: ``True``
    where the instance was re-verified in float64, ``False`` where the
    screened single-precision value was accepted, ``None`` for
    full-precision runs.
    """

    plan: Optional[ScenarioPlan]
    samples: np.ndarray
    frequencies: np.ndarray
    envelope_min: np.ndarray
    envelope_mean: np.ndarray
    envelope_max: np.ndarray
    num_chunks: int
    chunk_size: int
    poles: Optional[np.ndarray] = None
    responses: Optional[np.ndarray] = None
    shard: Optional[Tuple[int, int]] = None
    instance_indices: Optional[np.ndarray] = None
    verified: Optional[np.ndarray] = None

    @property
    def num_samples(self) -> int:
        """Number of evaluated parameter instances."""
        return self.samples.shape[0]

    def magnitude_envelope(
        self, output_index: int = 0, input_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-frequency ``(min, mean, max)`` of ``|H|`` across instances.

        Signature-compatible with
        :meth:`~repro.runtime.scenarios.ScenarioSweep.magnitude_envelope`.
        """
        index = (slice(None), output_index, input_index)
        return (
            self.envelope_min[index],
            self.envelope_mean[index],
            self.envelope_max[index],
        )


def _stream_sweep_study(
    model,
    frequencies: Sequence[float],
    scenarios,
    chunk_size: Optional[int] = None,
    num_poles: Optional[int] = 5,
    keep_responses: bool = False,
    progress: Optional[ProgressCallback] = None,
    checkpoint=None,
    shard: Optional[Tuple[int, int]] = None,
    precision: str = "full",
    solver=None,
) -> StreamedSweepStudy:
    """Run a scenario plan's frequency study in fixed-size chunks.

    This is the engine-internal driver behind every sweep route of
    :class:`repro.runtime.engine.Study`; the historical public name
    :func:`stream_sweep_study` is a deprecated shim over it.
    ``checkpoint`` (a :class:`~repro.runtime.store.StudyCheckpoint`)
    turns every chunk into a persisted checkpoint unit; ``shard=(i,
    n)`` restricts the run to its slice of the global chunk grid --
    see the module notes on checkpoint units.

    Parameters
    ----------
    model:
        A dense-batchable reduced model (chunked through
        :func:`~repro.runtime.batch.batch_sweep_study`: responses *and*
        dominant poles from one eigendecomposition per instance) or a
        sparse full-order parametric system (chunked through the
        shared-pattern solver kernels; set ``num_poles=None`` --
        full-order dense eigendecompositions are not a streaming
        quantity).
    frequencies:
        Frequency axis in hertz.
    scenarios:
        A :class:`~repro.runtime.scenarios.ScenarioPlan` or a raw
        ``(m, n_p)`` sample matrix.
    chunk_size:
        Instances per chunk (default: everything in one chunk).  Peak
        memory scales with this -- see :func:`sweep_chunk_bytes`.
    num_poles:
        Dominant poles retained per instance (dense models); ``None``
        skips pole extraction.
    keep_responses:
        Retain the full ``(m, n_f, m_out, m_in)`` grid.  Defeats the
        memory bound; for small studies and regression tests.
    progress:
        ``progress(instances_done, total_instances)`` after each chunk.
    precision:
        ``"full"`` (default) or ``"screen"`` -- the float32 screening
        tier with per-instance float64 re-verification; chunk payloads
        then carry a ``verified`` column and per-chunk telemetry
        records ``verified_instances``.
    solver:
        An optional :class:`~repro.runtime.lowrank.LowRankEnsembleSolver`
        routing the dense chunks through the low-rank correction kernel.
    """
    dense = supports_batching(model)
    if not dense and not supports_sparse_batching(model):
        raise ValueError(
            f"{model!r} supports neither dense nor sparse batching; "
            "see repro.runtime.batch.supports_batching"
        )
    plan, samples = _realize_samples(model, scenarios)
    freqs = np.asarray(frequencies, dtype=float)
    if not dense and num_poles is not None:
        raise ValueError(
            "full-order sparse streaming computes responses only; "
            "pass num_poles=None (dense eigendecompositions of the full "
            "model are not a streaming quantity)"
        )
    family = None if dense else shared_pattern_family(model)

    total = samples.shape[0]
    if total == 0:
        raise ValueError("scenario plan produced no samples")
    envelope = _EnvelopeAccumulator()
    pole_blocks = [] if (dense and num_poles is not None) else None
    response_blocks = [] if keep_responses else None
    verified_blocks = [] if (dense and precision == "screen") else None
    num_chunks = 0
    effective_chunk = chunk_size if chunk_size is not None else max(total, 1)
    owned = _owned_chunks(total, chunk_size, shard)
    shard_total = sum(hi - lo for _, lo, hi in owned)
    done = 0
    num_owned = len(owned)
    for index, lo, hi in owned:
        with obs_trace.span(
            "study.chunk", workload="sweep", index=index, lo=lo, hi=hi,
            instances=hi - lo, shard=None if shard is None else list(shard),
        ) as chunk_span:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            payload = checkpoint.load(index) if checkpoint is not None else None
            loaded = payload is not None
            if payload is None:
                payload = _sweep_chunk_payload(
                    model, family, freqs, samples[lo:hi],
                    num_poles=num_poles,
                    keep_poles=pole_blocks is not None,
                    keep_responses=response_blocks is not None,
                    precision=precision,
                    solver=solver,
                )
                if checkpoint is not None:
                    telemetry = _chunk_telemetry(wall0, cpu0, hi - lo)
                    if "verified" in payload:
                        telemetry["verified_instances"] = int(
                            payload["verified"].sum()
                        )
                    checkpoint.save(index, lo, hi, payload, telemetry=telemetry)
            envelope.merge(
                payload["env_min"], payload["env_max"], payload["env_sum"], hi - lo
            )
            if pole_blocks is not None:
                pole_blocks.append(payload["poles"])
            if response_blocks is not None:
                response_blocks.append(payload["responses"])
            if verified_blocks is not None:
                verified_blocks.append(
                    np.asarray(
                        payload.get("verified", np.zeros(hi - lo, dtype=bool))
                    ).astype(bool)
                )
            num_chunks += 1
            done += hi - lo
            _observe_chunk(wall0, cpu0, hi - lo)
            chunk_span.set(
                loaded=loaded, done=done, total=shard_total,
                chunks_done=num_chunks, num_chunks=num_owned,
            )
        if progress is not None:
            progress(done, shard_total)
    if shard is None:
        covered, indices = samples, None
    else:
        indices = np.concatenate([np.arange(lo, hi) for _, lo, hi in owned])
        covered = samples[indices]
    return StreamedSweepStudy(
        plan=plan,
        samples=covered,
        frequencies=freqs,
        envelope_min=envelope.minimum,
        envelope_mean=envelope.mean,
        envelope_max=envelope.maximum,
        num_chunks=num_chunks,
        chunk_size=effective_chunk,
        poles=None if pole_blocks is None else np.concatenate(pole_blocks, axis=0),
        responses=None
        if response_blocks is None
        else np.concatenate(response_blocks, axis=0),
        shard=shard,
        instance_indices=indices,
        verified=None
        if verified_blocks is None
        else np.concatenate(verified_blocks, axis=0),
    )


def stream_sweep_study(
    model,
    frequencies: Sequence[float],
    scenarios,
    chunk_size: Optional[int] = None,
    num_poles: Optional[int] = 5,
    keep_responses: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> StreamedSweepStudy:
    """Deprecated shim: chunked frequency-domain scenario study.

    Delegates to the identical internal driver the engine uses, so
    results are bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(scenarios).sweep(frequencies)
    .poles(num_poles).chunk(chunk_size).run()`` instead (the engine
    skips pole extraction unless ``.poles(...)`` is declared, where
    this shim defaulted to ``num_poles=5``).
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "stream_sweep_study",
        "Study(model).scenarios(scenarios).sweep(frequencies)"
        ".poles(num_poles).chunk(chunk_size).run()",
    )
    return _stream_sweep_study(
        model,
        frequencies,
        scenarios,
        chunk_size=chunk_size,
        num_poles=num_poles,
        keep_responses=keep_responses,
        progress=progress,
    )


@dataclass
class StreamedTransientStudy:
    """Incremental result of a chunked time-domain study.

    ``envelope_*`` hold per-(timestep, output) statistics across all
    instances; ``delays`` / ``slews`` / ``steady_states`` are the
    per-instance metrics extracted chunk by chunk (bit-identical to the
    one-shot :class:`~repro.runtime.transient.TransientStudy` methods);
    ``outputs`` is kept only on request.
    """

    plan: Optional[ScenarioPlan]
    waveform: object
    samples: np.ndarray
    time: np.ndarray
    method: str
    envelope_min: np.ndarray
    envelope_mean: np.ndarray
    envelope_max: np.ndarray
    delays: np.ndarray
    slews: np.ndarray
    steady_states: np.ndarray
    num_chunks: int
    chunk_size: int
    outputs: Optional[np.ndarray] = None
    shard: Optional[Tuple[int, int]] = None
    instance_indices: Optional[np.ndarray] = None

    @property
    def num_samples(self) -> int:
        """Number of simulated parameter instances."""
        return self.samples.shape[0]

    def output_envelope(
        self, output_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-timestep ``(min, mean, max)`` across instances."""
        index = (slice(None), output_index)
        return (
            self.envelope_min[index],
            self.envelope_mean[index],
            self.envelope_max[index],
        )


def _stream_transient_study(
    model,
    scenarios,
    waveform=None,
    t_final: Optional[float] = None,
    num_steps: int = 500,
    method: str = "trapezoidal",
    chunk_size: Optional[int] = None,
    delay_threshold: float = 0.5,
    slew_bounds: Tuple[float, float] = (0.1, 0.9),
    output_index: int = 0,
    reference: str = "steady",
    keep_outputs: bool = False,
    progress: Optional[ProgressCallback] = None,
    checkpoint=None,
    shard: Optional[Tuple[int, int]] = None,
) -> StreamedTransientStudy:
    """Run a scenario plan's transient ensemble in fixed-size chunks.

    The streaming face of the batched propagator kernel: each chunk
    is simulated through it, the delay/slew/steady-state metrics are
    extracted immediately (with the given ``delay_threshold`` /
    ``slew_bounds`` / ``reference`` semantics of
    :class:`~repro.runtime.transient.TransientStudy`), and only
    ``O(m)`` metrics plus the ``O(n_t)`` envelope survive the chunk.
    Peak memory: :func:`transient_chunk_bytes`.  ``checkpoint`` /
    ``shard`` have the checkpoint-unit semantics described in the
    module notes.

    ``t_final`` defaults to the nominal settling horizon, computed once
    and shared across all chunks.

    This is the engine-internal driver behind every transient route of
    :class:`repro.runtime.engine.Study`; the historical public name
    :func:`stream_transient_study` is a deprecated shim over it.
    """
    if not supports_batching(model):
        raise ValueError(
            "stream_transient_study requires a dense-batchable model "
            "(reduce the system first; full-order sparse ensembles are "
            "frequency-domain only)"
        )
    plan, samples = _realize_samples(model, scenarios)
    if waveform is None:
        waveform = StepInput()
    if t_final is None:
        t_final = default_horizon(model)

    total = samples.shape[0]
    if total == 0:
        raise ValueError("scenario plan produced no samples")
    envelope = _EnvelopeAccumulator()
    delay_blocks = []
    slew_blocks = []
    steady_blocks = []
    output_blocks = [] if keep_outputs else None
    # Reconstructed, not captured from a simulated chunk: a fully
    # resumed run loads every chunk from the store and simulates none.
    time_axis = np.linspace(0.0, t_final, num_steps + 1)
    num_chunks = 0
    effective_chunk = chunk_size if chunk_size is not None else max(total, 1)
    owned = _owned_chunks(total, chunk_size, shard)
    shard_total = sum(hi - lo for _, lo, hi in owned)
    done = 0
    num_owned = len(owned)
    for index, lo, hi in owned:
        with obs_trace.span(
            "study.chunk", workload="transient", index=index, lo=lo, hi=hi,
            instances=hi - lo, shard=None if shard is None else list(shard),
        ) as chunk_span:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            payload = checkpoint.load(index) if checkpoint is not None else None
            loaded = payload is not None
            if payload is None:
                payload = _transient_chunk_payload(
                    model, samples[lo:hi],
                    waveform=waveform, t_final=t_final,
                    num_steps=num_steps, method=method,
                    delay_threshold=delay_threshold, slew_bounds=slew_bounds,
                    output_index=output_index, reference=reference,
                    keep_outputs=output_blocks is not None,
                )
                if checkpoint is not None:
                    checkpoint.save(
                        index, lo, hi, payload,
                        telemetry=_chunk_telemetry(wall0, cpu0, hi - lo),
                    )
            envelope.merge(
                payload["env_min"], payload["env_max"], payload["env_sum"], hi - lo
            )
            delay_blocks.append(payload["delays"])
            slew_blocks.append(payload["slews"])
            steady_blocks.append(payload["steady_states"])
            if output_blocks is not None:
                output_blocks.append(payload["outputs"])
            num_chunks += 1
            done += hi - lo
            _observe_chunk(wall0, cpu0, hi - lo)
            chunk_span.set(
                loaded=loaded, done=done, total=shard_total,
                chunks_done=num_chunks, num_chunks=num_owned,
            )
        if progress is not None:
            progress(done, shard_total)
    if shard is None:
        covered, indices = samples, None
    else:
        indices = np.concatenate([np.arange(lo, hi) for _, lo, hi in owned])
        covered = samples[indices]
    return StreamedTransientStudy(
        plan=plan,
        waveform=waveform,
        samples=covered,
        time=time_axis,
        method=method,
        envelope_min=envelope.minimum,
        envelope_mean=envelope.mean,
        envelope_max=envelope.maximum,
        delays=np.concatenate(delay_blocks),
        slews=np.concatenate(slew_blocks),
        steady_states=np.concatenate(steady_blocks, axis=0),
        num_chunks=num_chunks,
        chunk_size=effective_chunk,
        outputs=None if output_blocks is None else np.concatenate(output_blocks, axis=0),
        shard=shard,
        instance_indices=indices,
    )


def stream_transient_study(
    model,
    scenarios,
    waveform=None,
    t_final: Optional[float] = None,
    num_steps: int = 500,
    method: str = "trapezoidal",
    chunk_size: Optional[int] = None,
    delay_threshold: float = 0.5,
    slew_bounds: Tuple[float, float] = (0.1, 0.9),
    output_index: int = 0,
    reference: str = "steady",
    keep_outputs: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> StreamedTransientStudy:
    """Deprecated shim: chunked time-domain scenario study.

    Delegates to the identical internal driver the engine uses, so
    results are bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(scenarios).transient(waveform, t_final,
    num_steps).chunk(chunk_size).run()`` instead.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "stream_transient_study",
        "Study(model).scenarios(scenarios).transient(waveform, t_final, "
        "num_steps).chunk(chunk_size).run()",
    )
    return _stream_transient_study(
        model,
        scenarios,
        waveform=waveform,
        t_final=t_final,
        num_steps=num_steps,
        method=method,
        chunk_size=chunk_size,
        delay_threshold=delay_threshold,
        slew_bounds=slew_bounds,
        output_index=output_index,
        reference=reference,
        keep_outputs=keep_outputs,
        progress=progress,
    )
