"""Lease-based work-stealing over a shared :class:`StudyStore` directory.

PR 5's sharding is static -- chunk ``j`` belongs to shard ``j % n`` --
so one slow or dead shard strands its chunks and the study never
drains.  This module turns the store directory itself into the
coordination substrate: any number of heterogeneous workers point at
the same directory and **claim** chunks one at a time through atomic
claim files, so a fast machine simply takes more chunks and a dead
worker's claims expire and are stolen.  No daemon, no socket, no new
dependency -- the filesystem the store already requires is the whole
control plane.

The lease protocol, in full:

``claim``
    A claim is a JSON file ``claims/<key16>/chunk-00007.claim``.  To
    acquire, a worker writes the claim record to a private scratch file
    and ``os.link``\\ s it to the claim name -- a true test-and-set:
    the link fails with ``FileExistsError`` when any claim exists, so
    two workers can never both think they own a chunk.  (``os.replace``
    is *not* used for acquisition precisely because it silently
    overwrites; it is reserved for stealing, below.)

``heartbeat``
    The owner periodically rewrites its claim with an incremented
    ``beats`` counter (the :meth:`LeaseBoard.sustain` context manager
    runs this in a daemon thread while a chunk computes).  A claim's
    **identity** is the pair ``(token, beats)``.

``expire``
    Expiry is judged *observer-side* with a monotonic clock: an
    observer remembers when it first saw a given claim identity, and
    only treats the claim as expired after the identity has stayed
    unchanged for a full TTL on the observer's own clock.  Wall-clock
    skew between machines is therefore irrelevant, and a claim written
    long ago is never insta-stolen -- every observer grants it a fresh
    TTL from first sight.  One fast path: when the claim's recorded
    host matches the observer's and the recorded pid no longer exists,
    the lease is expired immediately (the common single-machine chaos
    case -- a SIGKILLed worker -- drains without waiting out the TTL).

``steal``
    An expired claim is taken over with ``os.replace`` of a fresh
    claim record.  If two observers steal the same claim concurrently
    the last replace wins; the loser either notices (its read-back
    token differs) or computes the chunk redundantly -- which is
    *benign*, because workers write worker-suffixed chunk files and
    per-worker manifests (see :mod:`repro.runtime.store`), so a race
    wastes a little work but can never corrupt a result.

``release``
    After checkpointing a chunk the owner unlinks its claim (checking
    the token first, so a stolen-then-released claim is left alone).

The merge step stays proof-carrying: every chunk's SHA-256 is verified
against its manifest record before folding, and under the scheduler's
lenient mode a chunk whose every copy fails verification is re-queued
and recomputed rather than aborting the study.  The drained-and-merged
result is bit-identical to a one-shot run -- same chunk layout, same
fold order, same reducers.
"""

from __future__ import annotations

import json
import os
import re
import secrets
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import trace as obs_trace
from repro.obs import metrics as obs_metrics
from repro.runtime.store import StoreError, StudyCheckpoint

__all__ = [
    "CLAIM_FORMAT",
    "DrainReport",
    "Lease",
    "LeaseBoard",
    "default_worker_id",
    "drain_chunks",
    "parse_worker_id",
]

CLAIM_FORMAT = "repro-claim/v1"

_LEASES_CLAIMED = obs_metrics.counter("scheduler.leases_claimed")
_LEASES_STOLEN = obs_metrics.counter("scheduler.leases_stolen")

_WORKER_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}", re.ASCII)


def default_worker_id() -> str:
    """A fresh filename-safe worker id: ``<host>-<pid>-<random>``.

    Unique per process *and* per call, so a respawned worker on the
    same pid never collides with its predecessor's manifest.
    """
    host = re.sub(r"[^A-Za-z0-9.-]", "-", socket.gethostname())[:24] or "host"
    return f"{host}-{os.getpid()}-{secrets.token_hex(3)}"


def parse_worker_id(text: str) -> str:
    """Validate a user-supplied ``--worker-id``.

    Worker ids become path components (``manifest-*.worker-<id>.json``,
    ``chunk-*.w-<id>.npz``), so anything beyond ``[A-Za-z0-9._-]`` --
    separators, whitespace, a leading dot -- is refused with the same
    exit-2 one-line :class:`StoreError` contract as ``parse_shard``.
    """
    if not _WORKER_ID.fullmatch(text or ""):
        raise StoreError(
            f"invalid worker id {text!r}: use letters, digits, '.', '_', '-' "
            "(max 64 chars, must not start with a separator)"
        )
    return text


@dataclass
class Lease:
    """One held claim: proof this process may compute chunk ``index``."""

    index: int
    token: str
    path: Path
    stolen: bool = False
    beats: int = 0


@dataclass
class DrainReport:
    """What one :func:`drain_chunks` call accomplished.

    ``drained`` is True when *the study* is complete -- every chunk has
    a checkpoint, whoever computed it -- not merely when this worker
    ran out of claims.  ``computed``/``stolen`` list the chunk indices
    this worker checkpointed and the subset it acquired by stealing an
    expired lease; ``waits`` counts poll sleeps spent watching other
    workers' claims."""

    drained: bool
    computed: List[int] = field(default_factory=list)
    stolen: List[int] = field(default_factory=list)
    waits: int = 0


class LeaseBoard:
    """The claim table for one study inside a store directory.

    Parameters
    ----------
    store:
        The :class:`~repro.runtime.store.StudyStore` being worked.
    key:
        The study key (claims live under ``claims/<key16>/``).
    worker:
        This worker's id, recorded in every claim it writes.
    ttl:
        Seconds a claim identity may stay unchanged before observers
        treat it as expired.  Must comfortably exceed the heartbeat
        interval (``ttl / 4``) plus the slowest chunk's save time; the
        default suits CI-scale chunks, long-running chunks want more.
    clock:
        Monotonic-clock callable, injectable so lease-expiry tests run
        on a fake clock instead of sleeping.
    """

    def __init__(self, store, key: str, worker: Optional[str] = None,
                 ttl: float = 30.0, clock: Callable[[], float] = time.monotonic):
        self.store = store
        self.key = key
        self.worker = worker or default_worker_id()
        self.ttl = float(ttl)
        self.clock = clock
        self.host = socket.gethostname()
        self.directory = store.directory / "claims" / key[:16]
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create claim directory {str(self.directory)!r}: {exc}"
            ) from None
        # Observer state: claim identity -> when this board first saw it
        # (on *our* clock).  Identity change resets the timer.
        self._watch: Dict[int, Tuple[Tuple[str, int], float]] = {}

    # -- claim records -------------------------------------------------

    def claim_path(self, index: int) -> Path:
        return self.directory / f"chunk-{index:05d}.claim"

    def _claim_record(self, index: int, token: str, beats: int) -> dict:
        return {
            "format": CLAIM_FORMAT,
            "index": int(index),
            "worker": self.worker,
            "pid": os.getpid(),
            "host": self.host,
            "token": token,
            "beats": int(beats),
            "wall_time": time.time(),
        }

    def _read_claim(self, path: Path) -> Optional[dict]:
        """Parse a claim file; ``None`` when missing or unreadable.

        A corrupt claim (torn write from a dying kernel, hand-edited
        file) parses to an empty record, which has no identity and no
        live pid -- it simply expires and is stolen like any dead one.
        """
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def _write_claim(self, path: Path, record: dict, replace: bool) -> bool:
        """Write a claim atomically; acquisition links, stealing replaces."""
        scratch = path.with_name(f".{path.name}.{os.getpid()}.{record['token']}.tmp")
        try:
            scratch.write_text(json.dumps(record, sort_keys=True))
            try:
                if replace:
                    os.replace(scratch, path)
                else:
                    os.link(scratch, path)
            except FileExistsError:
                return False
            finally:
                scratch.unlink(missing_ok=True)
        except OSError as exc:
            scratch.unlink(missing_ok=True)
            raise StoreError(
                f"cannot write claim {str(path)!r}: {exc}"
            ) from None
        return True

    # -- expiry --------------------------------------------------------

    def _pid_is_dead(self, record: dict) -> bool:
        """Fast local-host liveness probe; conservative off-host."""
        if record.get("host") != self.host:
            return False
        pid = record.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            pass  # alive but not ours (PermissionError) -- or unknowable
        return False

    def _expired(self, index: int, record: Optional[dict]) -> bool:
        """Observer-side expiry for the claim currently at ``index``."""
        if record is None:
            return True  # unreadable claim: no identity, no heartbeat
        if self._pid_is_dead(record):
            obs_trace.event(
                "lease.expire", index=index, worker=record.get("worker"),
                reason="dead-pid",
            )
            return True
        identity = (record.get("token"), record.get("beats"))
        now = self.clock()
        seen = self._watch.get(index)
        if seen is None or seen[0] != identity:
            self._watch[index] = (identity, now)
            return False
        if now - seen[1] <= self.ttl:
            return False
        obs_trace.event(
            "lease.expire", index=index, worker=record.get("worker"),
            reason="ttl", beats=record.get("beats"),
        )
        return True

    # -- the lease lifecycle -------------------------------------------

    def try_claim(self, index: int) -> Optional[Lease]:
        """Attempt to acquire chunk ``index``; ``None`` while it is held.

        Acquisition of a free chunk is an atomic link (test-and-set);
        a held chunk is watched until its identity goes stale, then
        stolen with a replace.  Either way the caller owns the returned
        lease until :meth:`release`.
        """
        path = self.claim_path(index)
        token = secrets.token_hex(8)
        record = self._claim_record(index, token, beats=0)
        current = self._read_claim(path)
        if current is None:
            if self._write_claim(path, record, replace=False):
                self._watch.pop(index, None)
                _LEASES_CLAIMED.inc()
                obs_trace.event("lease.claim", index=index, worker=self.worker)
                return Lease(index=index, token=token, path=path)
            # Link failed: a claim appeared between our read and the
            # link (or the existing file is corrupt).  Re-read and judge
            # it like any held claim -- never steal a just-made one.
            current = self._read_claim(path)
            if current is not None:
                self._expired(index, current)  # start watching its identity
                return None
        if not self._expired(index, current):
            return None
        self._write_claim(path, record, replace=True)
        # A concurrent stealer may have replaced after us; read back to
        # learn who actually won.  (Losing is benign -- see module doc.)
        final = self._read_claim(path)
        if final is None or final.get("token") != token:
            return None
        self._watch.pop(index, None)
        _LEASES_CLAIMED.inc()
        _LEASES_STOLEN.inc()
        obs_trace.event(
            "lease.steal", index=index, worker=self.worker,
            previous=(current or {}).get("worker"),
        )
        return Lease(index=index, token=token, path=path, stolen=True)

    def heartbeat(self, lease: Lease) -> None:
        """Refresh ``lease`` so observers keep granting it a full TTL."""
        lease.beats += 1
        self._write_claim(
            lease.path,
            self._claim_record(lease.index, lease.token, lease.beats),
            replace=True,
        )

    def release(self, lease: Lease) -> None:
        """Drop ``lease`` (only if still ours -- a stolen claim is left
        to its new owner).  Never raises: by release time the chunk is
        checkpointed, and a stale claim merely expires later."""
        try:
            current = self._read_claim(lease.path)
            if current is not None and current.get("token") == lease.token:
                lease.path.unlink(missing_ok=True)
        except OSError:
            pass

    @contextmanager
    def sustain(self, lease: Lease):
        """Heartbeat ``lease`` from a daemon thread while the body runs.

        The interval is ``ttl / 4``, so even a heartbeat that lands
        just after an observer's poll leaves the identity refreshed
        several times per TTL window.  The thread dies with the
        process -- which is the point: a SIGKILLed worker stops
        beating, its claim's identity freezes, and the lease expires.
        """
        stop = threading.Event()
        interval = max(self.ttl / 4.0, 0.01)

        def beat():
            while not stop.wait(interval):
                try:
                    self.heartbeat(lease)
                except StoreError:
                    return  # claim dir vanished: stop beating, keep computing

        thread = threading.Thread(
            target=beat, name=f"lease-beat-{lease.index}", daemon=True
        )
        thread.start()
        try:
            yield lease
        finally:
            stop.set()
            thread.join(timeout=self.ttl)


def drain_chunks(
    checkpoint: StudyCheckpoint,
    compute: Callable[[int], None],
    board: LeaseBoard,
    poll: float = 0.2,
    max_chunks: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> DrainReport:
    """Work-steal until every chunk of ``checkpoint``'s study is stored.

    ``compute(index)`` must compute chunk ``index`` and checkpoint it
    (the engine's :meth:`~repro.runtime.engine.Study.work` passes a
    closure over its streaming drivers).  The loop claims unfinished
    chunks through ``board``, sustains a heartbeat around each compute,
    and -- when every remaining chunk is claimed by someone else --
    polls every ``poll`` seconds for other workers' manifests to grow
    or their leases to expire.  ``max_chunks`` caps this worker's
    computes (chaos tests use it to stop a worker at a known kill
    point); the returned report then says ``drained=False`` and the
    study is someone else's to finish.
    """
    total = checkpoint.layout["num_chunks"]
    report = DrainReport(drained=False)
    pending = set(range(total)) - checkpoint.refresh()
    while pending:
        progress = False
        for index in sorted(pending):
            if max_chunks is not None and len(report.computed) >= max_chunks:
                return report
            lease = board.try_claim(index)
            if lease is None:
                continue
            try:
                # The previous owner may have finished the chunk in the
                # gap between our manifest scan and the steal.
                if index in checkpoint.refresh():
                    pending.discard(index)
                    progress = True
                    continue
                with obs_trace.span(
                    "scheduler.chunk", index=index, worker=board.worker,
                    stolen=lease.stolen,
                ):
                    with board.sustain(lease):
                        compute(index)
            finally:
                board.release(lease)
            report.computed.append(index)
            if lease.stolen:
                report.stolen.append(index)
            pending.discard(index)
            progress = True
        pending -= checkpoint.refresh()
        if pending and not progress:
            report.waits += 1
            sleep(poll)
    report.drained = True
    return report
