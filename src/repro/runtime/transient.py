"""Batched time-domain kernels: transient ensembles in one numpy stream.

The frequency-domain kernels in :mod:`repro.runtime.batch` eliminated
the per-sample Python loop for transfer functions and poles; this
module does the same for the time axis.  The reference path,
:func:`repro.analysis.timedomain.simulate_transient`, advances one
instance and one timestep per Python iteration -- an ensemble of ``m``
instances over ``nt`` steps costs ``m * nt`` interpreter round trips
plus ``m`` dense factorizations.

Here the companion matrix of every instance is factored **once** via
one stacked LAPACK ``gesv`` call that yields the closed-form
discrete-time propagators

- backward Euler:  ``x+ = M x + N u(t+)`` with
  ``M = (C/h + G)^{-1} (C/h)``, ``N = (C/h + G)^{-1} B``;
- trapezoidal:     ``x+ = M x + N (u(t+) + u(t))`` with
  ``M = (2C/h + G)^{-1} (2C/h - G)``, ``N = (2C/h + G)^{-1} B``,

after which *all* instances advance together: the time loop's body is a
single ``(m, q, q) @ (m, q)`` matmul over the whole ensemble block.
The input-waveform forcing terms are precomputed for every timestep in
one einsum, so nothing per-step happens in Python but the state
recurrence itself (which is inherently sequential).

Agreement contract: the propagator form is algebraically identical to
the reference solve-per-step recurrence; the regression tests pin the
two paths together to 1e-12 relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.runtime.batch import (
    _dense,
    _transfer_from_stacks,
    as_sample_matrix,
    batch_instantiate,
)
from repro.runtime.scenarios import InputWaveform, ScenarioPlan, StepInput


@dataclass
class BatchTransientResult:
    """Stacked transient trajectories of a scenario ensemble.

    ``outputs`` has shape ``(m, nt + 1, m_out)`` -- instance ``k``,
    timestep ``j``; ``states`` (shape ``(m, nt + 1, q)``) is kept only
    on request.  ``time`` is the shared ``(nt + 1,)`` axis.
    """

    time: np.ndarray
    outputs: np.ndarray
    samples: np.ndarray
    method: str
    states: Optional[np.ndarray] = None

    @property
    def num_samples(self) -> int:
        """Number of simulated parameter instances."""
        return self.outputs.shape[0]

    def output_envelope(
        self, output_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-timestep ``(min, mean, max)`` of one output across instances.

        The time-domain analogue of
        :meth:`~repro.runtime.scenarios.ScenarioSweep.magnitude_envelope`:
        the waveform spread process variation induces.
        """
        waveforms = self.outputs[:, :, output_index]
        return waveforms.min(axis=0), waveforms.mean(axis=0), waveforms.max(axis=0)


def _dense_ports(model) -> Tuple[np.ndarray, np.ndarray]:
    b = np.asarray(_dense(model.nominal.B), dtype=float)
    l_mat = np.asarray(_dense(model.nominal.L), dtype=float)
    return b, l_mat


def _sample_inputs(input_function, time: np.ndarray, num_inputs: int) -> np.ndarray:
    """``u(t)`` tabulated as ``(nt + 1, m_in)`` for every timestep.

    Accepts a declarative :class:`InputWaveform` (vectorized sampling)
    or any scalar callable accepted by
    :func:`repro.analysis.timedomain.simulate_transient` (scalars
    allowed for single-input systems).
    """
    if isinstance(input_function, InputWaveform) or hasattr(input_function, "sample"):
        return np.asarray(input_function.sample(time, num_inputs), dtype=float)
    u = np.empty((time.size, num_inputs))
    for j, t in enumerate(time):
        value = np.atleast_1d(np.asarray(input_function(float(t)), dtype=float))
        if value.shape != (num_inputs,):
            raise ValueError(
                f"input function returned shape {value.shape}, expected ({num_inputs},)"
            )
        u[j] = value
    return u


def _initial_states(x0, num_samples: int, order: int) -> np.ndarray:
    if x0 is None:
        return np.zeros((num_samples, order))
    x = np.asarray(x0, dtype=float)
    if x.shape == (order,):
        return np.broadcast_to(x, (num_samples, order)).copy()
    if x.shape == (num_samples, order):
        return x.copy()
    raise ValueError(
        f"x0 has shape {x.shape}, expected ({order},) or ({num_samples}, {order})"
    )


def _propagators(
    g: np.ndarray, c: np.ndarray, b: np.ndarray, h: float, method: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked discrete-time propagators ``(M, N)`` for every instance.

    One batched ``gesv`` factorization per instance, amortized over the
    ``q + m_in`` right-hand-side columns of ``[state-term | B]``.
    """
    if method == "backward_euler":
        lhs = c / h + g
        state_rhs = c / h
    else:
        lhs = c * (2.0 / h) + g
        state_rhs = c * (2.0 / h) - g
    num_samples, q, _ = g.shape
    rhs = np.concatenate(
        [state_rhs, np.broadcast_to(b, (num_samples,) + b.shape)], axis=2
    )
    solution = np.linalg.solve(lhs, rhs)
    return solution[:, :, :q], solution[:, :, q:]


def batch_simulate_transient(
    model,
    samples,
    input_function,
    t_final: float,
    num_steps: int,
    method: str = "trapezoidal",
    keep_states: bool = False,
    x0: Union[np.ndarray, None] = None,
) -> BatchTransientResult:
    """Fixed-step transient simulation of a whole parameter ensemble.

    The batched counterpart of
    :func:`repro.analysis.timedomain.simulate_transient`: every
    instance of ``samples`` (an ``(m, n_p)`` matrix, one row per
    instance) is integrated simultaneously with one factorization per
    instance and one vectorized ``(m, q)``-block update per timestep.

    Parameters
    ----------
    model:
        A dense parametric model (:class:`ParametricReducedModel` or
        compatible, see :func:`repro.runtime.batch.supports_batching`).
    samples:
        ``(m, n_p)`` parameter sample matrix.
    input_function:
        A declarative :class:`~repro.runtime.scenarios.InputWaveform`
        (preferred: sampled in one vectorized call) or a scalar
        callable ``u(t)`` as accepted by ``simulate_transient``.  The
        stimulus is shared across the ensemble; the variation lives in
        the parameters.
    t_final, num_steps:
        Simulation horizon and step count (``h = t_final/num_steps``).
    method:
        ``"trapezoidal"`` (default) or ``"backward_euler"``.
    keep_states:
        Store the stacked state trajectories (``(m, nt + 1, q)``).
    x0:
        Initial state: ``None`` (zero), a shared ``(q,)`` vector, or a
        per-instance ``(m, q)`` matrix.
    """
    matrix = as_sample_matrix(model, samples)
    g, c = batch_instantiate(model, matrix)
    return _simulate_from_stacks(
        model, matrix, g, c, input_function, t_final, num_steps,
        method=method, keep_states=keep_states, x0=x0,
    )


def _simulate_from_stacks(
    model,
    matrix: np.ndarray,
    g: np.ndarray,
    c: np.ndarray,
    input_function,
    t_final: float,
    num_steps: int,
    method: str,
    keep_states: bool,
    x0,
) -> BatchTransientResult:
    """The integration core, over already-instantiated ``(G, C)`` stacks.

    Split out so :func:`batch_transient_study` can reuse one
    instantiation pass for both the simulation and the DC gains.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if method not in ("trapezoidal", "backward_euler"):
        raise ValueError(f"unknown method {method!r}")

    b, l_mat = _dense_ports(model)
    num_samples = matrix.shape[0]
    q = g.shape[1]
    h = t_final / num_steps
    time = np.linspace(0.0, t_final, num_steps + 1)

    u = _sample_inputs(input_function, time, b.shape[1])
    m_prop, n_prop = _propagators(g, c, b, h, method)
    if method == "backward_euler":
        drive = u[1:]
    else:
        drive = u[1:] + u[:-1]
    # All forcing terms N u in one contraction: (m, nt, q).
    forcing = np.einsum("kqi,ti->ktq", n_prop, drive)

    x = _initial_states(x0, num_samples, q)
    outputs = np.empty((num_samples, num_steps + 1, l_mat.shape[1]))
    # The output projection contracts over q with the ensemble size as a
    # free GEMM dimension; einsum's fixed per-element reduction keeps the
    # result independent of the batch (= streaming chunk) size, which the
    # chunked drivers in runtime.stream rely on for bit-identity.
    outputs[:, 0] = np.einsum("kq,qo->ko", x, l_mat)
    states = np.empty((num_samples, num_steps + 1, q)) if keep_states else None
    if keep_states:
        states[:, 0] = x
    for step in range(1, num_steps + 1):
        x = np.matmul(m_prop, x[:, :, None])[:, :, 0] + forcing[:, step - 1]
        outputs[:, step] = np.einsum("kq,qo->ko", x, l_mat)
        if keep_states:
            states[:, step] = x
    return BatchTransientResult(
        time=time, outputs=outputs, samples=matrix, method=method, states=states
    )


def batch_step_responses(
    model,
    samples,
    amplitude: float = 1.0,
    t_final: Optional[float] = None,
    num_steps: int = 500,
    input_index: int = 0,
    method: str = "trapezoidal",
) -> BatchTransientResult:
    """Stacked unit-step responses (the 0+ convention of ``simulate_step``).

    ``t_final`` defaults to eight nominal dominant time constants (see
    :func:`default_horizon`).
    """
    if t_final is None:
        t_final = default_horizon(model)
    waveform = StepInput(amplitude=amplitude, input_index=input_index)
    return batch_simulate_transient(
        model, samples, waveform, t_final, num_steps, method=method
    )


def default_horizon(model) -> float:
    """Eight nominal dominant time constants -- the step-settling window.

    The horizon rule of :func:`repro.analysis.delay.settling_horizon`,
    evaluated once on the nominal system and shared across the
    ensemble.
    """
    # Imported lazily: repro.analysis builds on the runtime package.
    from repro.analysis.delay import settling_horizon

    return settling_horizon(model.nominal)


@dataclass
class TransientStudy:
    """A scenario plan realized as a batched transient ensemble.

    Bundles the plan (or raw sample matrix), the stimulus, and the
    stacked :class:`BatchTransientResult`, plus the DC gains and the
    per-instance steady-state output levels
    ``y_inf = H(0, p_k) u(t_final)`` (shape ``(m, m_out)``) that every
    relative threshold metric is measured against -- so a 2 V step and
    a 1 V step report the same 50% delay.
    """

    plan: Optional[ScenarioPlan]
    waveform: object
    result: BatchTransientResult
    dc_gains: np.ndarray
    steady_states: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of simulated parameter instances."""
        return self.result.num_samples

    @property
    def time(self) -> np.ndarray:
        """Shared time axis of the ensemble."""
        return self.result.time

    @property
    def samples(self) -> np.ndarray:
        """The realized ``(m, n_p)`` sample matrix."""
        return self.result.samples

    def output_envelope(
        self, output_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-timestep ``(min, mean, max)`` across instances."""
        return self.result.output_envelope(output_index=output_index)

    def _reference_levels(self, output_index: int, reference: str) -> np.ndarray:
        """Per-instance 100% levels the thresholds are measured against.

        ``"steady"`` is ``y_inf = H(0) u(t_final)`` -- the right notion
        for settling stimuli (step, ramp, PWL with a held end level).
        ``"peak"`` is each instance's extremal simulated output -- the
        right notion for pulses and other stimuli that return to zero,
        where the steady state is 0 and steady-relative thresholds are
        undefined.
        """
        if reference == "steady":
            return self.steady_states[:, output_index]
        if reference == "peak":
            waveforms = self.result.outputs[:, :, output_index]
            extremal = np.abs(waveforms).argmax(axis=1)
            return waveforms[np.arange(waveforms.shape[0]), extremal]
        raise ValueError(f"unknown reference {reference!r} (use 'steady' or 'peak')")

    def _normalized(self, output_index: int, reference: str) -> np.ndarray:
        """Waveforms scaled so each instance's reference level sits at 1.

        Rows whose reference level is zero (e.g. a stimulus that never
        switches on inside the window, or a structurally zero transfer
        entry) become all-``nan`` -- the vectorized analogue of the
        scalar functions' "undefined" error.
        """
        final = self._reference_levels(output_index, reference)
        waveforms = self.result.outputs[:, :, output_index]
        with np.errstate(divide="ignore", invalid="ignore"):
            normalized = waveforms / final[:, None]
        normalized[final == 0.0] = np.nan
        return normalized

    def delays(
        self,
        threshold: float = 0.5,
        output_index: int = 0,
        reference: str = "steady",
    ) -> np.ndarray:
        """Per-instance threshold-crossing delays (vectorized).

        Thresholds are relative to each instance's reference level
        under this study's stimulus: the steady state
        (amplitude-scaled analogue of
        :func:`repro.analysis.delay.threshold_delay`) by default, or
        the per-instance peak with ``reference="peak"`` for
        non-settling stimuli (pulses, sines).  Instances that never
        cross inside the horizon -- or whose reference level is zero --
        yield ``nan``.
        """
        from repro.analysis.delay import threshold_crossing_times

        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        return threshold_crossing_times(
            self.result.time, self._normalized(output_index, reference), threshold
        )

    def slews(
        self,
        low: float = 0.1,
        high: float = 0.9,
        output_index: int = 0,
        reference: str = "steady",
    ) -> np.ndarray:
        """Per-instance ``low -> high`` rise times (vectorized).

        Same ``reference`` semantics as :meth:`delays`; ``nan`` where
        either threshold is never crossed or the reference level is
        zero.
        """
        from repro.analysis.delay import threshold_crossing_times

        if not 0.0 < low < high < 1.0:
            raise ValueError("need 0 < low < high < 1")
        normalized = self._normalized(output_index, reference)
        t_low = threshold_crossing_times(self.result.time, normalized, low)
        t_high = threshold_crossing_times(self.result.time, normalized, high)
        return t_high - t_low


def _transient_study(
    model,
    scenarios,
    waveform=None,
    t_final: Optional[float] = None,
    num_steps: int = 500,
    method: str = "trapezoidal",
    keep_states: bool = False,
    x0: Union[np.ndarray, None] = None,
) -> TransientStudy:
    """Simulate a scenario plan's whole ensemble through one batched run.

    The time-domain sibling of the dense sweep kernel: ``scenarios`` is
    either a :class:`ScenarioPlan` (realized with
    ``model.num_parameters``) or a raw ``(m, n_p)`` sample matrix, and
    ``waveform`` any :class:`InputWaveform` (default: unit
    :class:`StepInput`).  ``t_final`` defaults to
    :func:`default_horizon`.  Returns a :class:`TransientStudy` with
    batched delay/slew extraction attached.

    This is the engine-internal kernel behind the transient routes of
    :class:`repro.runtime.engine.Study`; the historical public name
    :func:`batch_transient_study` is a deprecated shim over it.
    """
    if isinstance(scenarios, ScenarioPlan) or hasattr(scenarios, "sample_matrix"):
        plan: Optional[ScenarioPlan] = scenarios
        samples = scenarios.sample_matrix(model.num_parameters)
    else:
        plan = None
        samples = as_sample_matrix(model, scenarios)
    if waveform is None:
        waveform = StepInput()
    if t_final is None:
        t_final = default_horizon(model)
    # One instantiation pass serves both the simulation and the DC
    # gains behind the relative threshold metrics.
    g, c = batch_instantiate(model, samples)
    result = _simulate_from_stacks(
        model, samples, g, c, waveform, t_final, num_steps,
        method=method, keep_states=keep_states, x0=x0,
    )
    dc_gains = _transfer_from_stacks(model, g, c, 0.0).real
    # Steady output level under *this* stimulus: y_inf = H(0) u(t_final),
    # so thresholds track the drive's amplitude and end level.
    u_end = _sample_inputs(waveform, result.time[-1:], dc_gains.shape[2])[0]
    steady_states = dc_gains @ u_end
    return TransientStudy(
        plan=plan,
        waveform=waveform,
        result=result,
        dc_gains=dc_gains,
        steady_states=steady_states,
    )


def batch_transient_study(
    model,
    scenarios,
    waveform=None,
    t_final: Optional[float] = None,
    num_steps: int = 500,
    method: str = "trapezoidal",
    keep_states: bool = False,
    x0: Union[np.ndarray, None] = None,
) -> TransientStudy:
    """Deprecated shim: one-shot batched transient ensemble study.

    Delegates to the identical internal kernel the engine uses, so
    results are bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(scenarios).transient(waveform, t_final,
    num_steps).run()`` instead.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "batch_transient_study",
        "Study(model).scenarios(scenarios).transient(waveform, t_final, "
        "num_steps).run()",
    )
    return _transient_study(
        model,
        scenarios,
        waveform=waveform,
        t_final=t_final,
        num_steps=num_steps,
        method=method,
        keep_states=keep_states,
        x0=x0,
    )
