"""Content-addressed macromodel cache.

Reduction is the expensive, rarely-changing half of every workflow;
evaluation is the cheap, hot half.  This cache keys a reduced model by
a SHA-256 fingerprint of *what produced it* -- the full parametric
system's matrices plus the reducer's configuration -- and persists it
through :mod:`repro.core.io`, so a repeated workload (same netlist,
same reducer settings) skips reduction entirely and goes straight to
the batched evaluation kernels.

The fingerprint is content-addressed, not name-addressed: two
different scripts that assemble the same system and reducer hit the
same cache entry, and any change to a matrix entry, a parameter name,
or a reducer knob produces a different key.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.core.io import load_model, save_model
from repro.core.model import ParametricReducedModel
from repro.obs import metrics as obs_metrics

_CACHE_HITS = obs_metrics.counter("cache.hits")
_CACHE_MISSES = obs_metrics.counter("cache.misses")
_CACHE_EVICTIONS = obs_metrics.counter("cache.evictions")
_CACHE_EVICTED_BYTES = obs_metrics.counter("cache.evicted_bytes")


def _hash_matrix(digest, tag: str, matrix) -> None:
    digest.update(tag.encode())
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        digest.update(b"sparse")
        digest.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(csr.data, dtype=np.float64).tobytes())
        return
    array = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
    digest.update(b"dense")
    digest.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    digest.update(array.tobytes())


def system_fingerprint(parametric) -> str:
    """SHA-256 over a parametric system's matrices and parameter names.

    Covers the nominal quadruple ``{G0, C0, B, L}``, every sensitivity
    pair ``(G_i, C_i)``, and the parameter names -- everything reduction
    consumes.  Titles and port labels are deliberately excluded so a
    renamed copy of the same circuit still hits the cache.
    """
    digest = hashlib.sha256()
    nominal = parametric.nominal
    for tag, matrix in (("G0", nominal.G), ("C0", nominal.C), ("B", nominal.B), ("L", nominal.L)):
        _hash_matrix(digest, tag, matrix)
    for i, (gi, ci) in enumerate(zip(parametric.dG, parametric.dC)):
        _hash_matrix(digest, f"dG{i}", gi)
        _hash_matrix(digest, f"dC{i}", ci)
    digest.update(json.dumps(list(parametric.parameter_names)).encode())
    return digest.hexdigest()


def array_fingerprint(array) -> str:
    """SHA-256 over an array's dtype, shape, and raw bytes.

    The building block the :class:`~repro.runtime.store.StudyStore`
    manifests use to key sample matrices and frequency axes: two
    studies share a fingerprint component iff the arrays are
    bit-identical, which is exactly the granularity the resumable
    chunk records promise.
    """
    array = np.ascontiguousarray(np.asarray(array))
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    digest.update(array.tobytes())
    return digest.hexdigest()


def target_fingerprint(target) -> str:
    """Content fingerprint of any evaluation target the engine accepts.

    Parametric objects (full systems *and* reduced macromodels share
    the ``nominal`` + ``dG``/``dC`` shape contract) reuse
    :func:`system_fingerprint`, so a study persisted against a cached
    reduction and one persisted against a freshly-reduced copy of the
    same model land on the same manifest key.  Duck-typed targets
    without the parametric contract fall back to a hash of their
    ``repr``.
    """
    if all(hasattr(target, name) for name in ("nominal", "dG", "dC")):
        return system_fingerprint(target)
    return hashlib.sha256(repr(target).encode()).hexdigest()


def cached_target_fingerprint(target) -> str:
    """:func:`target_fingerprint`, memoized on the target object.

    Hashing every matrix of a model is the dominant cost of building a
    plan-cache key, and the matrices of a model object never change
    (the engine treats targets as immutable inputs).  The digest is
    therefore stored on the target itself; objects that reject new
    attributes (``__slots__``) simply hash on every call.
    """
    cached = getattr(target, "_target_fingerprint", None)
    if cached is not None:
        return cached
    fingerprint = target_fingerprint(target)
    try:
        target._target_fingerprint = fingerprint
    except AttributeError:
        pass
    return fingerprint


def _stable_config_value(value):
    if isinstance(value, np.ndarray):
        return ["ndarray", list(value.shape), hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_stable_config_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _stable_config_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def reducer_fingerprint(reducer) -> str:
    """SHA-256 over a reducer's class and public configuration.

    Any object with a ``reduce(parametric)`` method works; its
    ``vars()`` (non-underscore entries) form the configuration record,
    so changing e.g. ``num_moments`` or ``rank`` changes the key.
    """
    config = {
        name: _stable_config_value(value)
        for name, value in sorted(vars(reducer).items())
        if not name.startswith("_")
    } if hasattr(reducer, "__dict__") else repr(reducer)
    record = {
        "class": f"{type(reducer).__module__}.{type(reducer).__qualname__}",
        "config": config,
    }
    return hashlib.sha256(json.dumps(record, sort_keys=True).encode()).hexdigest()


class ModelCache:
    """Directory-backed, content-addressed cache of reduced macromodels.

    Parameters
    ----------
    directory:
        Cache root; created if missing.  Each entry is one ``.npz``
        archive written by :func:`repro.core.io.save_model`, named by
        its content key.
    max_entries:
        Optional cap on the number of cached archives.  ``None``
        (default) keeps the historical unbounded behaviour.
    max_bytes:
        Optional cap on the total archive bytes on disk.  ``None``
        (default) is unbounded.

    When either cap is set the cache evicts least-recently-used
    entries after each :meth:`store` -- recency is tracked through the
    archive mtime, which :meth:`load` refreshes on every hit, so the
    ordering survives process restarts and is shared between processes
    pointing at the same directory.  Filesystem mtimes can be coarse
    (classically one second), which would let a just-hit entry *tie*
    with the genuinely oldest one and be evicted by name order; an
    in-process monotonic touch counter breaks exactly those ties, so
    within one process recency is exact regardless of timestamp
    granularity (across processes the mtime remains the shared
    truth).  Evictions are tallied on the process-wide
    ``cache.evictions`` / ``cache.evicted_bytes`` counters, mirroring
    the ``engine.plan_cache.*`` pattern.

    The ``hits``/``misses`` counters make cache behaviour observable in
    tests and CLI summaries.
    """

    def __init__(self, directory, max_entries=None, max_bytes=None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # name -> monotonic touch ordinal; tie-break for coarse mtimes.
        self._recency = {}
        self._touch_counter = 0

    def key(self, parametric, reducer) -> str:
        """Content key for (system, reducer): hash of both fingerprints."""
        digest = hashlib.sha256()
        digest.update(system_fingerprint(parametric).encode())
        digest.update(reducer_fingerprint(reducer).encode())
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        """On-disk location of the entry for ``key``."""
        return self.directory / f"{key}.npz"

    def load(self, key: str) -> Optional[ParametricReducedModel]:
        """The cached model for ``key``, or ``None`` when absent.

        Every lookup is tallied on the process-wide ``cache.hits`` /
        ``cache.misses`` counters of the :mod:`repro.obs` metrics
        registry (the per-instance ``hits``/``misses`` attributes keep
        their historical :meth:`get_or_reduce`-only semantics).
        """
        path = self.path_for(key)
        if not path.exists():
            _CACHE_MISSES.inc()
            return None
        _CACHE_HITS.inc()
        model = load_model(path)
        try:
            os.utime(path)  # refresh LRU recency for the eviction scan
        except OSError:
            pass
        self._touch(path)
        return model

    def store(self, key: str, model: ParametricReducedModel) -> Path:
        """Persist ``model`` under ``key``; returns the archive path.

        The archive is written to a temporary sibling and atomically
        renamed into place, so concurrent readers (parallel CI jobs
        sharing a cache directory) never observe a half-written entry.
        """
        path = self.path_for(key)
        # Must keep the .npz suffix: numpy appends it to other names.
        scratch = path.with_name(f".{key}.{os.getpid()}.tmp.npz")
        try:
            save_model(model, scratch)
            os.replace(scratch, path)
        finally:
            scratch.unlink(missing_ok=True)
        self._touch(path)
        self._evict(keep=path)
        return path

    def _touch(self, path: Path) -> None:
        """Record an in-process recency ordinal for ``path``."""
        self._touch_counter += 1
        self._recency[path.name] = self._touch_counter

    @staticmethod
    def _entry_mtime(stat) -> float:
        """The recency timestamp of one archive (tests monkeypatch this
        to model coarse-granularity filesystems)."""
        return stat.st_mtime

    def _entries(self):
        """(mtime, size, path) for every committed archive, oldest first.

        Ordering is ``(mtime, in-process touch ordinal, name)``: the
        mtime is the cross-process truth, but on filesystems with
        coarse timestamps a just-touched entry can share its mtime with
        the oldest one -- the touch ordinal settles exactly those ties
        (an entry never touched by this process ranks oldest within its
        mtime bucket, which is the conservative choice).
        """
        records = []
        for entry in self.directory.glob("*.npz"):
            if entry.name.startswith("."):
                continue  # in-flight scratch files are not cache entries
            try:
                stat = entry.stat()
            except OSError:
                continue
            records.append((self._entry_mtime(stat), stat.st_size, entry))
        records.sort(
            key=lambda record: (
                record[0],
                self._recency.get(record[2].name, 0),
                record[2].name,
            )
        )
        return records

    def _evict(self, keep: Path) -> None:
        """Drop least-recently-used archives until both caps hold.

        The entry just stored (``keep``) is never evicted, even when it
        alone exceeds ``max_bytes`` -- a cache that silently discards
        what it was just asked to remember would turn every oversized
        model into a permanent miss loop.
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        records = self._entries()
        total = sum(size for _, size, _ in records)
        count = len(records)
        for _, size, entry in records:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            self._recency.pop(entry.name, None)
            count -= 1
            total -= size
            self.evictions += 1
            _CACHE_EVICTIONS.inc()
            _CACHE_EVICTED_BYTES.inc(size)

    def get_or_reduce(self, parametric, reducer) -> ParametricReducedModel:
        """The reduced model for (system, reducer), reducing on miss.

        On a hit the model is loaded from disk (bit-exact round trip
        through :mod:`repro.core.io`); on a miss ``reducer.reduce`` runs
        and its product is stored before being returned.
        """
        key = self.key(parametric, reducer)
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        model = reducer.reduce(parametric)
        self.store(key, model)
        return model

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))

    def __repr__(self) -> str:
        return (
            f"ModelCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
