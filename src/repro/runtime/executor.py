"""Execution backends for embarrassingly-parallel model evaluations.

The batched kernels in :mod:`repro.runtime.batch` cover the *reduced*
side of a study; the *full*-model reference solves (one sparse
factorization + eigendecomposition per instance) remain independent
per-sample tasks.  This module puts a serial backend and a chunked
multiprocessing backend behind one ordered-``map`` interface so
analysis code can scale out without changing shape:

>>> executor = resolve_executor("process")
>>> results = executor.map(task, items)        # ordered, like map()

Both backends preserve input order and return a list.  The serial
backend is the default everywhere -- it is deterministic, has zero
startup cost, and (because each task is a pure function) the process
backend produces bit-identical results, just faster on multicore
machines.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Union


class SerialExecutor:
    """In-process, in-order execution (the deterministic default)."""

    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item, in order, in this process."""
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor:
    """Chunked multiprocessing execution over a process pool.

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()``).
    chunksize:
        Items dispatched per inter-process message.  Defaults to an
        even split of the workload across ``4 x max_workers`` chunks,
        which amortizes pickling without starving the pool.

    Tasks and their arguments must be picklable (module-level
    functions, models built from numpy/scipy arrays).
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def _effective_chunksize(self, num_items: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, num_items // (4 * workers))

    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item across the pool; ordered results."""
        items = list(items)
        if not items:
            return []
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items, chunksize=self._effective_chunksize(len(items))))

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers}, chunksize={self.chunksize})"


ExecutorLike = Union[None, str, int, SerialExecutor, ProcessExecutor]


def resolve_executor(spec: ExecutorLike):
    """Coerce a user-facing spec into an executor object.

    Accepted specs: ``None``/``"serial"`` (serial), ``"process"`` /
    ``"processes"`` (process pool with default workers), a positive
    ``int`` (process pool with that many workers; ``1`` means serial),
    or any object that already provides an ordered ``map`` method.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialExecutor()
        if name in ("process", "processes"):
            return ProcessExecutor()
        raise ValueError(f"unknown executor spec {spec!r} (use 'serial' or 'process')")
    if isinstance(spec, bool):
        raise ValueError("executor spec must not be a bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError("executor worker count must be >= 1")
        return SerialExecutor() if spec == 1 else ProcessExecutor(max_workers=spec)
    if hasattr(spec, "map"):
        return spec
    raise ValueError(f"cannot interpret executor spec {spec!r}")
