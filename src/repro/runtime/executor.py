"""Execution backends for embarrassingly-parallel model evaluations.

The batched kernels in :mod:`repro.runtime.batch` cover the *reduced*
side of a study; the *full*-model reference solves (one sparse
factorization + eigendecomposition per instance) remain independent
per-sample tasks.  This module puts four backends behind one
ordered-``map`` interface so analysis code can scale out without
changing shape:

>>> executor = resolve_executor("process")
>>> results = executor.map(task, items)        # ordered, like map()

- :class:`SerialExecutor` -- deterministic in-process default;
- :class:`ThreadExecutor` -- a thread pool.  The kernels that dominate
  full-model solves (LAPACK eigendecompositions, SuperLU
  factorizations, batched BLAS) release the GIL, so threads reach real
  parallelism with zero pickling or process-startup cost;
- :class:`ProcessExecutor` -- chunked multiprocessing for pure-Python
  bottlenecks;
- :class:`SharedMemoryExecutor` -- multiprocessing whose
  :meth:`~SharedMemoryExecutor.map_array` ships the sample matrix to
  workers through one :mod:`multiprocessing.shared_memory` block
  instead of pickling per-item copies: workers attach to the block and
  read their chunk as a zero-copy numpy view.

Every backend preserves input order and returns a list, and (because
each task is a pure function) produces bit-identical results -- the
parallel backends are just faster on multicore machines.  All backends
also provide ``map_array(fn, matrix)``, mapping ``fn`` over the rows
of a 2-D array; only the shared-memory backend specializes it, the
rest fall back to ``map``.

Pool lifecycle
--------------

Every executor is a context manager.  Outside a ``with`` block the
pool-backed executors spin a fresh pool per call and tear it down
before returning -- no workers ever outlive a ``map``.  Inside a
``with`` block (or between explicit ``__enter__``/``close`` calls) one
persistent pool is reused across calls and shut down deterministically
on exit, which is how the :class:`~repro.runtime.engine.Study` engine
runs the executors it constructs:

>>> with ProcessExecutor(max_workers=4) as executor:
...     first = executor.map(task, items)      # same pool ...
...     second = executor.map(task, more)      # ... reused
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Union

import numpy as np


def _chunk_bounds(num_items: int, chunksize: int) -> List[tuple]:
    return [(lo, min(lo + chunksize, num_items)) for lo in range(0, num_items, chunksize)]


class SerialExecutor:
    """In-process, in-order execution (the deterministic default)."""

    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item, in order, in this process."""
        return [fn(item) for item in items]

    def map_array(self, fn: Callable, matrix: np.ndarray) -> List:
        """Apply ``fn`` to every row of a 2-D array, in order."""
        return self.map(fn, list(np.asarray(matrix)))

    def close(self) -> None:
        """No pool to release; kept for interface symmetry."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PooledExecutor:
    """Shared pool lifecycle for the thread/process backends.

    Subclasses implement :meth:`_make_pool`.  Outside a context the
    pool is ephemeral per call; between ``__enter__`` and ``close``
    one persistent pool is reused and shut down deterministically.
    Contexts nest: each ``__enter__`` increments a depth counter and
    each ``close`` decrements it, so the pool (and its warm workers)
    survives until the *outermost* scope exits -- the work-stealing
    drain loop holds one pool across every chunk it claims while the
    per-chunk compute path enters and exits the same executor.
    """

    _pool = None
    _depth = 0

    def _make_pool(self):
        raise NotImplementedError

    def _run_pooled(self, body: Callable):
        """Run ``body(pool)`` on the persistent pool or an ephemeral one."""
        if self._pool is not None:
            return body(self._pool)
        with self._make_pool() as pool:
            return body(pool)

    def close(self) -> None:
        """Leave one pool scope; the outermost exit joins the workers."""
        if self._depth > 1:
            self._depth -= 1
            return
        self._depth = 0
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        if self._pool is None:
            self._pool = self._make_pool()
            self._depth = 0
        self._depth += 1
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class ThreadExecutor(_PooledExecutor):
    """Thread-pool execution for GIL-releasing numeric tasks.

    The full-model reference solves spend their time inside LAPACK /
    SuperLU / BLAS kernels, which drop the GIL -- a thread pool then
    scales across cores with none of the pickling, fork, or import
    overhead of a process pool, and shares every model object by
    reference.  For pure-Python tasks prefer :class:`ProcessExecutor`.

    Parameters
    ----------
    max_workers:
        Thread count (default: ``os.cpu_count()``).
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers)

    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item across the thread pool; ordered."""
        items = list(items)
        if not items:
            return []
        return self._run_pooled(lambda pool: list(pool.map(fn, items)))

    def map_array(self, fn: Callable, matrix: np.ndarray) -> List:
        """Apply ``fn`` to every row of a 2-D array; ordered."""
        return self.map(fn, list(np.asarray(matrix)))

    def __repr__(self) -> str:
        return f"ThreadExecutor(max_workers={self.max_workers})"


class ProcessExecutor(_PooledExecutor):
    """Chunked multiprocessing execution over a process pool.

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()``).
    chunksize:
        Items dispatched per inter-process message.  Defaults to an
        even split of the workload across ``4 x max_workers`` chunks,
        which amortizes pickling without starving the pool.

    Tasks and their arguments must be picklable (module-level
    functions, models built from numpy/scipy arrays).
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _effective_chunksize(self, num_items: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, num_items // (4 * workers))

    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item across the pool; ordered results."""
        items = list(items)
        if not items:
            return []
        chunksize = self._effective_chunksize(len(items))
        return self._run_pooled(
            lambda pool: list(pool.map(fn, items, chunksize=chunksize))
        )

    def map_array(self, fn: Callable, matrix: np.ndarray) -> List:
        """Apply ``fn`` to every row of a 2-D array; ordered."""
        return self.map(fn, list(np.asarray(matrix)))

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers}, chunksize={self.chunksize})"


def _shared_memory_channel_safe() -> bool:
    """Whether the zero-copy sample channel is safe on this platform.

    Python 3.13+ attaches with ``track=False``, which is safe under any
    start method.  On older versions every worker attach registers the
    segment with the worker's resource tracker; with ``fork`` the
    workers share the creator's tracker (registration is an idempotent
    set-add, the creator's single unlink retires it), but with
    ``spawn``/``forkserver`` each worker's *own* tracker would unlink
    the still-live segment at worker exit.  In that configuration
    :meth:`SharedMemoryExecutor.map_array` falls back to the pickling
    path.
    """
    if sys.version_info >= (3, 13):
        return True
    import multiprocessing

    return multiprocessing.get_start_method(allow_none=False) == "fork"


def _attach_shared_memory(name: str):
    """Attach to a shared block without taking ownership of its cleanup.

    Python 3.13+ supports ``track=False`` (no resource-tracker
    registration on attach).  Older versions register every attach, but
    with the default fork start method the workers share the creator's
    tracker and registration is a set-add -- idempotent -- so simply
    attaching is safe: the creator's single ``unlink`` retires the one
    tracked entry.  (Do NOT unregister here: that would remove the
    creator's registration out from under it.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _shared_chunk_task(fn, name, shape, dtype_str, bounds):
    """Worker-side body: attach, map ``fn`` over the chunk's rows, detach.

    Rows are copied out of the shared view before calling ``fn`` so no
    result can alias the block after it is unlinked.
    """
    lo, hi = bounds
    block = _attach_shared_memory(name)
    try:
        matrix = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=block.buf)
        return [fn(np.array(row)) for row in matrix[lo:hi]]
    finally:
        block.close()


class SharedMemoryExecutor(ProcessExecutor):
    """Multiprocessing backend with a zero-copy sample-matrix channel.

    :meth:`map` behaves exactly like :class:`ProcessExecutor.map`.
    :meth:`map_array` is the specialty: the 2-D array is written to one
    :class:`multiprocessing.shared_memory.SharedMemory` block, and each
    worker message carries only ``(block name, shape, dtype, row
    range)`` -- a few hundred bytes regardless of how many samples the
    study ships.  Workers attach and read their rows as numpy views, so
    a million-sample matrix crosses the process boundary once, not once
    per chunk.
    """

    def map_array(self, fn: Callable, matrix: np.ndarray) -> List:
        """Apply ``fn`` to every row, shipping rows via shared memory.

        Falls back to the pickling :meth:`ProcessExecutor.map_array`
        where worker attaches cannot be made tracker-safe (spawn-based
        start methods on Python < 3.13) -- same results, just without
        the zero-copy channel.
        """
        from multiprocessing import shared_memory

        matrix = np.ascontiguousarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"map_array expects a 2-D array, got shape {matrix.shape}")
        if not _shared_memory_channel_safe():
            return super().map_array(fn, matrix)
        num_items = matrix.shape[0]
        if num_items == 0:
            return []
        block = shared_memory.SharedMemory(create=True, size=max(matrix.nbytes, 1))
        try:
            view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=block.buf)
            view[:] = matrix
            bounds = _chunk_bounds(num_items, self._effective_chunksize(num_items))

            def body(pool) -> List:
                futures = [
                    pool.submit(
                        _shared_chunk_task,
                        fn,
                        block.name,
                        matrix.shape,
                        matrix.dtype.str,
                        chunk,
                    )
                    for chunk in bounds
                ]
                collected: List = []
                for future in futures:
                    collected.extend(future.result())
                return collected

            return self._run_pooled(body)
        finally:
            block.close()
            block.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedMemoryExecutor(max_workers={self.max_workers}, "
            f"chunksize={self.chunksize})"
        )


ExecutorLike = Union[
    None, str, int, SerialExecutor, ThreadExecutor, ProcessExecutor, SharedMemoryExecutor
]

def resolve_executor(spec: ExecutorLike):
    """Coerce a user-facing spec into an executor object.

    Accepted specs: ``None``/``"serial"`` (serial), ``"thread"`` /
    ``"threads"`` (thread pool), ``"process"`` / ``"processes"``
    (process pool), ``"shared"`` / ``"sharedmem"`` (process pool with
    the shared-memory sample channel), a positive ``int`` (process pool
    with that many workers; ``1`` means serial), or an
    already-constructed executor instance -- ours or any foreign object
    with an ordered ``map`` method -- which passes through as-is,
    pool state included (the final ``hasattr`` branch).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialExecutor()
        if name in ("thread", "threads"):
            return ThreadExecutor()
        if name in ("process", "processes"):
            return ProcessExecutor()
        if name in ("shared", "sharedmem", "shared-memory"):
            return SharedMemoryExecutor()
        raise ValueError(
            f"unknown executor spec {spec!r} "
            "(use 'serial', 'thread', 'process', or 'shared')"
        )
    if isinstance(spec, bool):
        raise ValueError("executor spec must not be a bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError("executor worker count must be >= 1")
        return SerialExecutor() if spec == 1 else ProcessExecutor(max_workers=spec)
    if hasattr(spec, "map"):
        return spec
    raise ValueError(f"cannot interpret executor spec {spec!r}")


def resolve_owned_executor(spec: ExecutorLike):
    """``(executor, owned)``: resolve a spec and say who shuts it down.

    Executors the caller merely *names* (``None``, ``"thread"``, a
    worker count) are constructed here and are ``owned`` by the
    resolving scope, which must close them deterministically --
    :class:`~repro.runtime.engine.Study` holds its owned executor open
    across every chunk of a (sharded) run and joins the workers when
    that shard's run finishes, so two shards of one study never share
    pool state.  Already-constructed executor instances (anything with
    a ``map``) pass through with ``owned=False`` and stay the caller's
    responsibility, pool lifecycle included.
    """
    owned = not (spec is not None and hasattr(spec, "map"))
    return resolve_executor(spec), owned


def executor_map_array(executor, fn: Callable, matrix: np.ndarray) -> List:
    """``executor.map_array`` with a ``map`` fallback for foreign objects.

    User-supplied executors only promise an ordered ``map``; this
    adapter lets study drivers use the shared-memory fast path when it
    exists without narrowing what they accept.
    """
    map_array = getattr(executor, "map_array", None)
    if map_array is not None:
        return map_array(fn, matrix)
    return executor.map(fn, list(np.asarray(matrix)))
