"""The serving layer for reduced macromodels (batch, cache, parallel).

Reduction produces a macromodel once; everything downstream -- Monte
Carlo sign-off, corner sweeps, sensitivity studies, timing extraction
-- evaluates it thousands of times.  This package is the seam where
that reuse is made fast and declarative:

- :mod:`repro.runtime.engine` -- **the one front door**: the
  declarative :class:`Study` builder
  (``Study(model).scenarios(plan).sweep(freqs).run()``) whose planner
  inspects the target and workload and routes to the optimal kernel
  below -- dense batched, sparse shared-pattern, streamed under a
  memory budget, or executor-mapped full-order solves -- with an
  inspectable :class:`ExecutionPlan` and a bit-identical-to-legacy
  guarantee on every route.  The historical free functions
  (``batch_sweep_study``, ``stream_sweep_study``,
  ``batch_transient_study``, ``run_frequency_scenarios``, the sparse
  kernels) remain importable as deprecated shims that emit one
  ``FutureWarning`` per call.
- :mod:`repro.runtime.batch` -- vectorized instantiation
  ``G(P) = G0 + P . dG`` over whole sample matrices, with batched
  transfer-function, frequency-response, pole, and sensitivity kernels
  that replace per-sample Python loops.
- :mod:`repro.runtime.transient` -- batched *time-domain* kernels:
  :func:`batch_simulate_transient` factors each instance's companion
  matrix once (one stacked LAPACK solve yields the closed-form
  discrete propagators) and advances the whole ensemble per timestep
  as one ``(m, q)``-block matmul; :func:`batch_transient_study`
  composes a scenario plan with an input waveform and attaches
  vectorized delay/slew extraction; :func:`batch_step_responses` and
  :func:`default_horizon` cover the step-response staple.
- :mod:`repro.runtime.scenarios` -- declarative
  :class:`MonteCarloPlan` / :class:`CornerPlan` / :class:`GridPlan`
  objects that generate sample matrices, plus the input-waveform plans
  :class:`StepInput` / :class:`RampInput` / :class:`PWLInput` /
  :class:`SineInput` that drive both the batched kernels and the
  scalar reference loop from one object.
- :mod:`repro.runtime.lowrank` -- the low-rank update fast path: when
  a model's parameter sensitivities are genuinely low-rank
  (:func:`detect_lowrank_structure`), one nominal eigendecomposition
  plus small Woodbury correction blocks replaces the per-instance
  dense eigensolves of the sweep kernel
  (:class:`LowRankEnsembleSolver`); the :class:`Study` planner routes
  to it automatically on a flop-count comparison.
- :mod:`repro.runtime.sparse` -- the *full-order* counterpart: every
  matrix of a variational system shares one union sparsity pattern, so
  :class:`SparsePatternFamily` instantiates whole sample batches as
  data-array updates (bit-identical to the scalar path) and factors
  every pencil through a shared symbolic analysis (tridiagonal/banded
  LAPACK kernels in RCM order, SuperLU numeric refactorization as the
  general fallback).
- :mod:`repro.runtime.stream` -- chunked streaming drivers
  (:func:`stream_sweep_study` / :func:`stream_transient_study`) that
  run any plan through the batch kernels under a documented peak-memory
  bound, with incremental envelope reducers and progress callbacks.
- :mod:`repro.runtime.cache` -- a content-addressed
  :class:`ModelCache`: hash of (system, reducer config) -> reduced
  model persisted via :mod:`repro.core.io`, so repeated workloads skip
  reduction entirely.
- :mod:`repro.runtime.store` -- the durability layer: a
  :class:`StudyStore` persists every streamed chunk as an ``.npz``
  checkpoint unit plus a JSON manifest keyed by the same content
  fingerprints the cache uses, so a crashed, killed, or sharded study
  resumes (``Study.store/.shard/.resume``) and merges bit-identically
  to an uninterrupted run -- with per-chunk checksums so persisted
  results stay independently re-checkable.
- :mod:`repro.runtime.scheduler` -- lease-based work-stealing over a
  shared store directory: atomic claim files, observer-side TTL expiry
  with heartbeats, and a drain loop (``Study.work``) that lets any
  number of heterogeneous workers finish one study together, with
  every chunk's SHA-256 verified before the fold.
- :mod:`repro.runtime.executor` -- serial, thread, chunked
  multiprocessing, and shared-memory backends behind one
  ordered-``map`` interface for the embarrassingly-parallel full-model
  reference solves.

:mod:`repro.analysis.montecarlo`, :mod:`repro.analysis.sensitivity`,
and :mod:`repro.analysis.delay` are wired onto these kernels; the
``repro montecarlo``, ``repro batch``, and ``repro transient`` CLI
commands expose them from the shell.
"""

from repro.runtime.batch import (
    batch_frequency_response,
    batch_instantiate,
    batch_poles,
    batch_sweep_study,
    batch_transfer,
    batch_transfer_sensitivities,
    supports_batching,
    systems_from_stacks,
)
from repro.runtime.cache import (
    ModelCache,
    array_fingerprint,
    reducer_fingerprint,
    system_fingerprint,
    target_fingerprint,
)
from repro.runtime.engine import (
    ExecutionPlan,
    PoleStudy,
    SensitivityStudy,
    Study,
)
from repro.runtime.lowrank import (
    LowRankEnsembleSolver,
    detect_lowrank_structure,
    lowrank_solver,
)
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    executor_map_array,
    resolve_executor,
    resolve_owned_executor,
)
from repro.runtime.scheduler import (
    DrainReport,
    Lease,
    LeaseBoard,
    default_worker_id,
    drain_chunks,
    parse_worker_id,
)
from repro.runtime.store import (
    NothingToResumeError,
    StoreError,
    StudyCheckpoint,
    StudyStore,
    parse_shard,
    study_fingerprint,
)
from repro.runtime.sparse import (
    SparsePatternFamily,
    shared_pattern_family,
    sparse_batch_frequency_response,
    sparse_batch_transfer,
    supports_sparse_batching,
)
from repro.runtime.stream import (
    StreamedSweepStudy,
    StreamedTransientStudy,
    stream_sweep_study,
    stream_transient_study,
    sweep_chunk_bytes,
    transient_chunk_bytes,
)
from repro.runtime.scenarios import (
    CornerPlan,
    GridPlan,
    InputWaveform,
    MonteCarloPlan,
    PWLInput,
    RampInput,
    ScenarioPlan,
    ScenarioSweep,
    SineInput,
    StepInput,
    run_frequency_scenarios,
)
from repro.runtime.transient import (
    BatchTransientResult,
    TransientStudy,
    batch_simulate_transient,
    batch_step_responses,
    batch_transient_study,
    default_horizon,
)

__all__ = [
    "BatchTransientResult",
    "CornerPlan",
    "DrainReport",
    "ExecutionPlan",
    "GridPlan",
    "InputWaveform",
    "Lease",
    "LeaseBoard",
    "LowRankEnsembleSolver",
    "ModelCache",
    "MonteCarloPlan",
    "NothingToResumeError",
    "PWLInput",
    "PoleStudy",
    "ProcessExecutor",
    "RampInput",
    "ScenarioPlan",
    "ScenarioSweep",
    "SensitivityStudy",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "SineInput",
    "SparsePatternFamily",
    "StepInput",
    "StoreError",
    "StreamedSweepStudy",
    "StreamedTransientStudy",
    "Study",
    "StudyCheckpoint",
    "StudyStore",
    "ThreadExecutor",
    "TransientStudy",
    "array_fingerprint",
    "batch_frequency_response",
    "batch_instantiate",
    "batch_poles",
    "batch_simulate_transient",
    "batch_step_responses",
    "batch_sweep_study",
    "batch_transfer",
    "batch_transfer_sensitivities",
    "batch_transient_study",
    "default_horizon",
    "default_worker_id",
    "detect_lowrank_structure",
    "drain_chunks",
    "executor_map_array",
    "lowrank_solver",
    "parse_shard",
    "parse_worker_id",
    "reducer_fingerprint",
    "resolve_executor",
    "resolve_owned_executor",
    "run_frequency_scenarios",
    "shared_pattern_family",
    "sparse_batch_frequency_response",
    "sparse_batch_transfer",
    "stream_sweep_study",
    "stream_transient_study",
    "study_fingerprint",
    "supports_batching",
    "supports_sparse_batching",
    "sweep_chunk_bytes",
    "system_fingerprint",
    "systems_from_stacks",
    "target_fingerprint",
    "transient_chunk_bytes",
]
