"""The serving layer for reduced macromodels (batch, cache, parallel).

Reduction produces a macromodel once; everything downstream -- Monte
Carlo sign-off, corner sweeps, sensitivity studies -- evaluates it
thousands of times.  This package is the seam where that reuse is
made fast and declarative:

- :mod:`repro.runtime.batch` -- vectorized instantiation
  ``G(P) = G0 + P . dG`` over whole sample matrices, with batched
  transfer-function, frequency-response, pole, and sensitivity kernels
  that replace per-sample Python loops.
- :mod:`repro.runtime.scenarios` -- declarative
  :class:`MonteCarloPlan` / :class:`CornerPlan` / :class:`GridPlan`
  objects that generate sample matrices and compose with any reducer.
- :mod:`repro.runtime.cache` -- a content-addressed
  :class:`ModelCache`: hash of (system, reducer config) -> reduced
  model persisted via :mod:`repro.core.io`, so repeated workloads skip
  reduction entirely.
- :mod:`repro.runtime.executor` -- serial and chunked multiprocessing
  backends behind one ordered-``map`` interface for the
  embarrassingly-parallel full-model reference solves.

:mod:`repro.analysis.montecarlo` and
:mod:`repro.analysis.sensitivity` are wired onto these kernels; the
``repro montecarlo`` and ``repro batch`` CLI commands expose them from
the shell.
"""

from repro.runtime.batch import (
    batch_frequency_response,
    batch_instantiate,
    batch_poles,
    batch_sweep_study,
    batch_transfer,
    batch_transfer_sensitivities,
    supports_batching,
    systems_from_stacks,
)
from repro.runtime.cache import (
    ModelCache,
    reducer_fingerprint,
    system_fingerprint,
)
from repro.runtime.executor import ProcessExecutor, SerialExecutor, resolve_executor
from repro.runtime.scenarios import (
    CornerPlan,
    GridPlan,
    MonteCarloPlan,
    ScenarioPlan,
    ScenarioSweep,
    run_frequency_scenarios,
)

__all__ = [
    "CornerPlan",
    "GridPlan",
    "ModelCache",
    "MonteCarloPlan",
    "ProcessExecutor",
    "ScenarioPlan",
    "ScenarioSweep",
    "SerialExecutor",
    "batch_frequency_response",
    "batch_instantiate",
    "batch_poles",
    "batch_sweep_study",
    "batch_transfer",
    "batch_transfer_sensitivities",
    "reducer_fingerprint",
    "resolve_executor",
    "run_frequency_scenarios",
    "supports_batching",
    "system_fingerprint",
    "systems_from_stacks",
]
