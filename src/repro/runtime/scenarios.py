"""Declarative scenario plans: sample matrices and waveforms as objects.

A *plan* describes which parameter-space instances a study should
visit -- Monte Carlo draws, process corners, a full factorial grid --
independent of any model.  Calling
:meth:`ScenarioPlan.sample_matrix` with a parameter count realizes the
plan as the ``(m, n_p)`` matrix every batched kernel and study
function consumes, so the same plan composes with any reducer and any
model:

>>> plan = MonteCarloPlan(num_instances=1000, seed=7)
>>> H = batch_frequency_response(model, freqs, plan.sample_matrix(model.num_parameters))

An *input waveform* is the time-domain half of the same idea: a
declarative stimulus (:class:`StepInput`, :class:`RampInput`,
:class:`PWLInput`, :class:`SineInput`) that realizes itself either as
a vectorized ``(nt, m_in)`` table for the batched transient kernels
(:meth:`InputWaveform.sample`) or as the scalar ``u(t)`` callable the
reference :func:`repro.analysis.timedomain.simulate_transient` loop
consumes (:meth:`InputWaveform.as_function`) -- one object drives both
paths, which is what makes the bit-level regression tests possible.

Plans and waveforms are frozen dataclasses: hashable, comparable, and
printable, so they can key result tables and appear verbatim in logs
and CLI output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.batch import batch_frequency_response

# Refuse to materialize absurd factorial expansions (2^n_p corners,
# k^n_p grid points) instead of exhausting memory.
MAX_PLAN_SAMPLES = 1_000_000


class ScenarioPlan:
    """Base class: a recipe for an ``(m, n_p)`` parameter sample matrix."""

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """Realize the plan for a model with ``num_parameters`` parameters."""
        raise NotImplementedError

    def num_samples(self, num_parameters: int) -> int:
        """Number of rows :meth:`sample_matrix` will produce."""
        return self.sample_matrix(num_parameters).shape[0]

    def study(self, full_model, reduced_model, num_poles: int = 5, executor=None):
        """Run the pole-accuracy study over this plan's samples.

        Composes the plan with any full/reduced model pair via
        :func:`repro.analysis.montecarlo.monte_carlo_pole_study`.
        """
        # Imported lazily: repro.analysis.montecarlo itself builds on
        # the runtime batch/executor modules.
        from repro.analysis.montecarlo import monte_carlo_pole_study

        samples = self.sample_matrix(full_model.num_parameters)
        return monte_carlo_pole_study(
            full_model,
            reduced_model,
            samples.shape[0],
            num_poles=num_poles,
            samples=samples,
            executor=executor,
        )


def _check_size(plan, count: int) -> None:
    if count > MAX_PLAN_SAMPLES:
        raise ValueError(
            f"{plan!r} would materialize {count} samples "
            f"(limit {MAX_PLAN_SAMPLES}); restrict the plan"
        )


@dataclass(frozen=True)
class MonteCarloPlan(ScenarioPlan):
    """Normal 3-sigma Monte Carlo draws (the paper's Figs. 5-6 protocol).

    Parameters mirror
    :func:`repro.analysis.montecarlo.sample_parameters`, which realizes
    the plan (same seeds give the same draws).
    """

    num_instances: int
    three_sigma: float = 0.3
    seed: int = 0
    truncate: bool = True

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """``(num_instances, num_parameters)`` normal draws."""
        from repro.analysis.montecarlo import sample_parameters

        return sample_parameters(
            self.num_instances,
            num_parameters,
            three_sigma=self.three_sigma,
            seed=self.seed,
            truncate=self.truncate,
        )

    def num_samples(self, num_parameters: int) -> int:
        """Instance count (independent of the parameter count)."""
        return self.num_instances


@dataclass(frozen=True)
class CornerPlan(ScenarioPlan):
    """All ``2^n_p`` extreme process corners, optionally plus nominal.

    Each parameter sits at ``+/- magnitude``; with ``include_nominal``
    (default) the all-zeros nominal point is prepended as row 0.
    """

    magnitude: float = 0.3
    include_nominal: bool = True

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """Nominal row (optional) followed by every sign combination."""
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        _check_size(self, self.num_samples(num_parameters))
        corners = np.array(
            list(itertools.product((-self.magnitude, self.magnitude), repeat=num_parameters)),
            dtype=float,
        )
        if self.include_nominal:
            corners = np.vstack([np.zeros((1, num_parameters)), corners])
        return corners

    def num_samples(self, num_parameters: int) -> int:
        """``2^n_p`` corners plus the optional nominal row."""
        return 2 ** num_parameters + (1 if self.include_nominal else 0)


@dataclass(frozen=True)
class GridPlan(ScenarioPlan):
    """Full factorial grid: every parameter takes every axis value.

    The batched generalization of the Figs. 5-6 right-hand plots'
    2-D sweep to all parameters at once.  ``axis_values`` is stored as
    a tuple so the plan stays hashable.
    """

    axis_values: Tuple[float, ...] = (-0.3, 0.0, 0.3)

    def __post_init__(self):
        object.__setattr__(self, "axis_values", tuple(float(v) for v in self.axis_values))
        if not self.axis_values:
            raise ValueError("axis_values must be non-empty")

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """``(len(axis_values)^n_p, n_p)`` factorial combinations."""
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        _check_size(self, self.num_samples(num_parameters))
        return np.array(
            list(itertools.product(self.axis_values, repeat=num_parameters)), dtype=float
        )

    def num_samples(self, num_parameters: int) -> int:
        """``len(axis_values) ** n_p`` grid points."""
        return len(self.axis_values) ** num_parameters


class InputWaveform:
    """Base class: a declarative single-channel stimulus ``u(t)``.

    Subclasses implement :meth:`values` (the scalar channel waveform
    over a time array) and carry an ``input_index`` selecting which
    system input is driven; every other input is held at zero.
    """

    input_index: int = 0

    def values(self, times) -> np.ndarray:
        """Channel values at ``times`` (vectorized, same shape out)."""
        raise NotImplementedError

    def sample(self, times, num_inputs: int) -> np.ndarray:
        """Realize the stimulus as an ``(nt, m_in)`` input table.

        This is what the batched transient kernels consume: the whole
        time axis tabulated in one vectorized call.
        """
        times = np.asarray(times, dtype=float)
        if not 0 <= self.input_index < num_inputs:
            raise ValueError(
                f"input_index {self.input_index} out of range for {num_inputs} inputs"
            )
        table = np.zeros((times.size, num_inputs))
        table[:, self.input_index] = np.asarray(self.values(times), dtype=float)
        return table

    def as_function(self, num_inputs: int):
        """Adapter ``u(t) -> (m_in,)`` for the scalar reference loop.

        Returns a callable accepted by
        :func:`repro.analysis.timedomain.simulate_transient`, so the
        same waveform object drives the per-sample reference path.
        """
        if not 0 <= self.input_index < num_inputs:
            raise ValueError(
                f"input_index {self.input_index} out of range for {num_inputs} inputs"
            )

        def u(t: float) -> np.ndarray:
            vector = np.zeros(num_inputs)
            vector[self.input_index] = float(self.values(np.asarray([t]))[0])
            return vector

        return u


@dataclass(frozen=True)
class StepInput(InputWaveform):
    """Step of ``amplitude`` switching on at ``t = delay`` (0+ convention)."""

    amplitude: float = 1.0
    delay: float = 0.0
    input_index: int = 0

    def values(self, times) -> np.ndarray:
        """``amplitude`` for ``t >= delay``, zero before."""
        times = np.asarray(times, dtype=float)
        return np.where(times >= self.delay, self.amplitude, 0.0)


@dataclass(frozen=True)
class RampInput(InputWaveform):
    """Saturating ramp: 0 until ``delay``, then linear to ``amplitude``.

    Reaches ``amplitude`` at ``delay + rise_time`` and holds -- the
    standard finite-slew aggressor edge.
    """

    rise_time: float = 1e-10
    amplitude: float = 1.0
    delay: float = 0.0
    input_index: int = 0

    def __post_init__(self):
        if self.rise_time <= 0:
            raise ValueError("rise_time must be positive")

    def values(self, times) -> np.ndarray:
        """Clipped linear ramp between ``delay`` and ``delay + rise_time``."""
        times = np.asarray(times, dtype=float)
        return self.amplitude * np.clip((times - self.delay) / self.rise_time, 0.0, 1.0)


@dataclass(frozen=True)
class PWLInput(InputWaveform):
    """Piecewise-linear waveform through ``(time, value)`` breakpoints.

    Values before the first / after the last breakpoint are held
    constant (SPICE PWL semantics).  ``points`` is stored as a nested
    tuple so the waveform stays hashable.
    """

    points: Tuple[Tuple[float, float], ...] = ((0.0, 0.0), (1e-9, 1.0))
    input_index: int = 0

    def __post_init__(self):
        points = tuple((float(t), float(v)) for t, v in self.points)
        if not points:
            raise ValueError("PWLInput needs at least one (time, value) point")
        breakpoints = [t for t, _ in points]
        if any(b > a for b, a in zip(breakpoints, breakpoints[1:])):
            raise ValueError("PWL breakpoint times must be non-decreasing")
        object.__setattr__(self, "points", points)

    def values(self, times) -> np.ndarray:
        """Linear interpolation through the breakpoints (ends held)."""
        times = np.asarray(times, dtype=float)
        breakpoints = np.array([t for t, _ in self.points])
        levels = np.array([v for _, v in self.points])
        return np.interp(times, breakpoints, levels)


@dataclass(frozen=True)
class SineInput(InputWaveform):
    """Sinusoid ``offset + amplitude * sin(2 pi f (t - delay) + phase)``.

    Zero (at the offset level) before ``delay``.
    """

    frequency: float = 1e9
    amplitude: float = 1.0
    phase: float = 0.0
    offset: float = 0.0
    delay: float = 0.0
    input_index: int = 0

    def __post_init__(self):
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")

    def values(self, times) -> np.ndarray:
        """The sinusoid, gated on at ``t >= delay``."""
        times = np.asarray(times, dtype=float)
        wave = self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency * (times - self.delay) + self.phase
        )
        return np.where(times >= self.delay, wave, self.offset)


@dataclass
class ScenarioSweep:
    """Batched frequency responses over a plan's samples.

    ``responses`` has shape ``(m, n_f, m_out, m_in)`` -- instance ``k``,
    frequency ``j``.
    """

    plan: ScenarioPlan
    samples: np.ndarray
    frequencies: np.ndarray
    responses: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of evaluated parameter instances."""
        return self.samples.shape[0]

    def magnitude_envelope(
        self, output_index: int = 0, input_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-frequency ``(min, mean, max)`` of ``|H|`` across instances.

        The scenario envelope is the quantity variability sign-off
        cares about: the spread of the response over process instances.
        """
        magnitude = np.abs(self.responses[:, :, output_index, input_index])
        return magnitude.min(axis=0), magnitude.mean(axis=0), magnitude.max(axis=0)


def _frequency_scenarios(
    model,
    plan: ScenarioPlan,
    frequencies: Sequence[float],
    num_parameters: Optional[int] = None,
) -> ScenarioSweep:
    """Evaluate ``model`` over every (instance, frequency) pair of a plan.

    ``num_parameters`` defaults to ``model.num_parameters``.  Uses the
    batched pencil-solve kernel end to end; returns a
    :class:`ScenarioSweep`.  The historical public name
    :func:`run_frequency_scenarios` is a deprecated shim over this.
    """
    if num_parameters is None:
        num_parameters = model.num_parameters
    samples = plan.sample_matrix(num_parameters)
    freqs = np.asarray(frequencies, dtype=float)
    responses = batch_frequency_response(model, freqs, samples)
    return ScenarioSweep(plan=plan, samples=samples, frequencies=freqs, responses=responses)


def run_frequency_scenarios(
    model,
    plan: ScenarioPlan,
    frequencies: Sequence[float],
    num_parameters: Optional[int] = None,
) -> ScenarioSweep:
    """Deprecated shim: batched frequency responses over a plan.

    Delegates to the identical internal implementation, so results are
    bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(plan).sweep(frequencies,
    keep_responses=True).run()`` instead.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "run_frequency_scenarios",
        "Study(model).scenarios(plan).sweep(frequencies, "
        "keep_responses=True).run()",
    )
    return _frequency_scenarios(model, plan, frequencies, num_parameters=num_parameters)
