"""Declarative scenario plans: sample matrices as first-class objects.

A *plan* describes which parameter-space instances a study should
visit -- Monte Carlo draws, process corners, a full factorial grid --
independent of any model.  Calling
:meth:`ScenarioPlan.sample_matrix` with a parameter count realizes the
plan as the ``(m, n_p)`` matrix every batched kernel and study
function consumes, so the same plan composes with any reducer and any
model:

>>> plan = MonteCarloPlan(num_instances=1000, seed=7)
>>> H = batch_frequency_response(model, freqs, plan.sample_matrix(model.num_parameters))

Plans are frozen dataclasses: hashable, comparable, and printable, so
they can key result tables and appear verbatim in logs and CLI output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.batch import batch_frequency_response

# Refuse to materialize absurd factorial expansions (2^n_p corners,
# k^n_p grid points) instead of exhausting memory.
MAX_PLAN_SAMPLES = 1_000_000


class ScenarioPlan:
    """Base class: a recipe for an ``(m, n_p)`` parameter sample matrix."""

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """Realize the plan for a model with ``num_parameters`` parameters."""
        raise NotImplementedError

    def num_samples(self, num_parameters: int) -> int:
        """Number of rows :meth:`sample_matrix` will produce."""
        return self.sample_matrix(num_parameters).shape[0]

    def study(self, full_model, reduced_model, num_poles: int = 5, executor=None):
        """Run the pole-accuracy study over this plan's samples.

        Composes the plan with any full/reduced model pair via
        :func:`repro.analysis.montecarlo.monte_carlo_pole_study`.
        """
        # Imported lazily: repro.analysis.montecarlo itself builds on
        # the runtime batch/executor modules.
        from repro.analysis.montecarlo import monte_carlo_pole_study

        samples = self.sample_matrix(full_model.num_parameters)
        return monte_carlo_pole_study(
            full_model,
            reduced_model,
            samples.shape[0],
            num_poles=num_poles,
            samples=samples,
            executor=executor,
        )


def _check_size(plan, count: int) -> None:
    if count > MAX_PLAN_SAMPLES:
        raise ValueError(
            f"{plan!r} would materialize {count} samples "
            f"(limit {MAX_PLAN_SAMPLES}); restrict the plan"
        )


@dataclass(frozen=True)
class MonteCarloPlan(ScenarioPlan):
    """Normal 3-sigma Monte Carlo draws (the paper's Figs. 5-6 protocol).

    Parameters mirror
    :func:`repro.analysis.montecarlo.sample_parameters`, which realizes
    the plan (same seeds give the same draws).
    """

    num_instances: int
    three_sigma: float = 0.3
    seed: int = 0
    truncate: bool = True

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """``(num_instances, num_parameters)`` normal draws."""
        from repro.analysis.montecarlo import sample_parameters

        return sample_parameters(
            self.num_instances,
            num_parameters,
            three_sigma=self.three_sigma,
            seed=self.seed,
            truncate=self.truncate,
        )

    def num_samples(self, num_parameters: int) -> int:
        """Instance count (independent of the parameter count)."""
        return self.num_instances


@dataclass(frozen=True)
class CornerPlan(ScenarioPlan):
    """All ``2^n_p`` extreme process corners, optionally plus nominal.

    Each parameter sits at ``+/- magnitude``; with ``include_nominal``
    (default) the all-zeros nominal point is prepended as row 0.
    """

    magnitude: float = 0.3
    include_nominal: bool = True

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """Nominal row (optional) followed by every sign combination."""
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        _check_size(self, self.num_samples(num_parameters))
        corners = np.array(
            list(itertools.product((-self.magnitude, self.magnitude), repeat=num_parameters)),
            dtype=float,
        )
        if self.include_nominal:
            corners = np.vstack([np.zeros((1, num_parameters)), corners])
        return corners

    def num_samples(self, num_parameters: int) -> int:
        """``2^n_p`` corners plus the optional nominal row."""
        return 2 ** num_parameters + (1 if self.include_nominal else 0)


@dataclass(frozen=True)
class GridPlan(ScenarioPlan):
    """Full factorial grid: every parameter takes every axis value.

    The batched generalization of the Figs. 5-6 right-hand plots'
    2-D sweep to all parameters at once.  ``axis_values`` is stored as
    a tuple so the plan stays hashable.
    """

    axis_values: Tuple[float, ...] = (-0.3, 0.0, 0.3)

    def __post_init__(self):
        object.__setattr__(self, "axis_values", tuple(float(v) for v in self.axis_values))
        if not self.axis_values:
            raise ValueError("axis_values must be non-empty")

    def sample_matrix(self, num_parameters: int) -> np.ndarray:
        """``(len(axis_values)^n_p, n_p)`` factorial combinations."""
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        _check_size(self, self.num_samples(num_parameters))
        return np.array(
            list(itertools.product(self.axis_values, repeat=num_parameters)), dtype=float
        )

    def num_samples(self, num_parameters: int) -> int:
        """``len(axis_values) ** n_p`` grid points."""
        return len(self.axis_values) ** num_parameters


@dataclass
class ScenarioSweep:
    """Batched frequency responses over a plan's samples.

    ``responses`` has shape ``(m, n_f, m_out, m_in)`` -- instance ``k``,
    frequency ``j``.
    """

    plan: ScenarioPlan
    samples: np.ndarray
    frequencies: np.ndarray
    responses: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of evaluated parameter instances."""
        return self.samples.shape[0]

    def magnitude_envelope(
        self, output_index: int = 0, input_index: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-frequency ``(min, mean, max)`` of ``|H|`` across instances.

        The scenario envelope is the quantity variability sign-off
        cares about: the spread of the response over process instances.
        """
        magnitude = np.abs(self.responses[:, :, output_index, input_index])
        return magnitude.min(axis=0), magnitude.mean(axis=0), magnitude.max(axis=0)


def run_frequency_scenarios(
    model,
    plan: ScenarioPlan,
    frequencies: Sequence[float],
    num_parameters: Optional[int] = None,
) -> ScenarioSweep:
    """Evaluate ``model`` over every (instance, frequency) pair of a plan.

    ``num_parameters`` defaults to ``model.num_parameters``.  Uses the
    batched kernels end to end; returns a :class:`ScenarioSweep`.
    """
    if num_parameters is None:
        num_parameters = model.num_parameters
    samples = plan.sample_matrix(num_parameters)
    freqs = np.asarray(frequencies, dtype=float)
    responses = batch_frequency_response(model, freqs, samples)
    return ScenarioSweep(plan=plan, samples=samples, frequencies=freqs, responses=responses)
