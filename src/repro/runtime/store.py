"""Durable studies: the on-disk :class:`StudyStore` under every route.

A 10^5-instance Monte Carlo study only pays off at production scale
when it can survive a crash, be split across machines, and be
re-verified against known-good numerics.  This module is that
durability layer: the streaming drivers already advance chunk by
chunk, so each chunk becomes a **checkpoint unit** -- its per-instance
results and envelope contributions are persisted as one ``.npz`` shard
and recorded in a JSON manifest the moment the chunk finishes.  A
re-run of the same study (same target, samples, workload, chunk
layout) loads completed chunks instead of recomputing them, folds them
through the same incremental reducers in the same order, and is
therefore **bit-identical** to an uninterrupted run.

Layout of a store directory::

    store/
      manifest-<key16>.json                 # unsharded run
      manifest-<key16>.shard01of02.json     # shard 0 of a 2-way split
      chunks/<key16>/chunk-00007.npz        # one checkpoint unit

``<key16>`` is the leading 16 hex digits of the **study key**: a
SHA-256 over the target's content fingerprint (the same
:func:`~repro.runtime.cache.system_fingerprint` the
:class:`~repro.runtime.cache.ModelCache` uses), the realized sample
matrix, and the workload configuration.  Several studies -- e.g. the
full- and reduced-model sides of one Monte Carlo sign-off -- can share
a store directory without touching each other's records.

Following the claim-verification spirit of Proof-Carrying Numbers
(PCN), every manifest carries enough provenance to re-check its
results independently: the full fingerprint components (what was
evaluated), the chunk layout (how it was split), and a SHA-256 per
chunk archive (what was produced).  :meth:`StudyCheckpoint.load`
verifies the recorded checksum on every read, so a bit-rotted or
hand-edited chunk can never silently flow into a merged result.

Sharding assigns chunk index ``j`` to shard ``i`` of ``n`` when
``j % n == i``; shards write disjoint chunk files and their own
manifest, so ``n`` machines can share one directory (or their
manifests can be copied together afterwards).  A resumed run with no
shard declared merges every shard's records into the one result set.

Work-stealing workers (:mod:`repro.runtime.scheduler`) relax the
static ownership: each worker writes its *own* manifest
(``manifest-<key16>.worker-<id>.json``) and worker-suffixed chunk
archives (``chunk-00007.w-<id>.npz``), so two workers that race on the
same chunk never write the same file and every manifest stays
single-writer.  Duplicate records for one chunk index are equivalent
by construction (the kernels are deterministic), and readers keep
every record as an alternate: a checksum-mismatched archive falls back
to another worker's copy, and -- in the scheduler's *lenient* mode --
a chunk whose every copy fails verification is simply re-queued
(recomputed) instead of raising a fatal :class:`StoreError`.  Both
manifest flavors share one schema, so pre-scheduler readers merge
worker manifests transparently.

Atomic writes are crash-durable: scratch files are flushed and
``fsync``\\ ed before the ``os.replace`` rename, and the containing
directory is synced after it, so a power cut right after a rename can
not surface a truncated checkpoint that passes the rename but fails
its checksum on resume.

All persistence failures raise :class:`StoreError` -- one exception
type the CLI maps to exit code 2 with a one-line diagnostic.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import array_fingerprint, target_fingerprint

MANIFEST_FORMAT = "repro-study-store/v1"

_CHUNKS_SAVED = obs_metrics.counter("store.chunks_saved")
_CHUNKS_LOADED = obs_metrics.counter("store.chunks_loaded")
_CHUNKS_REQUEUED = obs_metrics.counter("store.chunks_requeued")
_BYTES_WRITTEN = obs_metrics.counter("store.bytes_written")
_BYTES_READ = obs_metrics.counter("store.bytes_read")

_KEY_PREFIX = 16


class StoreError(RuntimeError):
    """A study-store operation failed (unwritable directory, missing or
    corrupt manifest, checksum mismatch, invalid shard spec).

    Deliberately *not* a :class:`ValueError`/:class:`OSError` subclass:
    the CLI catches it separately and exits with code 2 and a one-line
    diagnostic instead of a traceback.
    """


class NothingToResumeError(StoreError):
    """``resume`` was requested but the store holds no manifest for the
    study.

    A distinct subclass so multi-study workflows (e.g. the two pole
    studies inside one Monte Carlo sign-off) can fall back to a fresh
    store-backed run for the side that never reached its first
    checkpoint, while genuine store corruption still propagates.
    """


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI shard spec ``"I/N"`` (1-based) into ``(index, of)``.

    Returns the 0-based ``(index, of)`` pair the engine's
    :meth:`~repro.runtime.engine.Study.shard` expects; raises
    :class:`StoreError` for malformed or out-of-range specs -- the
    classic ``3/2``, but also ``0/2``, ``1/0``, signed forms like
    ``+1/2``, and non-ASCII digits -- so the CLI always exits with its
    one-line diagnostic, never a traceback.  Surrounding whitespace is
    tolerated (shell quoting artifacts), whitespace *inside* a number
    is not.
    """
    match = re.fullmatch(r"\s*(\d+)\s*/\s*(\d+)\s*", text or "", flags=re.ASCII)
    if match is None:
        raise StoreError(
            f"invalid shard spec {text!r}: expected I/N (e.g. --shard 1/2)"
        )
    index, of = int(match.group(1)), int(match.group(2))
    if of < 1 or not 1 <= index <= of:
        raise StoreError(
            f"invalid shard spec {text!r}: need 1 <= I <= N, got I={index} N={of}"
        )
    return index - 1, of


def parse_positive(text, flag: str, kind=float):
    """Parse a strictly positive CLI number (``--ttl``, ``--poll``, ...).

    Same contract as :func:`parse_shard`: malformed or out-of-range
    values raise :class:`StoreError`, which the CLI maps to exit code 2
    with a one-line diagnostic instead of a traceback.
    """
    try:
        value = kind(str(text).strip())
    except (TypeError, ValueError):
        raise StoreError(
            f"invalid {flag} {text!r}: expected a positive "
            f"{'integer' if kind is int else 'number'}"
        ) from None
    if not value > 0:
        raise StoreError(f"invalid {flag} {text!r}: must be > 0")
    return value


def study_fingerprint(target, workload: str, samples, config: dict) -> Dict[str, str]:
    """Content fingerprint of one study: what, on what, over what.

    ``target`` is fingerprinted through
    :func:`~repro.runtime.cache.target_fingerprint` (shared with the
    :class:`~repro.runtime.cache.ModelCache`, so the manifest key of a
    study over a cached reduction matches a fresh reduction of the same
    system); ``samples`` through
    :func:`~repro.runtime.cache.array_fingerprint`; ``config`` is the
    workload's canonical option record (frequency-axis digest, waveform
    repr, thresholds, ...).  The returned dict carries the components
    *and* the combined ``key`` so manifests stay independently
    re-checkable.
    """
    record = {
        "target": target_fingerprint(target),
        "samples": array_fingerprint(np.asarray(samples, dtype=float)),
        "workload": workload,
        "config": config,
    }
    key = hashlib.sha256(
        json.dumps(record, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return {**record, "key": key}


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _verified_chunk_payload(directory: Path, key: str, index: int, record: dict):
    """Load one chunk record's archive, verifying its recorded SHA-256.

    Returns ``((payload, sha256, size), None)`` on success or
    ``(None, StoreError)`` when the archive is missing or fails its
    checksum -- shared by :meth:`StudyCheckpoint.load` (resume path)
    and :meth:`StudyStore.iter_chunks` (warehouse ingest), so both
    enforce the identical verify-before-deserialize contract.
    """
    path = directory / record["file"]
    if not path.exists():
        return None, StoreError(
            f"chunk {index} of study {key[:12]}... is recorded in the "
            f"manifest but its archive {record['file']!r} is missing"
        )
    actual = _sha256_file(path)
    if actual != record["sha256"]:
        return None, StoreError(
            f"chunk {index} archive {record['file']!r} fails its recorded "
            f"checksum (manifest {record['sha256'][:12]}..., file "
            f"{actual[:12]}...); the store is corrupt"
        )
    with np.load(path) as archive:
        payload = {name: archive[name] for name in archive.files}
    return (payload, actual, path.stat().st_size), None


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table to disk, where the platform can.

    After ``os.replace`` the *rename itself* lives in the directory, not
    the file: without this sync a power cut can roll the rename back and
    resurrect the old (or no) entry.  Platforms without ``O_DIRECTORY``
    (e.g. Windows) or that refuse to fsync a directory fd simply skip --
    the rename is still atomic, just not power-cut-durable.
    """
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:
        return
    try:
        fd = os.open(directory, os.O_RDONLY | flag)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _durable_replace(scratch: Path, path: Path, data: bytes) -> None:
    """Write ``data`` to ``scratch``, fsync it, rename over ``path``.

    The fsync *before* the rename is the load-bearing half of the
    atomic-write idiom ``os.replace`` alone does not provide: without
    it, a crash shortly after the rename can surface a fully named but
    truncated (even empty) file -- it passed the rename "atomicity" yet
    fails its checksum on resume with a confusing corruption error.
    The directory sync afterwards makes the rename itself survive a
    power cut.  Callers hold responsibility for cleaning up ``scratch``
    on failure (the rename consumes it on success).
    """
    with open(scratch, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, path)
    _fsync_directory(path.parent)


class StudyStore:
    """Directory-backed persistence for study results and checkpoints.

    Parameters
    ----------
    directory:
        Store root; created if missing.  The constructor probes
        writability immediately (one empty file, created and removed)
        so a read-only target fails up front with a one-line
        :class:`StoreError` instead of half-way through a study.

    Most callers never touch this class directly: attach it (or just
    the directory path) to a study via
    :meth:`repro.runtime.engine.Study.store` and the engine opens one
    :class:`StudyCheckpoint` per run.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / f".write-probe-{os.getpid()}"
            probe.write_bytes(b"")
            probe.unlink()
        except OSError as exc:
            raise StoreError(
                f"store directory {str(self.directory)!r} is not writable: {exc}"
            ) from None

    # -- paths ---------------------------------------------------------

    def _key_prefix(self, key: str) -> str:
        return key[:_KEY_PREFIX]

    def manifest_path(
        self,
        key: str,
        shard: Optional[Tuple[int, int]] = None,
        worker: Optional[str] = None,
    ) -> Path:
        """Manifest location for ``key`` (and shard or worker, if any).

        A work-stealing worker writes ``manifest-<key16>.worker-<id>.json``
        so every manifest file has exactly one writer; ``shard`` and
        ``worker`` are mutually exclusive by construction (the scheduler
        forbids combining them).
        """
        stem = f"manifest-{self._key_prefix(key)}"
        if shard is not None:
            index, of = shard
            stem += f".shard{index + 1:02d}of{of:02d}"
        if worker is not None:
            stem += f".worker-{worker}"
        return self.directory / f"{stem}.json"

    def manifest_paths(self, key: str):
        """Every existing manifest file for ``key`` (all shards and
        workers), sorted -- the glob predates the scheduler, so readers
        from before worker manifests existed merge them transparently."""
        return sorted(self.directory.glob(f"manifest-{self._key_prefix(key)}*.json"))

    def chunk_path(self, key: str, index: int, worker: Optional[str] = None) -> Path:
        """On-disk location of checkpoint unit ``index`` for ``key``.

        Worker archives carry a ``.w-<id>`` suffix: npz (zip) bytes
        embed timestamps, so two workers saving the *same* chunk produce
        different bytes -- distinct filenames keep each archive
        single-writer and its manifest SHA-256 stable.
        """
        name = f"chunk-{index:05d}"
        if worker is not None:
            name += f".w-{worker}"
        return self.directory / "chunks" / self._key_prefix(key) / f"{name}.npz"

    # -- manifests -----------------------------------------------------

    def _read_manifest(self, path: Path) -> dict:
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise StoreError(f"cannot read manifest {str(path)!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt manifest {str(path)!r}: {exc} (delete it to start over)"
            ) from None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"manifest {str(path)!r} has unsupported format "
                f"{manifest.get('format')!r} (expected {MANIFEST_FORMAT!r})"
            )
        # Schema-validate the chunk records: a JSON-valid but hand-edited
        # or truncated manifest must still surface as a one-line
        # StoreError, never a KeyError deep inside a resumed run.
        chunks = manifest.get("chunks", {})
        if not isinstance(chunks, dict):
            raise StoreError(
                f"corrupt manifest {str(path)!r}: 'chunks' is not an object "
                "(delete it to start over)"
            )
        for index, record in chunks.items():
            if not (
                isinstance(index, str)
                and index.isdigit()
                and isinstance(record, dict)
                and isinstance(record.get("file"), str)
                and isinstance(record.get("sha256"), str)
                and isinstance(record.get("lo"), int)
                and isinstance(record.get("hi"), int)
            ):
                raise StoreError(
                    f"corrupt manifest {str(path)!r}: malformed record for "
                    f"chunk {index!r} (delete it to start over)"
                )
        return manifest

    def load_manifests(self, key: str):
        """All parsed manifests for ``key`` (raises on corruption)."""
        return [self._read_manifest(path) for path in self.manifest_paths(key)]

    def study_keys(self) -> List[str]:
        """Every full study key with a manifest in this store.

        Scans all manifest files (every shard and worker flavor) in
        sorted filename order and returns the unique ``study_key``
        values, order-preserving -- the enumeration the warehouse
        ingest layer walks when no explicit key is given.
        """
        keys: List[str] = []
        for path in sorted(self.directory.glob("manifest-*.json")):
            key = self._read_manifest(path).get("study_key")
            if isinstance(key, str) and key not in keys:
                keys.append(key)
        return keys

    def chunk_records(self, key: str) -> Dict[int, List[dict]]:
        """``{chunk_index: [record, ...]}`` across every manifest.

        Two workers that race on one chunk each record their own copy;
        the copies are equivalent by construction (deterministic
        kernels), so readers treat later ones as *alternates* to fall
        back to when the first archive fails verification.  Order is
        deterministic: sorted manifest filename, then manifest order.
        """
        records: Dict[int, List[dict]] = {}
        for manifest in self.load_manifests(key):
            for index, record in manifest.get("chunks", {}).items():
                records.setdefault(int(index), []).append(record)
        return records

    def completed_chunks(self, key: str) -> Dict[int, dict]:
        """Merged ``{chunk_index: record}`` across every shard manifest."""
        return {
            index: alternates[0]
            for index, alternates in self.chunk_records(key).items()
        }

    def study_complete(self, key: str) -> bool:
        """Whether every chunk of study ``key`` is checkpointed here.

        The content-addressed result lookup the serving layer leans on:
        a study whose manifests (across all shards and workers) cover
        the full chunk grid can be merged without recomputing anything,
        so an identical re-submission is answerable from the store.
        ``False`` when no manifest exists yet.
        """
        manifests = self.load_manifests(key)
        if not manifests:
            return False
        num_chunks = manifests[0].get("layout", {}).get("num_chunks")
        if not isinstance(num_chunks, int):
            return False
        return len(self.completed_chunks(key)) >= num_chunks

    def lineage(self, key: str) -> List[dict]:
        """Per-chunk provenance records for study ``key``, chunk order.

        One record per completed chunk -- ``{"index", "lo", "hi",
        "sha256", "file", "worker"}`` -- drawn from the first (winning)
        alternate of each chunk, which is exactly the copy a merge
        loads first.  This is the PCN-style lineage a served result
        carries so clients can independently re-verify the bytes behind
        every row.
        """
        return [
            {
                "index": index,
                "lo": record["lo"],
                "hi": record["hi"],
                "sha256": record["sha256"],
                "file": record["file"],
                "worker": record.get("worker"),
            }
            for index, record in sorted(self.completed_chunks(key).items())
        ]

    def iter_chunks(self, key: str):
        """Yield ``(record, payload)`` per completed chunk, index order.

        Each yielded record is an annotated *copy* of the winning
        manifest record: ``"index"`` (int), the originating manifest's
        ``"shard"`` (``None`` or ``[index, of]``) and ``"worker"`` are
        attached so consumers (warehouse ingest) know where a chunk
        came from without re-walking manifests.  Every payload is
        verified against its recorded SHA-256 before being yielded;
        when several workers recorded one chunk, a failing copy falls
        back to the next alternate (same winning order as
        :meth:`completed_chunks`), and a chunk whose every copy fails
        raises the first :class:`StoreError`.
        """
        alternates: Dict[int, List[dict]] = {}
        for manifest in self.load_manifests(key):
            shard = manifest.get("shard")
            worker = manifest.get("worker")
            for index, record in manifest.get("chunks", {}).items():
                annotated = dict(record)
                annotated["index"] = int(index)
                annotated["shard"] = shard
                annotated.setdefault("worker", worker)
                alternates.setdefault(int(index), []).append(annotated)
        for index in sorted(alternates):
            first_error = None
            for record in alternates[index]:
                loaded, error = _verified_chunk_payload(
                    self.directory, key, index, record
                )
                if error is None:
                    payload, _, size = loaded
                    _CHUNKS_LOADED.inc()
                    _BYTES_READ.inc(size)
                    yield record, payload
                    break
                first_error = first_error or error
            else:
                raise first_error

    def checkpoint(
        self,
        fingerprint: Dict[str, str],
        chunk_size: int,
        num_chunks: int,
        num_samples: int,
        shard: Optional[Tuple[int, int]] = None,
        resume: bool = False,
        context: Optional[dict] = None,
        worker: Optional[str] = None,
        lenient: bool = False,
    ) -> "StudyCheckpoint":
        """Open the checkpoint for one study run, validating any history.

        Every existing manifest for the study key is parsed (corruption
        raises), and its recorded chunk layout must match the current
        plan -- a resume with a different ``chunk_size`` would silently
        change the envelope-mean accumulation order, so it is refused
        instead.  ``resume=True`` additionally requires at least one
        manifest to exist.  ``context`` (e.g. the engine's route /
        kernel / executor choice) is recorded verbatim in the
        manifest's telemetry block.

        ``worker`` names a work-stealing worker: its saves go to a
        worker-suffixed manifest and worker-suffixed chunk archives (see
        the module docstring).  ``lenient`` turns load-time verification
        failures into re-queues (``load`` returns ``None`` after trying
        every alternate copy) instead of fatal errors -- the scheduler's
        merge mode, where a corrupt chunk is simply recomputed.
        """
        key = fingerprint["key"]
        layout = {
            "num_samples": int(num_samples),
            "chunk_size": int(chunk_size),
            "num_chunks": int(num_chunks),
        }
        manifests = self.load_manifests(key)
        if resume and not manifests:
            raise NothingToResumeError(
                f"nothing to resume: no manifest for study {key[:12]}... in "
                f"{str(self.directory)!r} (was it stored with a different "
                "target, sample plan, or workload?)"
            )
        for manifest in manifests:
            if manifest.get("study_key") != key:
                raise StoreError(
                    f"manifest {str(self.manifest_path(key))!r} belongs to a "
                    "different study (fingerprint mismatch)"
                )
            if manifest.get("layout") != layout:
                raise StoreError(
                    f"study {key[:12]}... was stored with chunk layout "
                    f"{manifest.get('layout')}, but this run plans {layout}; "
                    "re-run with the original chunk size or use a fresh store"
                )
        return StudyCheckpoint(
            self, key, fingerprint, layout, shard=shard, context=context,
            worker=worker, lenient=lenient,
        )

    def __repr__(self) -> str:
        manifests = len(list(self.directory.glob("manifest-*.json")))
        return f"StudyStore({str(self.directory)!r}, manifests={manifests})"


class StudyCheckpoint:
    """One run's view of a store: load completed chunks, record new ones.

    ``completed`` merges the chunk records of *every* shard manifest
    for the study key, so a merge run sees all shards' work;
    :meth:`save` appends to this run's own manifest only (the one named
    by its shard), keeping concurrent shard writers independent.
    """

    def __init__(
        self, store, key, fingerprint, layout, shard=None, context=None,
        worker=None, lenient=False,
    ):
        self.store = store
        self.key = key
        self.fingerprint = fingerprint
        self.layout = layout
        self.shard = shard
        self.context = context
        self.worker = worker
        self.lenient = lenient
        self._alternates = store.chunk_records(key)
        self.completed = {
            index: records[0] for index, records in self._alternates.items()
        }
        own = store.manifest_path(key, shard, worker)
        self._own_records: Dict[int, dict] = {}
        if own.exists():
            manifest = store._read_manifest(own)
            self._own_records = {
                int(index): record
                for index, record in manifest.get("chunks", {}).items()
            }
        self.loaded_chunks = 0
        self.saved_chunks = 0
        self.bytes_written = 0

    @property
    def num_completed(self) -> int:
        """How many chunk checkpoints exist across all shards."""
        return len(self.completed)

    def refresh(self) -> set:
        """Re-scan the store's manifests and return the completed index set.

        Work-stealing workers call this between chunks: other workers'
        manifests grow concurrently, and a chunk someone else finished
        need not be claimed (or, if stolen mid-write, recomputed).
        """
        self._alternates = self.store.chunk_records(self.key)
        for index, records in self._alternates.items():
            self.completed.setdefault(index, records[0])
        return set(self.completed)

    def _verified_payload(self, index: int, record: dict):
        """Load and verify one record; return ``(payload, error)``."""
        return _verified_chunk_payload(
            self.store.directory, self.key, index, record
        )

    def load(self, index: int) -> Optional[Dict[str, np.ndarray]]:
        """The persisted payload of chunk ``index``, or ``None``.

        Verifies the manifest's recorded SHA-256 against the archive
        bytes before deserializing.  When several workers recorded the
        same chunk, a failing copy falls back to the next alternate.
        If every copy fails: a *strict* checkpoint raises
        :class:`StoreError` (a resumed run must not silently recompute
        what the store claims to hold), while a *lenient* one
        (``lenient=True``, the scheduler's merge mode) drops the chunk
        from ``completed`` and returns ``None`` so the caller re-queues
        it -- corruption costs a recompute, not the study.
        """
        records = self._alternates.get(index) or (
            [self.completed[index]] if index in self.completed else []
        )
        if not records:
            return None
        with obs_trace.span(
            "store.load", index=index, file=records[0]["file"]
        ) as load_span:
            first_error = None
            for record in records:
                loaded, error = self._verified_payload(index, record)
                if error is None:
                    payload, actual, size = loaded
                    self.loaded_chunks += 1
                    _CHUNKS_LOADED.inc()
                    _BYTES_READ.inc(size)
                    load_span.set(
                        sha256=actual, bytes=size, file=record["file"]
                    )
                    return payload
                first_error = first_error or error
            if not self.lenient:
                raise first_error
            # Every copy is corrupt or missing: forget the chunk so the
            # drain loop claims and recomputes it.
            self.completed.pop(index, None)
            self._alternates.pop(index, None)
            _CHUNKS_REQUEUED.inc()
            load_span.set(requeued=True, error=str(first_error))
        return None

    def save(
        self,
        index: int,
        lo: int,
        hi: int,
        payload: Dict[str, np.ndarray],
        telemetry: Optional[dict] = None,
    ) -> dict:
        """Persist chunk ``index`` and record it -- the checkpoint unit.

        The archive is written to a temporary sibling and atomically
        renamed, then the manifest is rewritten the same way, so a kill
        at any instant leaves either a fully recorded chunk or no
        record at all -- never a half-written checkpoint.  ``telemetry``
        (the producing run's per-chunk wall/CPU/instance numbers) rides
        along in the chunk's manifest record; the record dict is
        returned so callers can surface the recorded SHA-256.
        """
        with obs_trace.span("store.save", index=index, lo=lo, hi=hi) as save_span:
            # Serialize (and hash) in memory so the hot streaming path
            # pays one disk write per checkpoint, not a write plus a
            # read-back.
            buffer = io.BytesIO()
            np.savez(buffer, **{k: v for k, v in payload.items() if v is not None})
            data = buffer.getvalue()
            path = self.store.chunk_path(self.key, index, self.worker)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                scratch = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
                try:
                    _durable_replace(scratch, path, data)
                finally:
                    scratch.unlink(missing_ok=True)
            except OSError as exc:
                raise StoreError(
                    f"cannot write chunk {index} of study {self.key[:12]}...: {exc}"
                ) from None
            record = {
                "file": str(path.relative_to(self.store.directory)),
                "lo": int(lo),
                "hi": int(hi),
                "rows": int(hi - lo),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
            if telemetry is not None:
                record["telemetry"] = telemetry
            if self.worker is not None:
                record["worker"] = self.worker
            self._own_records[index] = record
            self.completed[index] = record
            self._alternates.setdefault(index, []).insert(0, record)
            self.saved_chunks += 1
            self.bytes_written += len(data)
            _CHUNKS_SAVED.inc()
            _BYTES_WRITTEN.inc(len(data))
            save_span.set(sha256=record["sha256"], bytes=len(data))
            self._write_manifest()
        return record

    def _write_manifest(self) -> None:
        records = {
            str(index): self._own_records[index]
            for index in sorted(self._own_records)
        }
        manifest = {
            "format": MANIFEST_FORMAT,
            "study_key": self.key,
            "fingerprint": self.fingerprint,
            "layout": self.layout,
            "shard": None if self.shard is None else list(self.shard),
            "worker": self.worker,
            "chunks": records,
            # Run telemetry (see README, "Store layout and manifest
            # schema"): how the most
            # recent writing run produced what the manifest records.
            # Older readers ignore the extra key; the layout-equality
            # resume check never touches it.
            "telemetry": {
                "writer_pid": os.getpid(),
                "context": self.context,
                "chunks_saved": self.saved_chunks,
                "chunks_loaded": self.loaded_chunks,
                "bytes_written": self.bytes_written,
                "wall_seconds": round(
                    sum(
                        record.get("telemetry", {}).get("wall_seconds", 0.0)
                        for record in records.values()
                    ),
                    6,
                ),
            },
        }
        path = self.store.manifest_path(self.key, self.shard, self.worker)
        scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            try:
                _durable_replace(
                    scratch, path,
                    json.dumps(manifest, indent=1, sort_keys=True).encode(),
                )
            finally:
                scratch.unlink(missing_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot write manifest {str(path)!r}: {exc}"
            ) from None

    def __repr__(self) -> str:
        total = self.layout["num_chunks"]
        return (
            f"StudyCheckpoint(study={self.key[:12]}..., "
            f"completed={self.num_completed}/{total}, shard={self.shard})"
        )
