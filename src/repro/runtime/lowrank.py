"""Low-rank ensemble solver over the nominal eigenbasis.

The dense sweep kernel (:func:`repro.runtime.batch._sweep_study`) pays
one full ``q x q`` eigendecomposition *per instance*.  But the paper's
whole structural premise is ``G(p) = G0 + sum_i p_i dG_i`` with
**low-rank** ``dG_i`` / ``dC_i`` -- every instance pencil is a rank-rho
perturbation of the one nominal pencil, with
``rho = sum_i rank(dG_i) + rank(dC_i)`` independent of the instance.
This module diagonalizes the nominal pencil **once** and solves the
whole ensemble through small dense corrections of size ``rho``:

Responses (Woodbury through the nominal eigenbasis)
    With ``A0 = G0^{-1} C0 = V0 diag(lambda0) V0^{-1}`` and the detected
    factors ``dG_i = Xg_i Yg_i^T``, ``dC_i = Xc_i Yc_i^T`` stacked into
    ``X = [Xg | Xc]``, ``Y = [Yg | Yc]``, the instance pencil is
    ``P_k(s) = P0(s) + X D_k(s) Y^T`` where ``D_k(s)`` is the diagonal
    of parameter weights (C-columns carry an extra factor ``s``).  The
    Sherman-Morrison-Woodbury identity then gives

    ``H_k(s) = H0(s) - A(s) D_k (I + C(s) D_k)^{-1} Bm(s)``

    where ``H0``, ``A``, ``Bm``, ``C`` are instance-*independent*
    rational grids precomputed from the nominal eigensystem -- the only
    per-(instance, frequency) work is one ``rho x rho`` solve.  The
    identity is exact: agreement with the eig kernel is limited by
    rounding only (pinned to 1e-10 relative by property tests).

Poles (low-rank update of the nominal operator)
    ``A_k = G_k^{-1} C_k = A0 + P Q_k`` with a constant ``q x rho``
    factor ``P`` and a cheap per-instance ``rho x q`` factor ``Q_k``
    (one ``Rg x Rg`` solve each), so the stacked spectra come from
    batched ``eigvals`` on corrections assembled in ``O(q^2 rho)`` --
    no per-instance ``G_k^{-1} C_k`` solve.

Routing is the planner's job (:meth:`repro.runtime.engine.Study.plan`):
:func:`lowrank_solver` detects the structure (memoized per model, with
an early-abort rank budget so densely perturbed models pay for one SVD)
and the plan compares :meth:`LowRankEnsembleSolver.sweep_flops` against
:func:`eig_sweep_flops` before switching kernels, exposing the detected
rank and the estimate on the :class:`~repro.runtime.engine.ExecutionPlan`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.lowrank import sensitivity_rank_factors
from repro.obs import metrics as obs_metrics
from repro.runtime.batch import (
    _dense,
    _dense_nominal,
    _memo_cache,
    _poles_from_eigenvalues,
    _sensitivity_stacks,
    as_sample_matrix,
    supports_batching,
)

# Detection thresholds: the correction must stay genuinely small
# (rho <= q/3 keeps the rho^3 Woodbury blocks an order below the q^3
# eigendecompositions) and the nominal eigenbasis well enough
# conditioned that the exact identities do not lose digits.
RANK_TOL = 1e-9
COND_LIMIT = 1e8

_ENSEMBLES = obs_metrics.counter("runtime.lowrank.ensembles")


def eig_sweep_flops(
    order: int,
    num_samples: int,
    num_frequencies: int,
    ports: int = 1,
    want_poles: bool = False,
) -> int:
    """Rough flop estimate of the per-instance eig sweep kernel.

    ``m (38 q^3 + 8 n_f q p)``: one real solve + one eigendecomposition
    + two complex solves per instance, then the rational grid.  Like
    :meth:`LowRankEnsembleSolver.sweep_flops` this is an
    order-of-magnitude *routing* figure, not a performance model --
    the planner only compares the two estimates against each other.
    ``want_poles`` is accepted for signature symmetry (the eig kernel's
    eigendecomposition already serves both quantities).
    """
    del want_poles  # poles ride the same per-instance eigendecomposition
    q = order
    per_instance = 38.0 * q**3
    grid = 8.0 * num_frequencies * q * max(ports, 1)
    return int(num_samples * (per_instance + grid))


class LowRankEnsembleSolver:
    """Ensemble sweep/pole evaluation via nominal-eigenbasis corrections.

    Built by :func:`lowrank_solver` after detection succeeds; holds the
    nominal eigensystem and the projected correction factors.  All
    per-call work is vectorized over the ``(instance, frequency)`` grid
    and every instance row is computed independently, so chunked
    evaluation is bit-identical to one-shot evaluation (the streaming
    drivers' determinism contract).
    """

    def __init__(self, model, g_factors, c_factors):
        self._model = model
        g0, c0 = _dense_nominal(model)
        b = _dense(model.nominal.B).astype(float)
        l_mat = _dense(model.nominal.L).astype(float)
        q = g0.shape[0]

        def _stack(factors):
            xs = [x for x, _ in factors]
            ys = [y for _, y in factors]
            pcol = np.concatenate(
                [np.full(x.shape[1], i, dtype=np.intp) for i, x in enumerate(xs)]
            ) if xs else np.zeros(0, dtype=np.intp)
            x = np.hstack(xs) if xs else np.zeros((q, 0))
            y = np.hstack(ys) if ys else np.zeros((q, 0))
            return x, y, pcol

        xg, yg, self._pcol_g = _stack(g_factors)
        xc, yc, self._pcol_c = _stack(c_factors)
        self._rank_g = xg.shape[1]
        self._rank_c = xc.shape[1]
        self.rank = self._rank_g + self._rank_c
        self.order = q
        self.num_ports = l_mat.shape[1] * b.shape[1]

        a0 = np.linalg.solve(g0, c0)
        lam0, v0 = np.linalg.eig(a0)
        self.cond_v0 = float(np.linalg.cond(v0))
        self._lam0 = lam0

        # Response precompute: everything instance-independent of the
        # Woodbury identity, expressed in the nominal eigenbasis.
        # X/Y column order is [G-columns | C-columns]; C-columns carry
        # the extra factor s in the diagonal D_k(s).
        x = np.hstack([xg, xc])
        y = np.hstack([yg, yc])
        self._pcol = np.concatenate([self._pcol_g, self._pcol_c])
        self._is_c = np.concatenate(
            [np.zeros(self._rank_g, bool), np.ones(self._rank_c, bool)]
        )
        self._eye = np.eye(self.rank)
        u_all = np.linalg.solve(g0, x) if x.shape[1] else np.zeros((q, 0))
        g_inv_b = np.linalg.solve(g0, b)
        self._lt_v = l_mat.T @ v0
        self._w_b = np.linalg.solve(v0, g_inv_b.astype(complex))
        self._w_x = np.linalg.solve(v0, u_all.astype(complex))
        self._yt_v = y.T @ v0

        # Pole precompute: A_k = A0 + [Uc | Ug] Q_k with Uc/Ug the
        # G0-preconditioned factor columns.
        self._a0 = a0
        self._ug = u_all[:, : self._rank_g]
        self._uc = u_all[:, self._rank_g:]
        self._yg_t = yg.T
        self._yc_t = yc.T
        self._s_gg = yg.T @ self._ug
        self._yg_a0 = yg.T @ a0
        self._yg_uc = yg.T @ self._uc
        self._p = np.hstack([self._uc, self._ug])

    # -- responses -----------------------------------------------------

    def responses(self, samples, frequencies: Sequence[float]) -> np.ndarray:
        """``H(j 2 pi f, p_k)`` over the whole grid, shape ``(m, n_f, o, i)``.

        Exact Woodbury evaluation: one batched ``rho x rho`` solve per
        (instance, frequency) pair replaces the per-instance ``q x q``
        eigendecomposition of the eig kernel.
        """
        matrix = as_sample_matrix(self._model, samples)
        freqs = np.asarray(frequencies, dtype=float)
        rho = self.rank
        s = 2j * np.pi * freqs
        d = 1.0 / (1.0 + s[:, None] * self._lam0[None, :])  # (n_f, q)
        ltv_d = self._lt_v[None, :, :] * d[:, None, :]
        h0 = ltv_d @ self._w_b  # (n_f, o, i)
        if rho == 0 or matrix.shape[0] == 0:
            return np.broadcast_to(
                h0[None], (matrix.shape[0],) + h0.shape
            ).copy()
        a = ltv_d @ self._w_x  # (n_f, o, rho)
        ytv_d = self._yt_v[None, :, :] * d[:, None, :]
        bm = ytv_d @ self._w_b  # (n_f, rho, i)
        cm = ytv_d @ self._w_x  # (n_f, rho, rho)
        weights = matrix[:, self._pcol]  # (m, rho)
        sfac = np.where(self._is_c[None, :], s[:, None], 1.0 + 0j)  # (n_f, rho)
        dkj = weights[:, None, :] * sfac[None, :, :]  # (m, n_f, rho)
        # K = I + C(s) D_k; D_k scales the columns of C.  The identity
        # is added by broadcast (the multiply's output layout is not
        # guaranteed contiguous, so a strided-diagonal view would
        # silently write into a reshape copy).
        k = cm[None, :, :, :] * dkj[:, :, None, :]
        k += self._eye
        t = np.linalg.solve(k, bm)  # broadcast -> (m, n_f, rho, i)
        return h0[None] - np.matmul(a[None], dkj[..., None] * t)

    # -- poles ---------------------------------------------------------

    def instance_operators(self, samples) -> np.ndarray:
        """Stacked ``A_k = G_k^{-1} C_k`` assembled as low-rank updates.

        ``A_k = A0 + P Q_k`` with the constant ``q x rho`` factor ``P``
        and a per-instance ``rho x q`` factor ``Q_k`` costing one
        ``Rg x Rg`` solve -- no per-instance ``q x q`` solve.
        """
        matrix = as_sample_matrix(self._model, samples)
        num_samples = matrix.shape[0]
        q = self.order
        u_g = matrix[:, self._pcol_g]  # (m, Rg)
        u_c = matrix[:, self._pcol_c]  # (m, Rc)
        top = u_c[:, :, None] * self._yc_t[None, :, :]  # Dc_k Yc^T
        if self._rank_g:
            mid = self._yg_a0[None] + (
                (self._yg_uc[None] * u_c[:, None, :]) @ self._yc_t
                if self._rank_c
                else 0.0
            )
            gate = np.eye(self._rank_g)[None] + u_g[:, :, None] * self._s_gg[None]
            bottom = -np.linalg.solve(gate, u_g[:, :, None] * mid)
            q_k = np.concatenate([top, bottom], axis=1)
        else:
            q_k = top
        if q_k.shape[1] == 0:
            return np.broadcast_to(self._a0[None], (num_samples, q, q)).copy()
        return self._a0[None] + np.matmul(self._p, q_k)

    def instance_eigenvalues(self, samples) -> np.ndarray:
        """Stacked pencil eigenvalues ``lambda(A_k)``, shape ``(m, q)``."""
        return np.linalg.eigvals(self.instance_operators(samples))

    # -- the combined sweep kernel -------------------------------------

    def sweep(
        self,
        samples,
        frequencies: Sequence[float],
        num_poles: Optional[int] = 5,
        want_poles: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Responses and (optionally) dominant poles of the ensemble.

        Drop-in counterpart of the eig sweep kernel
        (:func:`repro.runtime.batch._sweep_study`): same signature
        convention, same shapes, same dominance ordering, agreement to
        rounding.  ``want_poles=False`` skips the spectral pass
        entirely -- the Woodbury response path never needs eigenvalues
        of the instances, which is where the largest speedups live.
        """
        _ENSEMBLES.inc()
        responses = self.responses(samples, frequencies)
        if not want_poles:
            return responses, None
        eigenvalues = self.instance_eigenvalues(samples)
        return responses, _poles_from_eigenvalues(eigenvalues, num_poles)

    def sweep_flops(
        self,
        num_samples: int,
        num_frequencies: int,
        want_poles: bool = False,
    ) -> int:
        """Rough flop estimate of :meth:`sweep` for planner routing.

        Counts the instance-independent rational grids, the batched
        ``rho x rho`` Woodbury solves (with a constant per-solve
        dispatch overhead -- thousands of tiny LAPACK calls are
        overhead-bound, not flop-bound), and, when poles are wanted,
        the correction assembly plus batched ``eigvals``.  Rough by
        design: only the comparison against :func:`eig_sweep_flops`
        matters, and both sides err in the same direction.
        """
        q = self.order
        rho = max(self.rank, 1)
        grid = 16.0 * num_frequencies * q * (rho + 2) * rho
        woodbury = num_samples * num_frequencies * (8.0 * rho**3 + 6.0 * rho**2 + 1500.0)
        flops = grid + woodbury
        if want_poles:
            flops += num_samples * (4.0 * q * q * rho + 15.0 * q**3)
        return int(flops)


def detect_lowrank_structure(
    model, tol: float = RANK_TOL, max_rank: Optional[int] = None
):
    """Per-parameter low-rank factors of a dense parametric model.

    Returns ``(g_factors, c_factors)`` -- one ``(X, Y)`` pair per
    parameter and matrix family, from
    :func:`repro.core.lowrank.sensitivity_rank_factors` -- or ``None``
    when the model is not dense-batchable, has no parameters, or the
    accumulated rank exceeds ``max_rank`` (default ``q // 3``, the
    point where the correction stops being small).  Detection aborts at
    the first SVD that blows the budget, so densely perturbed models
    pay almost nothing.
    """
    if not supports_batching(model):
        return None
    q = model.nominal.order
    if max_rank is None:
        max_rank = max(1, q // 3)
    dg, dc = _sensitivity_stacks(model)
    if dg.shape[0] == 0:
        return None
    factors = sensitivity_rank_factors(
        list(dg) + list(dc), tol=tol, max_total_rank=max_rank
    )
    if factors is None:
        return None
    num_parameters = dg.shape[0]
    return factors[:num_parameters], factors[num_parameters:]


def lowrank_solver(model, tol: float = RANK_TOL) -> Optional[LowRankEnsembleSolver]:
    """The model's :class:`LowRankEnsembleSolver`, or ``None``.

    Memoized on the model object (same per-model cache as the dense
    kernel stacks, so repeated planning costs a dict hit).  ``None``
    when detection fails or the nominal eigenbasis is too ill
    conditioned (``cond(V0) > 1e8``) for the exact identities to hold
    digits -- the planner then keeps the eig kernel, whose own
    probe-frequency guard covers per-instance conditioning.
    """
    cache = _memo_cache(model)
    if cache is not None and "lowrank_solver" in cache:
        return cache["lowrank_solver"]
    solver = None
    detected = detect_lowrank_structure(model, tol=tol)
    if detected is not None:
        candidate = LowRankEnsembleSolver(model, *detected)
        if np.isfinite(candidate.cond_v0) and candidate.cond_v0 <= COND_LIMIT:
            solver = candidate
    if cache is not None:
        cache["lowrank_solver"] = solver
    return solver
