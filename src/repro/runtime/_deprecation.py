"""FutureWarning machinery for the pre-engine runtime entry points.

PRs 1-3 grew the runtime as free functions (``batch_sweep_study``,
``stream_sweep_study``, ...); the :mod:`repro.runtime.engine` ``Study``
builder is now the one front door.  The legacy names remain importable
and bit-identical -- each is a thin shim over the same internal
implementation the engine routes to -- but every call emits exactly one
:class:`FutureWarning` pointing at the ``Study`` equivalent.

Internal code (analysis, CLI, examples, the engine itself) calls the
internal implementations directly and must never trip these shims; CI
enforces that by running the test suite with ``-W
error::FutureWarning``.
"""

from __future__ import annotations

import warnings


def warn_legacy(old_name: str, study_equivalent: str) -> None:
    """Emit the single FutureWarning a legacy shim owes per call.

    ``stacklevel=3`` points the warning at the shim's caller
    (``warn_legacy`` -> shim -> caller).
    """
    warnings.warn(
        f"{old_name} is deprecated and will become engine-internal; use the "
        f"Study engine instead: {study_equivalent} "
        "(see the README section 'One entry point').",
        FutureWarning,
        stacklevel=3,
    )
