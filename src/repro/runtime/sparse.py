"""Sparse shared-pattern runtime: batched *full-order* ensembles.

The batch kernels in :mod:`repro.runtime.batch` refuse sparse models
for a good reason -- densifying a 10k-node MNA system per Monte Carlo
instance would be catastrophically slow and memory-hungry.  But the
per-sample fallback is almost as wasteful: every
:meth:`~repro.circuits.variational.ParametricSystem.instantiate` call
chains scipy sparse additions (repeated pattern merges and
allocations), and every solve re-runs SuperLU's symbolic analysis on a
sparsity pattern that *never changes*.

This module exploits the structural invariant of variational systems:
``G(p) = G0 + sum_i p_i G_i`` and ``C(p)`` live, for every parameter
point, on the **union sparsity pattern** of the nominal and sensitivity
matrices.  :class:`SparsePatternFamily` precomputes that unified CSR
pattern plus per-parameter index maps once; afterwards

- instantiating ``G(p_k)`` for a whole sample batch is a data-array
  update (no per-sample pattern merges, no COO round trips), bit-
  identical to the scalar path;
- every pencil ``G(p_k) + s C(p_k)`` shares one symbolic analysis:
  either a banded LAPACK ``gbsv`` kernel on the RCM-permuted band (the
  natural form of ladders, buses, and power meshes) or SuperLU numeric
  refactorization through :meth:`repro.linalg.sparselu.SparseLU.refactor`.

The measured effect (``benchmarks/bench_runtime_sparse.py``): a
full-order Monte Carlo frequency sweep over a 2048-node network runs
>= 5x faster than the per-sample instantiate-and-solve loop, with
answers matching to solver roundoff.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.linalg import get_lapack_funcs
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.circuits.statespace import DescriptorSystem
from repro.linalg.sparselu import SparseLU
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.batch import as_sample_matrix

_FAMILY_ATTR = "_sparse_pattern_family"


def supports_sparse_batching(model) -> bool:
    """True when ``model`` is a parametric system with sparse matrices.

    The structural complement of
    :func:`repro.runtime.batch.supports_batching`: the same
    ``nominal``/``dG``/``dC`` shape contract, but with scipy sparse
    system matrices (a full-order
    :class:`~repro.circuits.variational.ParametricSystem`).
    """
    if not all(hasattr(model, name) for name in ("nominal", "dG", "dC", "num_parameters")):
        return False
    matrices = [model.nominal.G, model.nominal.C, *model.dG, *model.dC]
    return all(sp.issparse(matrix) for matrix in matrices)


def shared_pattern_family(model) -> "SparsePatternFamily":
    """The model's :class:`SparsePatternFamily`, built once and memoized.

    The family is cached on the model object itself (mirroring the
    dense nominal-matrix cache of
    :class:`~repro.core.model.ParametricReducedModel`), so repeated
    studies -- and the pickled copies a process executor ships to its
    workers -- pay the pattern analysis exactly once per model.
    """
    family = getattr(model, _FAMILY_ATTR, None)
    if family is None:
        family = SparsePatternFamily(model)
        try:
            setattr(model, _FAMILY_ATTR, family)
        except AttributeError:  # __slots__ or frozen models: skip memoizing
            pass
    return family


def _canonical_csr(matrix) -> sp.csr_matrix:
    csr = matrix.tocsr().copy()
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def _entry_keys(csr: sp.csr_matrix) -> np.ndarray:
    """Lexicographic ``row * n + col`` keys of a canonical CSR pattern."""
    n = csr.shape[1]
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr))
    return rows * np.int64(n) + csr.indices.astype(np.int64)


class SparsePatternFamily:
    """Unified sparsity pattern and data maps of a variational system.

    Parameters
    ----------
    model:
        A sparse parametric system (``nominal`` descriptor system plus
        ``dG``/``dC`` sensitivity lists -- see
        :func:`supports_sparse_batching`).
    max_bandwidth:
        Largest RCM half-bandwidth routed to the banded LAPACK pencil
        kernel (default 32 -- the empirical crossover against SuperLU
        refactorization: ``gbsv`` factor-plus-solve work grows as
        ``n * bw^2`` while its per-call overhead stays tiny, so narrow
        bands win big and wide bands lose).  Wider patterns use SuperLU
        numeric refactorization with one reused symbolic analysis.

    Attributes
    ----------
    indices, indptr:
        The unified CSR pattern shared by ``G0``, ``C0`` and every
        sensitivity matrix.
    solver_kind:
        ``"tridiagonal"``, ``"banded"``, or ``"superlu"`` -- which
        pencil kernel :meth:`frequency_response` uses.
    """

    def __init__(self, model, max_bandwidth: int = 32):
        if not supports_sparse_batching(model):
            raise ValueError(
                "model does not expose the sparse parametric shape contract "
                "(nominal/dG/dC with scipy sparse matrices)"
            )
        self.model = model
        nominal = model.nominal
        n = nominal.order
        self.order = n
        g0 = _canonical_csr(nominal.G)
        c0 = _canonical_csr(nominal.C)
        sensitivities = [_canonical_csr(m) for m in (*model.dG, *model.dC)]

        # Union pattern: |G0| + |C0| + sum |G_i| + |C_i| cannot cancel,
        # so its stored entries are exactly the union of all patterns.
        pattern = abs(g0) + abs(c0)
        for matrix in sensitivities:
            pattern = pattern + abs(matrix)
        pattern = _canonical_csr(pattern)
        self.indices = pattern.indices
        self.indptr = pattern.indptr
        self.nnz = pattern.nnz
        union_keys = _entry_keys(pattern)

        def positions(csr: sp.csr_matrix) -> np.ndarray:
            return np.searchsorted(union_keys, _entry_keys(csr)).astype(np.intp)

        self._g0_data = np.zeros(self.nnz)
        self._g0_data[positions(g0)] = g0.data
        self._c0_data = np.zeros(self.nnz)
        self._c0_data[positions(c0)] = c0.data

        # Per-parameter index maps: each sensitivity keeps its own raw
        # data plus the union positions it touches, so the bit-exact
        # accumulation only ever updates entries the scalar path updates.
        num_parameters = model.num_parameters
        self._dg_positions = [positions(sensitivities[i]) for i in range(num_parameters)]
        self._dg_data = [sensitivities[i].data for i in range(num_parameters)]
        self._dc_positions = [
            positions(sensitivities[num_parameters + i]) for i in range(num_parameters)
        ]
        self._dc_data = [sensitivities[num_parameters + i].data for i in range(num_parameters)]
        # Dense (n_p, nnz) stacks for the einsum (exact=False) path.
        self._dg_stack = np.zeros((num_parameters, self.nnz))
        self._dc_stack = np.zeros((num_parameters, self.nnz))
        for i in range(num_parameters):
            self._dg_stack[i, self._dg_positions[i]] = self._dg_data[i]
            self._dc_stack[i, self._dc_positions[i]] = self._dc_data[i]

        self._b_dense = np.asarray(
            nominal.B.toarray() if sp.issparse(nominal.B) else nominal.B, dtype=float
        )
        self._l_dense = np.asarray(
            nominal.L.toarray() if sp.issparse(nominal.L) else nominal.L, dtype=float
        )

        self._build_pencil_plan(pattern, max_bandwidth)

    # -- solver planning ----------------------------------------------

    def _build_pencil_plan(self, pattern: sp.csr_matrix, max_bandwidth: int) -> None:
        """Choose and precompute the shared-pattern pencil solver.

        RCM reorders the union pattern once; if the resulting band is
        narrow (ladders: 1, meshes: grid width) every pencil factors
        through LAPACK ``gbsv`` on a band array assembled straight from
        the data vector.  Wide patterns (random trees) fall back to
        SuperLU numeric refactorization with the ordering reused from
        one template factorization.
        """
        n = self.order
        perm = np.asarray(reverse_cuthill_mckee(pattern, symmetric_mode=False), dtype=np.intp)
        inverse = np.empty(n, dtype=np.intp)
        inverse[perm] = np.arange(n, dtype=np.intp)
        rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(self.indptr))
        prow = inverse[rows]
        pcol = inverse[self.indices]
        bandwidth = int(np.abs(prow - pcol).max()) if self.nnz else 0
        self.bandwidth = bandwidth
        self._lu_template: Optional[SparseLU] = None
        if bandwidth <= min(1, max_bandwidth):
            # Tridiagonal in RCM order (RC lines, ladders): LAPACK
            # ``gtsv`` beats ``gbsv`` ~2x and needs no band array -- the
            # three diagonals scatter straight from the data vector.
            self.solver_kind = "tridiagonal"
            diag = prow - pcol
            self._tri_scatter = (
                (np.flatnonzero(diag == 1), pcol[diag == 1]),      # sub (dl[j] = A[j+1, j])
                (np.flatnonzero(diag == 0), pcol[diag == 0]),      # main
                (np.flatnonzero(diag == -1), prow[diag == -1]),    # super (du[i] = A[i, i+1])
            )
            self._b_perm = self._b_dense[perm].astype(np.complex128)
            self._l_perm = self._l_dense[perm]
            self._csr_to_csc: Optional[np.ndarray] = None
        elif bandwidth <= max_bandwidth:
            self.solver_kind = "banded"
            kl = ku = bandwidth
            self._band_kl = kl
            self._band_ldab = 2 * kl + ku + 1
            # LAPACK banded storage: ab[kl + ku + i - j, j] = A[i, j].
            self._band_row = kl + ku + prow - pcol
            self._band_col = pcol
            self._b_perm = self._b_dense[perm].astype(np.complex128)
            self._l_perm = self._l_dense[perm]
            self._csr_to_csc: Optional[np.ndarray] = None
        else:
            self.solver_kind = "superlu"
            # CSR -> CSC data permutation for the shared pattern, so the
            # SuperLU template (a CSC factorization) can consume data
            # vectors produced in union-CSR order.
            csc_keys = (
                self.indices.astype(np.int64) * np.int64(n)
                + rows.astype(np.int64)
            )
            self._csr_to_csc = np.argsort(csc_keys, kind="stable").astype(np.intp)
            self._csc_rows = rows[self._csr_to_csc]
            self._csc_indptr = np.concatenate(
                ([0], np.cumsum(np.bincount(self.indices, minlength=n)))
            )
        # One tally per family build: which solver tier the pattern
        # earned (the tier-mix of a study is then readable off the
        # metrics registry without re-deriving bandwidths).
        obs_metrics.counter(f"sparse.solver_tier.{self.solver_kind}").inc()

    def _superlu_template(self) -> SparseLU:
        """The shared symbolic template, built lazily (and after unpickling).

        SuperLU factor objects are not picklable, so the template is
        excluded from the pickled state a process executor ships to
        workers and rebuilt on first use.  The template's numeric
        values (``G0 + C0``) are irrelevant -- only its pattern and the
        fill-reducing ordering are reused -- but the factorization must
        succeed, so a singular nominal combination retries with
        pseudo-random data on the same pattern.
        """
        if self._lu_template is None:
            n = self.order
            for data in (
                (self._g0_data + self._c0_data)[self._csr_to_csc],
                np.random.default_rng(0).uniform(0.5, 1.5, self.nnz),
            ):
                template = sp.csc_matrix(
                    (data, self._csc_rows, self._csc_indptr), shape=(n, n)
                )
                try:
                    self._lu_template = SparseLU(template)
                    break
                except RuntimeError:
                    continue
            if self._lu_template is None:
                raise RuntimeError(
                    "could not factor a template matrix on the shared pattern; "
                    "the pattern appears structurally singular"
                )
        return self._lu_template

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lu_template"] = None  # SuperLU objects do not pickle
        return state

    # -- instantiation -------------------------------------------------

    def matrix_from_data(self, data: np.ndarray) -> sp.csr_matrix:
        """A CSR matrix on the shared pattern holding ``data``.

        Structure arrays are shared (zero-copy); treat the result as
        read-only.
        """
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.order, self.order)
        )

    def _point_data(self, point: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        g = self._g0_data.copy()
        c = self._c0_data.copy()
        for i, value in enumerate(point):
            # Matches `if value != 0.0` in ParametricSystem.conductance:
            # zero coefficients leave their entries untouched.
            if value != 0.0:
                g[self._dg_positions[i]] += value * self._dg_data[i]
                c[self._dc_positions[i]] += value * self._dc_data[i]
        return g, c

    def instantiate(self, p: Sequence[float], title: Optional[str] = None) -> DescriptorSystem:
        """The perturbed full system at ``p`` -- bit-identical values.

        Every stored value equals the corresponding entry of
        ``ParametricSystem.instantiate(p)`` bit for bit (same
        accumulation order, same skip-zero-coefficient rule); the
        pattern is the shared union pattern, so entries a perturbation
        never touches appear as explicit zeros.
        """
        point = np.atleast_1d(np.asarray(p, dtype=float))
        if point.shape != (self.model.num_parameters,):
            raise ValueError(
                f"parameter point has shape {point.shape}, expected "
                f"({self.model.num_parameters},)"
            )
        g_data, c_data = self._point_data(point)
        nominal = self.model.nominal
        label = title or f"{nominal.title}@shared-pattern"
        return DescriptorSystem(
            self.matrix_from_data(g_data),
            self.matrix_from_data(c_data),
            nominal.B,
            nominal.L,
            input_names=list(nominal.input_names),
            output_names=list(nominal.output_names),
            state_names=list(nominal.state_names),
            title=label,
        )

    def batch_data(self, samples, exact: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked ``(G, C)`` data arrays over a sample matrix.

        Returns ``(g_data, c_data)`` of shape ``(m, nnz)`` on the
        shared pattern.  With ``exact`` (default) the per-entry
        accumulation is bit-identical to the scalar path; with
        ``exact=False`` the update is one matmul contraction
        ``data = data0 + samples @ d_stack`` (equal to rounding).
        """
        matrix = as_sample_matrix(self.model, samples)
        if not exact:
            g = self._g0_data[None, :] + matrix @ self._dg_stack
            c = self._c0_data[None, :] + matrix @ self._dc_stack
            return g, c
        num_samples = matrix.shape[0]
        g = np.broadcast_to(self._g0_data, (num_samples, self.nnz)).copy()
        c = np.broadcast_to(self._c0_data, (num_samples, self.nnz)).copy()
        for i in range(matrix.shape[1]):
            weights = matrix[:, i]
            nonzero = np.flatnonzero(weights != 0.0)
            if nonzero.size == 0:
                continue
            g_cols = self._dg_positions[i]
            c_cols = self._dc_positions[i]
            g[np.ix_(nonzero, g_cols)] += weights[nonzero, None] * self._dg_data[i]
            c[np.ix_(nonzero, c_cols)] += weights[nonzero, None] * self._dc_data[i]
        return g, c

    # -- pencil solves -------------------------------------------------

    def _solve_banded(self, pencil_data: np.ndarray) -> np.ndarray:
        """``H`` blocks for a ``(k, nnz)`` stack of pencil data arrays.

        Band arrays for the whole stack are assembled in one vectorized
        scatter; each system then runs through LAPACK ``gbsv``
        (factor + solve, no symbolic phase at all).
        """
        num_systems = pencil_data.shape[0]
        n = self.order
        kl = self._band_kl
        # (k, n, ldab) C-order so each ab[k].T is an F-order (ldab, n) view.
        ab = np.zeros((num_systems, n, self._band_ldab), dtype=np.complex128)
        ab[:, self._band_col, self._band_row] = pencil_data
        gbsv = get_lapack_funcs(("gbsv",), (ab,))[0]
        out = np.empty(
            (num_systems, self._l_dense.shape[1], self._b_dense.shape[1]),
            dtype=np.complex128,
        )
        for k in range(num_systems):
            _, _, x, info = gbsv(kl, kl, ab[k].T, self._b_perm, overwrite_ab=True)
            if info != 0:
                raise RuntimeError(
                    f"banded pencil solve failed (LAPACK gbsv info={info}); "
                    "the pencil is singular at this (sample, frequency) point"
                )
            out[k] = self._l_perm.T @ x
        return out

    def _solve_superlu(self, pencil_data: np.ndarray) -> np.ndarray:
        template = self._superlu_template()
        num_systems = pencil_data.shape[0]
        b = self._b_dense.astype(np.complex128)
        out = np.empty(
            (num_systems, self._l_dense.shape[1], self._b_dense.shape[1]),
            dtype=np.complex128,
        )
        for k in range(num_systems):
            lu = template.refactor(pencil_data[k, self._csr_to_csc])
            out[k] = self._l_dense.T @ lu.solve(b)
        return out

    def _solve_tridiagonal(self, pencil_data: np.ndarray) -> np.ndarray:
        """``H`` blocks via LAPACK ``gtsv`` on the RCM tridiagonal form."""
        num_systems = pencil_data.shape[0]
        n = self.order
        (sub_e, sub_p), (main_e, main_p), (sup_e, sup_p) = self._tri_scatter
        dl = np.zeros((num_systems, max(n - 1, 0)), dtype=np.complex128)
        d = np.zeros((num_systems, n), dtype=np.complex128)
        du = np.zeros((num_systems, max(n - 1, 0)), dtype=np.complex128)
        dl[:, sub_p] = pencil_data[:, sub_e]
        d[:, main_p] = pencil_data[:, main_e]
        du[:, sup_p] = pencil_data[:, sup_e]
        gtsv = get_lapack_funcs(("gtsv",), (d,))[0]
        out = np.empty(
            (num_systems, self._l_dense.shape[1], self._b_dense.shape[1]),
            dtype=np.complex128,
        )
        for k in range(num_systems):
            # Each diagonal row is used exactly once: let LAPACK work in place.
            _, _, _, x, info = gtsv(
                dl[k], d[k], du[k], self._b_perm,
                overwrite_dl=True, overwrite_d=True, overwrite_du=True,
            )
            if info != 0:
                raise RuntimeError(
                    f"tridiagonal pencil solve failed (LAPACK gtsv info={info}); "
                    "the pencil is singular at this (sample, frequency) point"
                )
            out[k] = self._l_perm.T @ x
        return out

    def _solve_pencils(self, pencil_data: np.ndarray) -> np.ndarray:
        with obs_trace.span(
            "sparse.refactor",
            solver=self.solver_kind,
            pencils=int(pencil_data.shape[0]),
        ):
            if self.solver_kind == "tridiagonal":
                return self._solve_tridiagonal(pencil_data)
            if self.solver_kind == "banded":
                return self._solve_banded(pencil_data)
            return self._solve_superlu(pencil_data)

    def transfer(self, s: complex, samples) -> np.ndarray:
        """Stacked full-order transfer matrices ``H(s, p_k)``.

        Returns shape ``(m, m_out, m_in)``; one shared-pattern numeric
        factorization per sample, zero symbolic work.
        """
        g, c = self.batch_data(samples)
        pencil = g.astype(np.complex128) + complex(s) * c
        return self._solve_pencils(pencil)

    def frequency_response(self, frequencies: Sequence[float], samples) -> np.ndarray:
        """``H(j 2 pi f, p_k)`` for every (sample, frequency) pair.

        The sample batch is instantiated once as data arrays; every
        pencil is then a vectorized axpy on the shared pattern followed
        by one numeric factorization.  Returns shape
        ``(m, n_f, m_out, m_in)``.
        """
        freqs = np.asarray(frequencies, dtype=float)
        g, c = self.batch_data(samples)
        num_samples = g.shape[0]
        out = np.empty(
            (num_samples, freqs.size, self._l_dense.shape[1], self._b_dense.shape[1]),
            dtype=np.complex128,
        )
        s_values = 2j * np.pi * freqs
        for k in range(num_samples):
            pencils = g[k][None, :] + s_values[:, None] * c[k][None, :]
            out[k] = self._solve_pencils(pencils)
        return out

    def __repr__(self) -> str:
        return (
            f"SparsePatternFamily(n={self.order}, nnz={self.nnz}, "
            f"np={self.model.num_parameters}, solver={self.solver_kind!r}, "
            f"bandwidth={self.bandwidth})"
        )


def sparse_batch_transfer(model, s: complex, samples) -> np.ndarray:
    """Deprecated shim: stacked ``H(s, p_k)`` of a sparse full model.

    Delegates to the identical shared-pattern family method the engine
    routes to (:meth:`SparsePatternFamily.transfer`), so results are
    bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``shared_pattern_family(model).transfer(s, samples)`` directly, or
    the ``Study`` engine for whole sweeps.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "sparse_batch_transfer",
        "shared_pattern_family(model).transfer(s, samples)",
    )
    return shared_pattern_family(model).transfer(s, samples)


def sparse_batch_frequency_response(model, frequencies: Sequence[float], samples) -> np.ndarray:
    """Deprecated shim: ``H(j 2 pi f, p_k)`` of a sparse full model.

    Delegates to the identical shared-pattern family method the engine
    routes to (:meth:`SparsePatternFamily.frequency_response`), so
    results are bit-for-bit what they always were; emits one
    :class:`FutureWarning` per call.  Use
    ``Study(model).scenarios(samples).sweep(frequencies,
    keep_responses=True).run()`` instead.
    """
    from repro.runtime._deprecation import warn_legacy

    warn_legacy(
        "sparse_batch_frequency_response",
        "Study(model).scenarios(samples).sweep(frequencies, "
        "keep_responses=True).run()",
    )
    return shared_pattern_family(model).frequency_response(frequencies, samples)
