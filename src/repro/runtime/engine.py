"""One front door: the declarative ``Study`` engine.

PRs 1-3 built the fast kernels of the serving layer -- dense batched
evaluation, the sparse shared-pattern family, chunked streaming
drivers, parallel executors -- but shipped them as a menu of free
functions the caller had to pick between by hand.  This module is the
single declarative entry point that routes to the optimal kernel
automatically:

>>> study = (
...     Study(model)
...     .scenarios(MonteCarloPlan(num_instances=10_000, seed=7))
...     .sweep(np.logspace(7, 10, 200))
...     .poles(5)
...     .memory_budget(256 * 2**20)
... )
>>> print(study.plan())          # inspect before paying for anything
>>> result = study.run()         # bit-identical to the legacy kernels

``Study`` is a builder: ``scenarios`` + one workload (``sweep`` /
``transient`` / ``poles`` / ``sensitivities``) plus optional execution
directives (``executor``, ``chunk`` or ``memory_budget``, ``cached`` +
``reduced``, ``progress``, and the durability trio ``store`` /
``shard`` / ``resume``).  :meth:`Study.plan` inspects the target and
workload and returns an :class:`ExecutionPlan` naming the chosen route,
kernel tier, chunk count, and estimated peak bytes; :meth:`Study.run`
executes that plan.

Routes
------

- ``dense-batch`` -- dense-batchable targets (reduced macromodels) in
  one chunk: the eig-amortized sweep kernel, the propagator transient
  kernel, stacked instantiation for poles/sensitivities.
- ``dense-stream`` -- the same kernels chunked under ``chunk`` /
  ``memory_budget``, with incremental envelope reducers.
- ``sparse-family`` -- sparse full-order parametric systems: batched
  data-array instantiation on the shared union pattern, pencils through
  the tridiagonal / banded / SuperLU-refactorization tier.
- ``executor-full`` -- per-sample full-order reference solves (poles,
  sensitivities) fanned out over the configured executor; executors the
  engine constructs from a spec are shut down deterministically when
  the run finishes.

Determinism contract
--------------------

Every route delegates to the same internal implementation the
historical free functions wrapped, so each result is **bit-identical**
to its legacy path: sweeps to ``batch_sweep_study`` /
``stream_sweep_study``, transients to ``batch_transient_study`` /
``stream_transient_study``, pole studies to the Monte Carlo protocol
of :func:`repro.analysis.montecarlo.monte_carlo_pole_study`, and
sensitivities to
:func:`repro.analysis.sensitivity.transfer_sensitivities`.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import JsonlSink
from repro.runtime.batch import (
    _pencil_time_scales,
    as_sample_matrix,
    batch_instantiate,
    batch_transfer_sensitivities,
    supports_batching,
    systems_from_stacks,
)
from repro.runtime.cache import array_fingerprint, cached_target_fingerprint
from repro.runtime.executor import (
    SerialExecutor,
    executor_map_array,
    resolve_executor,
    resolve_owned_executor,
)
from repro.runtime.scenarios import ScenarioPlan, StepInput
from repro.runtime.scheduler import (
    LeaseBoard,
    default_worker_id,
    drain_chunks,
    parse_worker_id,
)
from repro.runtime.lowrank import eig_sweep_flops, lowrank_solver
from repro.runtime.sparse import shared_pattern_family, supports_sparse_batching
from repro.runtime.store import StudyStore, study_fingerprint
from repro.runtime.stream import (
    _chunk_telemetry,
    _observe_chunk,
    _owned_chunks,
    _stream_sweep_study,
    _stream_transient_study,
    _sweep_chunk_payload,
    _transient_chunk_payload,
    sweep_chunk_bytes,
    transient_chunk_bytes,
)
from repro.runtime.transient import default_horizon

ProgressCallback = Callable[[int, int], None]

# Process-global memo of built plans, keyed by everything routing reads
# (target content, workload config, sample matrix, directives).  Repeat
# dispatch of an identical declaration -- the Monte Carlo driver pattern
# of building a fresh Study per batch -- becomes a dict hit instead of
# re-hashing and re-routing; the ``engine.plan_cache.*`` counters make
# the behaviour observable.  ExecutionPlan is frozen, so sharing one
# instance across studies is safe.  Server worker threads plan
# concurrently, so every read-modify-write of the OrderedDict happens
# under _PLAN_CACHE_LOCK; plan *construction* stays outside the lock
# (it can run reductions), accepting an occasional duplicate build
# over holding the lock through LAPACK calls.
_PLAN_CACHE: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
_PLAN_CACHE_LOCK = threading.Lock()
_PLAN_CACHE_LIMIT = 512
_PLAN_CACHE_HITS = obs_metrics.counter("engine.plan_cache.hits")
_PLAN_CACHE_MISSES = obs_metrics.counter("engine.plan_cache.misses")

# float32 keeps ~2^-24 relative precision; a pencil whose conditioning
# eats more than half that budget is re-verified in float64 on the
# screening tier of the pole routes.
_SCREEN_POLE_COND = 1e5
_SCREEN_FALLBACKS = obs_metrics.counter("runtime.batch.eig_fallbacks")


# -- executor-route task bodies (module level: picklable) --------------


def _pole_task_model(model, num_poles: int, point: np.ndarray):
    """Reference solve for one instance: dominant poles of the model."""
    from repro.analysis.poles import dominant_poles

    with obs_trace.span("poles.instance", kernel="instantiate"):
        return dominant_poles(model, num_poles, point)


def _pole_task_family(family, num_poles: int, point: np.ndarray):
    """Reference solve through the shared sparsity pattern.

    :meth:`SparsePatternFamily.instantiate` is bit-identical to the
    scalar instantiation, so the poles match :func:`_pole_task_model`
    exactly while skipping the per-sample pattern merges.
    """
    from repro.analysis.poles import dominant_poles

    with obs_trace.span("poles.instance", kernel="shared-pattern"):
        return dominant_poles(family.instantiate(point), num_poles)


def _sensitivity_task(model, s: complex, point: np.ndarray):
    """Exact per-sample ``dH/dp`` through the factored-solve path."""
    from repro.analysis.sensitivity import _scalar_sensitivities

    with obs_trace.span("sensitivities.instance"):
        return _scalar_sensitivities(model, s, point)


def _screen_pole_block(model, block, num_poles):
    """Float32 screening tier of the stacked dense pole route.

    Every instance's pencil is time-scale normalized (see
    :func:`_pencil_time_scales`), cast to float32, and solved through
    the reference :func:`~repro.analysis.poles.dominant_poles`
    protocol.  Instances whose float32 ``G`` is too ill-conditioned
    (``cond > _SCREEN_POLE_COND``) or whose screened poles come back
    non-finite are re-solved in float64.  Returns ``(pole_sets,
    verified)``: ``verified[k]`` is True for re-verified float64 rows,
    False for float32 rows the screen accepted.
    """
    from repro.analysis.poles import dominant_poles

    g, c = batch_instantiate(model, block, exact=True)
    alpha = _pencil_time_scales(g, c)
    g32 = g.astype(np.float32)
    c32 = (c * alpha[:, None, None]).astype(np.float32)
    with np.errstate(all="ignore"):
        conds = np.linalg.cond(g32.astype(np.float64))
    verified = ~np.isfinite(conds) | (conds > _SCREEN_POLE_COND)
    sets: List[np.ndarray] = []
    pairs = zip(
        systems_from_stacks(model, g, c),
        systems_from_stacks(model, g32, c32),
    )
    for k, (full, screen) in enumerate(pairs):
        if not verified[k]:
            poles = np.asarray(dominant_poles(screen, num_poles), dtype=complex)
            poles = poles * alpha[k]
            if np.all(np.isfinite(poles)):
                sets.append(poles)
                continue
            verified[k] = True
        sets.append(np.asarray(dominant_poles(full, num_poles), dtype=complex))
    if verified.any():
        _SCREEN_FALLBACKS.inc(int(verified.sum()))
    return sets, verified


# -- results for the non-sweep workloads --------------------------------


def _pack_pole_sets(pole_sets) -> dict:
    """Ragged pole sets -> a rectangular ``.npz``-storable payload.

    Residue filtering can retain fewer than ``num_poles`` entries per
    instance, so the sets are zero-padded into one complex matrix with
    a per-row length vector; :func:`_unpack_pole_sets` reverses this
    exactly (values and row counts round-trip bit-for-bit).
    """
    rows = [np.asarray(p, dtype=complex).ravel() for p in pole_sets]
    lengths = np.array([row.size for row in rows], dtype=np.int64)
    width = int(lengths.max()) if lengths.size else 0
    padded = np.zeros((len(rows), width), dtype=complex)
    for k, row in enumerate(rows):
        padded[k, : row.size] = row
    return {"poles_padded": padded, "poles_lengths": lengths}


def _unpack_pole_sets(payload: dict) -> List[np.ndarray]:
    """Inverse of :func:`_pack_pole_sets`."""
    padded = payload["poles_padded"]
    return [
        np.array(padded[k, : int(n)]) for k, n in enumerate(payload["poles_lengths"])
    ]


@dataclass
class PoleStudy:
    """Dominant poles of every sampled instance (the Figs. 5-6 quantity).

    ``pole_sets[k]`` holds instance ``k``'s dominant poles in dominance
    order -- ragged, because residue filtering and coincidence merging
    can retain fewer than ``num_poles`` entries.  :attr:`poles` stacks
    them into a ``nan``-padded ``(m, num_poles)`` array.  Sharded runs
    cover only their own chunk rows: ``samples`` is then the covered
    subset and ``instance_indices`` maps it back to plan rows.

    ``verified`` is the float32-screening provenance column: under
    ``Study.precision("screen")`` it marks per instance whether the row
    was re-verified in float64 (True) or accepted from the float32
    screen (False); ``None`` on full-precision runs.
    """

    samples: np.ndarray
    num_poles: int
    pole_sets: List[np.ndarray] = field(default_factory=list)
    shard: Optional[Tuple[int, int]] = None
    instance_indices: Optional[np.ndarray] = None
    verified: Optional[np.ndarray] = None

    @property
    def num_samples(self) -> int:
        """Number of evaluated parameter instances."""
        return self.samples.shape[0]

    @property
    def poles(self) -> np.ndarray:
        """``(m, num_poles)`` stacked poles, ``nan``-padded per row."""
        out = np.full(
            (len(self.pole_sets), self.num_poles), np.nan + 1j * np.nan, dtype=complex
        )
        for k, row in enumerate(self.pole_sets):
            row = np.asarray(row, dtype=complex)[: self.num_poles]
            out[k, : row.size] = row
        return out


@dataclass
class SensitivityStudy:
    """Exact transfer-function parameter slopes of a sampled ensemble.

    ``sensitivities`` has shape ``(m, n_p, m_out, m_in)``: instance
    ``k``'s ``dH/dp_i`` at the study's expansion point ``s``.
    """

    samples: np.ndarray
    s: complex
    sensitivities: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of evaluated parameter instances."""
        return self.samples.shape[0]


# -- the inspectable plan ----------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """What :meth:`Study.run` will do, decided before anything runs.

    ``route`` is one of ``"dense-batch"``, ``"dense-stream"``,
    ``"sparse-family"``, ``"executor-full"``; ``kernel`` names the
    numeric kernel tier inside the route (e.g. the shared-pattern
    solver chosen by RCM bandwidth).  ``estimated_peak_bytes`` is the
    documented working-set estimate of the chunked drivers (constant
    factor ~2); for executor routes it is a rough per-worker figure.

    ``precision`` echoes the study's numeric tier (``"full"`` or
    ``"screen"``).  When the planner detects low-rank sensitivity
    structure on a dense sweep, ``detected_rank`` reports the total
    update rank and ``estimated_flops`` the flop estimate of the kernel
    it chose (order-of-magnitude accounting; only the eig-vs-low-rank
    comparison is meaningful), so the routing decision is inspectable.
    """

    route: str
    kernel: str
    workload: str
    target: str
    num_samples: int
    chunk_size: int
    num_chunks: int
    estimated_peak_bytes: int
    executor: str
    notes: Tuple[str, ...] = ()
    store: Optional[str] = None
    shard: Optional[Tuple[int, int]] = None
    precision: str = "full"
    detected_rank: Optional[int] = None
    estimated_flops: Optional[int] = None

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [
            f"route:     {self.route}",
            f"kernel:    {self.kernel}",
            f"workload:  {self.workload}",
            f"target:    {self.target}",
            f"samples:   {self.num_samples}"
            f" ({self.num_chunks} chunk(s) of {self.chunk_size})",
            f"peak:      ~{self.estimated_peak_bytes / 2**20:.1f} MiB",
            f"executor:  {self.executor}",
        ]
        if self.precision != "full":
            lines.append(f"precision: {self.precision} (float32 + float64 re-verify)")
        if self.detected_rank is not None:
            lines.append(f"lowrank:   detected rank {self.detected_rank}")
        if self.estimated_flops is not None:
            lines.append(f"flops:     ~{self.estimated_flops:.3g} (chosen kernel)")
        if self.store is not None:
            lines.append(f"store:     {self.store}")
        if self.shard is not None:
            lines.append(f"shard:     {self.shard[0] + 1}/{self.shard[1]}")
        for note in self.notes:
            lines.append(f"note:      {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class Study:
    """Declarative scenario-evaluation study over any supported target.

    ``target`` is a dense-batchable reduced macromodel, a sparse
    full-order parametric system, or (with :meth:`reduced`) a full
    system to be reduced first.  Builder methods return ``self`` so a
    study reads as one chained declaration; nothing is evaluated until
    :meth:`plan` (routing + reduction only) or :meth:`run`.
    """

    def __init__(self, target):
        self._target = target
        self._reducer = None
        self._cache = None
        self._scenarios = None
        self._frequencies: Optional[np.ndarray] = None
        self._keep_responses = False
        self._transient_options: Optional[dict] = None
        self._num_poles: Optional[int] = None
        self._precision: str = "full"
        self._sensitivity_point: Optional[complex] = None
        self._executor_spec = None
        self._chunk_size: Optional[int] = None
        self._memory_budget: Optional[int] = None
        self._store: Optional[StudyStore] = None
        self._shard: Optional[Tuple[int, int]] = None
        self._resume = False
        # (worker_id, lenient) context for _open_checkpoint; work() sets
        # it around the drain and merge phases, run() alone leaves the
        # strict no-worker default.
        self._worker_ctx: Tuple[Optional[str], bool] = (None, False)
        self._warehouse: Optional[Tuple[object, object]] = None
        self._last_warehouse = None
        self._last_drain = None
        self._progress: Optional[ProgressCallback] = None
        self._trace_sinks: List = []
        self._last_metrics: dict = {}
        self._resolved_target = None
        self._sample_matrix: Optional[np.ndarray] = None
        self._plan_cache: Optional[ExecutionPlan] = None

    # -- builder -------------------------------------------------------

    def _invalidate(self) -> "Study":
        self._sample_matrix = None
        self._plan_cache = None
        return self

    def scenarios(self, plan_or_samples) -> "Study":
        """Declare which parameter instances to visit.

        Accepts a :class:`~repro.runtime.scenarios.ScenarioPlan` (or
        any object with ``sample_matrix``) or a raw ``(m, n_p)`` sample
        matrix.
        """
        self._scenarios = plan_or_samples
        return self._invalidate()

    def sweep(self, frequencies: Sequence[float], keep_responses: bool = False) -> "Study":
        """Declare a frequency-domain workload over ``frequencies`` (Hz).

        ``keep_responses`` retains the full ``(m, n_f, m_out, m_in)``
        grid on the result (defeats the streaming memory bound; meant
        for small studies and regression tests).
        """
        self._frequencies = np.asarray(frequencies, dtype=float)
        self._keep_responses = bool(keep_responses)
        return self._invalidate()

    def transient(
        self,
        waveform=None,
        t_final: Optional[float] = None,
        num_steps: int = 500,
        method: str = "trapezoidal",
        delay_threshold: float = 0.5,
        slew_bounds: Tuple[float, float] = (0.1, 0.9),
        output_index: int = 0,
        reference: str = "steady",
        keep_outputs: bool = False,
    ) -> "Study":
        """Declare a time-domain workload.

        ``waveform`` is any :class:`~repro.runtime.scenarios.InputWaveform`
        (default: unit step); ``t_final`` defaults to the nominal
        settling horizon.  The remaining options carry the delay/slew
        extraction semantics of the transient study kernel.
        """
        self._transient_options = dict(
            waveform=waveform,
            t_final=t_final,
            num_steps=num_steps,
            method=method,
            delay_threshold=delay_threshold,
            slew_bounds=slew_bounds,
            output_index=output_index,
            reference=reference,
            keep_outputs=keep_outputs,
        )
        return self._invalidate()

    def poles(self, num: int = 5) -> "Study":
        """Request dominant poles.

        Combined with :meth:`sweep` (dense targets) the poles ride the
        sweep's eigendecomposition for free, with the raw-dominance
        ordering of the spectral kernel.  As a standalone workload the
        engine runs the residue-weighted
        :func:`~repro.analysis.poles.dominant_poles` protocol per
        instance -- the Monte Carlo reference semantics.  Dense targets
        with no declared executor use stacked batched instantiation;
        declaring an executor (via :meth:`executor`) switches to the
        per-sample executor route, which bounds memory to one instance
        per worker and is bit-identical to the stacked path.
        """
        if num < 0:
            raise ValueError("num must be >= 0")
        self._num_poles = int(num)
        return self._invalidate()

    def sensitivities(self, s: complex) -> "Study":
        """Request exact ``dH/dp_i`` at the complex frequency ``s``."""
        self._sensitivity_point = complex(s)
        return self._invalidate()

    def precision(self, tier: str) -> "Study":
        """Numeric tier of the dense kernels: ``"full"`` or ``"screen"``.

        ``"full"`` (the default) runs everything in float64.
        ``"screen"`` runs the dense sweep/pole kernels in float32,
        checks every instance's result against a float64 reference
        probe (sweeps) or a conditioning bound (poles), and re-solves
        only the flagged instances in float64.  The result carries a
        per-instance ``verified`` column recording which rows were
        re-verified (True) versus accepted from the screen (False);
        the column persists through :meth:`store` checkpoints.  Screen
        results are *approximate* (float32 rounding, typically ~1e-6
        relative on healthy models) -- use the tier to triage large
        ensembles, then re-run the interesting instances at full
        precision.  Rejected at plan time for sparse targets and for
        transient/sensitivity workloads, which stay float64-only.
        """
        if tier not in ("full", "screen"):
            raise ValueError(
                f"unknown precision tier {tier!r}: use 'full' or 'screen'"
            )
        self._precision = tier
        return self._invalidate()

    def executor(self, spec) -> "Study":
        """Executor for the per-sample full-order routes.

        Accepts anything :func:`~repro.runtime.executor.resolve_executor`
        does.  Specs (``"thread"``, ``"process"``, a worker count) are
        constructed *and deterministically shut down* by the engine;
        already-constructed executor instances pass through untouched
        and stay owned by the caller.
        """
        self._executor_spec = spec
        return self._invalidate()

    def memory_budget(self, num_bytes: int) -> "Study":
        """Bound peak memory; the chunk size is derived automatically.

        Uses the documented per-chunk estimates
        (:func:`~repro.runtime.stream.sweep_chunk_bytes` /
        :func:`~repro.runtime.stream.transient_chunk_bytes`).  Raises at
        plan time, quoting the single-instance estimate, when even one
        instance cannot fit.  Mutually exclusive with :meth:`chunk`.
        """
        if num_bytes < 1:
            raise ValueError("memory budget must be >= 1 byte")
        if self._chunk_size is not None:
            raise ValueError("chunk(...) and memory_budget(...) are mutually exclusive")
        self._memory_budget = int(num_bytes)
        return self._invalidate()

    def chunk(self, chunk_size: int) -> "Study":
        """Set the streaming chunk size by hand (instances per batch).

        Mutually exclusive with :meth:`memory_budget`.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self._memory_budget is not None:
            raise ValueError("chunk(...) and memory_budget(...) are mutually exclusive")
        self._chunk_size = int(chunk_size)
        return self._invalidate()

    def store(self, store) -> "Study":
        """Persist results and checkpoints under a durable study store.

        Accepts a directory path or an existing
        :class:`~repro.runtime.store.StudyStore`.  Each streamed chunk
        (and each checkpoint unit of a chunked pole study) is written
        to disk the moment it completes, keyed by the study's content
        fingerprint; a re-run of the same study loads completed chunks
        instead of recomputing them and is bit-identical to an
        uninterrupted run.  See :mod:`repro.runtime.store` for the
        on-disk layout and the provenance (manifest fingerprint +
        per-chunk checksums) every persisted result carries.
        """
        self._store = store if isinstance(store, StudyStore) else StudyStore(store)
        return self._invalidate()

    def warehouse(self, directory, backend: str = "auto") -> "Study":
        """Ingest this study's checkpoints into a columnar warehouse.

        After each successful :meth:`run` (including the merge phase of
        :meth:`work`), every durable chunk the store holds for this
        study is converted into partitioned column tables under
        ``directory`` (see :class:`repro.warehouse.Warehouse`), with
        per-instance parameter columns from the realized sample matrix
        and ``source`` provenance (``computed`` / ``resumed`` /
        ``stolen``) attributed from this run's own trace spans.  Ingest
        is idempotent -- chunks already warehoused (by a previous run,
        a concurrent drainer, or the serve supervisor) are skipped --
        and :meth:`warehouse_report` tells what the last run added.

        Requires :meth:`store`; like :meth:`trace`, the directive
        observes the run without affecting any numeric result.
        ``directory`` may also be an existing
        :class:`~repro.warehouse.Warehouse` (then ``backend`` is
        ignored).
        """
        self._warehouse = (directory, backend)
        return self

    def warehouse_report(self):
        """The :class:`~repro.warehouse.IngestReport` of the most recent
        :meth:`run` with a :meth:`warehouse` declared (``None`` before
        the first)."""
        return self._last_warehouse

    def shard(self, index: int, of: int) -> "Study":
        """Restrict this run to its slice of the global chunk grid.

        ``index`` is 0-based in ``[0, of)``; chunk ``j`` belongs to
        shard ``index`` when ``j % of == index``, so ``of`` machines
        running the same declaration with different indices split the
        study without coordination.  The shard's result covers only its
        own instances (``instance_indices`` maps them back); combine
        with :meth:`store` and a final :meth:`resume` run to merge all
        shards into the one full result set.  (The CLI's ``--shard
        I/N`` spec is 1-based; :func:`repro.runtime.store.parse_shard`
        converts.)
        """
        of = int(of)
        index = int(index)
        if of < 1 or not 0 <= index < of:
            raise ValueError(
                f"shard index must satisfy 0 <= index < of, got index={index} of={of}"
            )
        self._shard = (index, of)
        return self._invalidate()

    def resume(self, flag: bool = True) -> "Study":
        """Require (and reuse) persisted checkpoints from :meth:`store`.

        A store-backed run always skips chunks that are already
        persisted; ``resume()`` additionally *asserts* there is
        something to resume -- it raises
        :class:`~repro.runtime.store.StoreError` when the store holds
        no manifest for this study's fingerprint (or a corrupt or
        layout-incompatible one), instead of silently starting over.
        A resumed run with no shard declared merges every shard's
        chunks into the one full result set.
        """
        self._resume = bool(flag)
        return self._invalidate()

    def reduced(self, reducer) -> "Study":
        """Reduce the target with ``reducer`` before evaluation.

        ``reducer.reduce(target)`` runs lazily at plan time (once;
        memoized).  Combine with :meth:`cached` to skip reduction on
        repeat workloads.
        """
        self._reducer = reducer
        self._resolved_target = None
        return self._invalidate()

    def cached(self, cache) -> "Study":
        """Route the :meth:`reduced` reduction through a ModelCache."""
        self._cache = cache
        self._resolved_target = None
        return self._invalidate()

    def progress(self, callback: ProgressCallback) -> "Study":
        """Register ``callback(instances_done, total_instances)``."""
        self._progress = callback
        return self._invalidate()

    def trace(self, sink) -> "Study":
        """Attach an observability sink for this study's runs.

        ``sink`` is either a path (a JSONL trace file is opened for the
        duration of each :meth:`run` and closed afterwards) or any sink
        object with an ``emit(record)`` method -- e.g.
        :class:`~repro.obs.trace.MemorySink`,
        :class:`~repro.obs.export.JsonlSink` (then caller-owned, left
        open), or :class:`~repro.obs.progress.ProgressReporter`.  Sinks
        accumulate: several may observe the same run.  While at least
        one sink is installed the engine, the streaming drivers, the
        store, and the sparse solvers emit spans (``study.run`` >
        ``study.chunk`` > ``store.save`` / ``sparse.refactor`` / ...);
        spans raised inside executor workers are captured there and
        re-parented onto this run's chunk spans.  With no sink
        attached every span site short-circuits to a shared no-op.
        """
        self._trace_sinks.append(sink)
        return self

    def metrics(self) -> dict:
        """Metrics-registry delta of the most recent :meth:`run`.

        Returns ``{"counters": ..., "gauges": ..., "histograms": ...}``
        with only the instruments the run moved (e.g.
        ``study.instances_evaluated``, ``store.chunks_saved``,
        ``linalg.sparselu.refactorizations``); ``{}`` before the first
        run.  The underlying instruments are process-global (see
        :func:`repro.obs.registry`); this view isolates one run's
        contribution.
        """
        return self._last_metrics

    # -- resolution ----------------------------------------------------

    def _resolve_target(self):
        """The object the kernels evaluate (after any cached reduction)."""
        if self._resolved_target is not None:
            return self._resolved_target
        target = self._target
        if self._cache is not None and self._reducer is None:
            raise ValueError("cached(cache) requires reduced(reducer)")
        if self._reducer is not None:
            model = None
            key = None
            if self._cache is not None:
                key = self._cache.key(target, self._reducer)
                model = self._cache.load(key)
            if model is None:
                model = self._reducer.reduce(target)
                if isinstance(model, tuple):  # adaptive reducers return (model, report)
                    model = model[0]
                if key is not None:
                    self._cache.store(key, model)
            target = model
        self._resolved_target = target
        return target

    def _target_kind(self) -> str:
        target = self._resolve_target()
        if supports_batching(target):
            return "dense"
        if supports_sparse_batching(target):
            return "sparse"
        return "other"

    def _workload(self) -> str:
        declared = [
            name
            for name, present in (
                ("sweep", self._frequencies is not None),
                ("transient", self._transient_options is not None),
                ("sensitivities", self._sensitivity_point is not None),
            )
            if present
        ]
        if len(declared) > 1:
            raise ValueError(f"declare exactly one workload, got {declared}")
        if not declared:
            if self._num_poles is None:
                raise ValueError(
                    "no workload declared: call .sweep(...), .transient(...), "
                    ".poles(...), or .sensitivities(...)"
                )
            return "poles"
        workload = declared[0]
        if self._num_poles is not None:
            if workload != "sweep":
                raise ValueError(f"poles(...) cannot be combined with {workload}(...)")
            return "sweep+poles"
        return workload

    def _samples(self) -> np.ndarray:
        if self._sample_matrix is not None:
            return self._sample_matrix
        if self._scenarios is None:
            raise ValueError("no scenarios: call .scenarios(plan_or_samples) first")
        target = self._resolve_target()
        if isinstance(self._scenarios, ScenarioPlan) or hasattr(
            self._scenarios, "sample_matrix"
        ):
            samples = self._scenarios.sample_matrix(target.num_parameters)
        else:
            samples = as_sample_matrix(target, self._scenarios)
        self._sample_matrix = samples
        return samples

    def _scenario_plan(self) -> Optional[ScenarioPlan]:
        if isinstance(self._scenarios, ScenarioPlan) or hasattr(
            self._scenarios, "sample_matrix"
        ):
            return self._scenarios
        return None

    # -- planning ------------------------------------------------------

    def _per_instance_bytes(self, workload: str, kind: str) -> Tuple[int, int]:
        """``(per_instance, fixed)`` bytes of one streamed chunk slot.

        ``fixed`` covers what lives across chunks: the streaming
        reducer's envelope accumulator (three float64 arrays shaped
        like one instance's statistic grid -- running min, sum, max)
        and, on the sparse route, the per-sample pencil workspace.
        The accumulator was historically omitted, which understated
        the peak on every streamed route (most visibly the
        cached+reduced one, where the chunk arrays are smallest).
        """
        target = self._resolve_target()
        if workload in ("sweep", "sweep+poles"):
            n_f = self._frequencies.size
            m_out = target.nominal.L.shape[1]
            m_in = target.nominal.B.shape[1]
            accumulator = 24 * n_f * m_out * m_in
            if kind == "sparse":
                family = shared_pattern_family(target)
                # Two (c, nnz) data stacks + the chunk's response grid,
                # plus the per-sample (n_f, nnz) pencil workspace.
                per = 16 * (2 * family.nnz + n_f * m_out * m_in)
                return per, 16 * n_f * family.nnz + accumulator
            per = sweep_chunk_bytes(target.nominal.order, n_f, 1, m_out, m_in)
            return per, accumulator
        num_steps = self._transient_options["num_steps"]
        m_out = target.nominal.L.shape[1]
        accumulator = 24 * (num_steps + 1) * m_out
        per = transient_chunk_bytes(target.nominal.order, num_steps, 1, m_out)
        return per, accumulator

    def _chunk_plan(self, workload: str, kind: str, num_samples: int):
        """``(chunk_size, num_chunks, estimated_peak_bytes)`` for streams."""
        per_instance, fixed = self._per_instance_bytes(workload, kind)
        if self._chunk_size is not None:
            chunk = min(self._chunk_size, max(num_samples, 1))
        elif self._memory_budget is not None:
            chunk = (self._memory_budget - fixed) // max(per_instance, 1)
            if chunk < 1:
                raise ValueError(
                    f"memory budget {self._memory_budget} bytes cannot fit a "
                    f"single instance: one instance of this workload needs "
                    f"~{per_instance + fixed} bytes "
                    f"({per_instance} per instance + {fixed} fixed); raise the "
                    "budget or shrink the frequency/timestep axis"
                )
            chunk = min(int(chunk), max(num_samples, 1))
        else:
            chunk = max(num_samples, 1)
        num_chunks = -(-num_samples // chunk) if num_samples else 0
        return chunk, num_chunks, int(chunk * per_instance + fixed)

    def _validate_shard(self, num_chunks: int) -> None:
        """Refuse a shard split wider than the chunk grid at plan time.

        (:func:`repro.runtime.stream._owned_chunks` guards the same
        invariant at driver level for direct kernel callers.)
        """
        if self._shard is not None and self._shard[1] > num_chunks:
            raise ValueError(
                f"shard {self._shard[0] + 1}/{self._shard[1]} owns no chunks: "
                f"the study has only {num_chunks} chunk(s); lower the shard "
                "count or the chunk size"
            )

    def _executor_workers(self) -> int:
        backend = resolve_executor(self._executor_spec)
        if isinstance(backend, SerialExecutor):
            return 1
        return getattr(backend, "max_workers", None) or os.cpu_count() or 1

    def _describe_target(self, kind: str) -> str:
        target = self._resolve_target()
        if kind == "dense":
            return f"dense-reduced (q={target.nominal.order})"
        if kind == "sparse":
            # Nominal pattern only -- describing a target must not pay
            # for the union-pattern family (sweep routes build it anyway,
            # memoized; per-sample sensitivity routes never need it).
            nominal = target.nominal
            return f"sparse-full (n={nominal.order}, nnz={nominal.G.nnz})"
        return f"full ({type(target).__name__})"

    def plan(self) -> ExecutionPlan:
        """Decide (and report) the route without evaluating anything.

        Resolving the plan runs any :meth:`reduced` reduction (memoized
        across calls) because routing depends on the resolved target's
        shape; everything else is pure accounting.  The plan itself is
        memoized until the next builder call, so ``plan()`` followed by
        ``run()`` (which replans internally) pays once.  Across Study
        objects, built plans are additionally memoized in a
        process-global cache keyed by the study-fingerprint components
        (target content, workload config, samples, directives), so
        repeat dispatch of an identical declaration -- a fresh Study
        per Monte Carlo batch -- is a dict hit; the
        ``engine.plan_cache.hits`` / ``engine.plan_cache.misses``
        counters report the behaviour.
        """
        if self._plan_cache is not None:
            return self._plan_cache
        key = self._plan_cache_key()
        if key is not None:
            with _PLAN_CACHE_LOCK:
                cached = _PLAN_CACHE.get(key)
                if cached is not None:
                    _PLAN_CACHE_HITS.inc()
                    _PLAN_CACHE.move_to_end(key)
                    self._plan_cache = cached
                    return cached
                _PLAN_CACHE_MISSES.inc()
        with obs_trace.span("study.plan") as plan_span:
            self._plan_cache = self._build_plan()
            plan_span.set(
                route=self._plan_cache.route, kernel=self._plan_cache.kernel
            )
        if key is not None:
            with _PLAN_CACHE_LOCK:
                _PLAN_CACHE[key] = self._plan_cache
                while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
                    _PLAN_CACHE.popitem(last=False)
        return self._plan_cache

    def _plan_cache_key(self) -> Optional[tuple]:
        """Global plan-cache key, or ``None`` when planning must re-run.

        Built from the same components as the durable study
        fingerprint (target content hash, workload config, sample
        matrix hash) plus every directive routing reads.  A study whose
        workload or samples cannot be resolved yet -- including every
        invalid declaration -- keys to ``None`` so :meth:`_build_plan`
        raises its diagnostic on every call instead of caching it.
        """
        try:
            workload = self._workload()
            target = self._resolve_target()
            samples = self._samples()
            if workload == "sensitivities":
                config = {"s": repr(self._sensitivity_point)}
            else:
                config = self._workload_config(workload, target)
        except (ValueError, TypeError, AttributeError):
            # Anything unresolvable -- including every invalid
            # declaration -- must fall through to _build_plan, whose
            # route validation raises the canonical diagnostics.
            return None
        return (
            cached_target_fingerprint(target),
            workload,
            array_fingerprint(samples),
            repr(sorted(config.items())),
            self._precision,
            self._chunk_size,
            self._memory_budget,
            repr(self._executor_spec),
            None if self._store is None else str(self._store.directory),
            self._shard,
            self._resume,
        )

    def _build_plan(self) -> ExecutionPlan:
        workload = self._workload()
        kind = self._target_kind()
        target = self._resolve_target()
        notes: List[str] = []
        if self._resume and self._store is None:
            raise ValueError("resume() requires store(directory)")
        if self._shard is not None and self._store is None:
            notes.append("shard without store(...) computes but does not persist")
        store_path = None if self._store is None else str(self._store.directory)
        if self._precision != "full":
            if workload not in ("sweep", "sweep+poles", "poles"):
                raise ValueError(
                    "precision('screen') covers frequency sweeps and pole "
                    "studies; transient and sensitivity workloads are "
                    "float64-only"
                )
            if kind != "dense":
                raise ValueError(
                    "precision('screen') requires a dense-batchable target "
                    "(reduce the system first; sparse full-order solves stay "
                    "float64)"
                )
            if workload == "poles" and self._executor_spec is not None:
                raise ValueError(
                    "precision('screen') on a pole study uses the stacked "
                    "dense route; drop executor(...)"
                )
        detected_rank: Optional[int] = None
        estimated_flops: Optional[int] = None

        if workload in ("sweep", "sweep+poles", "transient"):
            # Route validation first: it must not depend on sample
            # realization (which needs a parametric target to begin with).
            if kind == "other":
                raise ValueError(
                    f"{target!r} supports neither dense nor sparse batching; "
                    "see repro.runtime.batch.supports_batching"
                )
            if workload == "transient" and kind == "sparse":
                raise ValueError(
                    "transient studies require a dense-batchable model "
                    "(reduce the system first; full-order sparse ensembles are "
                    "frequency-domain only)"
                )
            if workload == "sweep+poles" and kind == "sparse":
                raise ValueError(
                    "full-order sparse sweeps compute responses only; drop "
                    ".poles(...) (dense eigendecompositions of the full model "
                    "are not a streaming quantity)"
                )
            num_samples = self._samples().shape[0]
            chunk, num_chunks, peak = self._chunk_plan(workload, kind, num_samples)
            self._validate_shard(num_chunks)
            if workload == "transient":
                kernel = "transient-propagator[gesv]"
                if self._transient_options["keep_outputs"]:
                    m_out = target.nominal.L.shape[1]
                    peak += 8 * num_samples * (self._transient_options["num_steps"] + 1) * m_out
                    notes.append("keep_outputs retains the full trajectory grid")
            elif kind == "sparse":
                family = shared_pattern_family(target)
                kernel = f"shared-pattern[{family.solver_kind}]"
            elif self._precision == "screen":
                kernel = "eig-rational[sweep-study/f32-screen]"
            else:
                kernel = "eig-rational[sweep-study]"
                solver = lowrank_solver(target)
                if solver is not None:
                    detected_rank = solver.rank
                    n_f = self._frequencies.size
                    want_poles = workload == "sweep+poles"
                    low_flops = solver.sweep_flops(
                        num_samples, n_f, want_poles=want_poles
                    )
                    full_flops = eig_sweep_flops(
                        solver.order, num_samples, n_f,
                        ports=solver.num_ports, want_poles=want_poles,
                    )
                    if low_flops < full_flops:
                        kernel = "lowrank-woodbury[sweep-study]"
                        estimated_flops = int(low_flops)
                        notes.append(
                            f"low-rank update route: rank {solver.rank}, "
                            f"~{low_flops:.2e} vs ~{full_flops:.2e} flops "
                            "for per-instance eig"
                        )
                    else:
                        estimated_flops = int(full_flops)
                        notes.append(
                            f"low-rank structure (rank {solver.rank}) detected "
                            "but per-instance eig is cheaper at this ensemble "
                            "size"
                        )
            if workload in ("sweep", "sweep+poles") and self._keep_responses:
                m_out = target.nominal.L.shape[1]
                m_in = target.nominal.B.shape[1]
                peak += 16 * num_samples * self._frequencies.size * m_out * m_in
                notes.append("keep_responses retains the full response grid")
            if kind == "sparse":
                route = "sparse-family"
            else:
                route = "dense-batch" if num_chunks <= 1 else "dense-stream"
            if self._executor_spec is not None:
                notes.append("executor is unused on batched in-process routes")
            return ExecutionPlan(
                route=route,
                kernel=kernel,
                workload=workload,
                target=self._describe_target(kind),
                num_samples=num_samples,
                chunk_size=chunk,
                num_chunks=num_chunks,
                estimated_peak_bytes=peak,
                executor="SerialExecutor()",
                notes=tuple(notes),
                store=store_path,
                shard=self._shard,
                precision=self._precision,
                detected_rank=detected_rank,
                estimated_flops=estimated_flops,
            )

        # Per-sample workloads: poles / sensitivities.
        num_samples = self._samples().shape[0]
        if workload == "sensitivities" and (
            self._store is not None or self._shard is not None
        ):
            raise ValueError(
                "sensitivity studies do not support store()/shard(); "
                "durable checkpointing covers sweep, transient, and pole studies"
            )
        chunk_size = num_samples
        num_chunks = 1 if num_samples else 0
        if workload == "poles" and (
            self._store is not None or self._shard is not None
        ):
            # With a store (or shard) attached, pole studies process
            # their samples in checkpoint units of chunk(...) instances.
            if self._chunk_size is not None:
                chunk_size = min(self._chunk_size, max(num_samples, 1))
                num_chunks = -(-num_samples // chunk_size) if num_samples else 0
            notes.append(
                f"pole checkpoint unit: {chunk_size} instance(s) per chunk"
            )
            if self._memory_budget is not None:
                notes.append("memory_budget is unused on per-sample routes")
            self._validate_shard(num_chunks)
        elif self._chunk_size is not None or self._memory_budget is not None:
            notes.append("chunking directives are unused on per-sample routes")
        workers = self._executor_workers()
        executor_repr = repr(resolve_executor(self._executor_spec))
        # Order is only needed for the (rough) peak estimate; duck-typed
        # targets that expose just instantiate/num_parameters still run.
        q_or_n = getattr(getattr(target, "nominal", None), "order", 0)
        if workload == "poles":
            if kind == "dense" and self._executor_spec is None:
                # Stacked batched instantiation: fastest for reduced-scale
                # models, but it materializes (m, q, q) stacks -- so an
                # explicitly requested executor switches to the bounded
                # per-sample route below (bit-identical either way: exact
                # batched instantiation reproduces the scalar accumulation).
                route, kernel = "dense-batch", "dominant-poles[stacked-instantiate]"
                if self._precision == "screen":
                    kernel = "dominant-poles[stacked-instantiate/f32-screen]"
                peak = 16 * num_samples * q_or_n * q_or_n
            elif kind == "dense":
                route, kernel = "executor-full", "dominant-poles[instantiate]"
                peak = workers * 48 * q_or_n * q_or_n
            elif kind == "sparse":
                family = shared_pattern_family(target)
                route = "executor-full"
                kernel = f"dominant-poles[shared-pattern/{family.solver_kind}]"
                peak = workers * (16 * family.nnz + 48 * q_or_n * q_or_n)
            else:
                route, kernel = "executor-full", "dominant-poles[instantiate]"
                peak = workers * 48 * q_or_n * q_or_n
        else:  # sensitivities
            if kind == "dense":
                route, kernel = "dense-batch", "batch-sensitivities[gesv]"
                peak = 48 * num_samples * q_or_n * q_or_n
                if self._executor_spec is not None:
                    notes.append("dense sensitivities run in-process (batched solves)")
            else:
                route, kernel = "executor-full", "sensitivities[sparse-lu]"
                # Estimate straight off the nominal pattern: the task
                # factors per-sample instantiations, it never needs the
                # shared-pattern family, so don't pay to build one here.
                nominal_g = getattr(getattr(target, "nominal", None), "G", None)
                nnz = getattr(nominal_g, "nnz", q_or_n * q_or_n)
                peak = workers * 64 * nnz
        return ExecutionPlan(
            route=route,
            kernel=kernel,
            workload=workload,
            target=self._describe_target(kind),
            num_samples=num_samples,
            chunk_size=chunk_size,
            num_chunks=num_chunks,
            estimated_peak_bytes=int(peak),
            executor=executor_repr,
            notes=tuple(notes),
            store=store_path,
            shard=self._shard,
            precision=self._precision,
            detected_rank=detected_rank,
            estimated_flops=estimated_flops,
        )

    # -- execution -----------------------------------------------------

    def _resolve_trace_sinks(self) -> Tuple[List, List]:
        """``(installed, owned)``: sinks to install, and which to close.

        Paths become run-scoped :class:`~repro.obs.export.JsonlSink`
        files (opened lazily, closed when the run finishes); sink
        objects pass through and stay caller-owned.
        """
        installed: List = []
        owned: List = []
        for spec in self._trace_sinks:
            if isinstance(spec, (str, os.PathLike)):
                sink = JsonlSink(spec)
                owned.append(sink)
                installed.append(sink)
            else:
                installed.append(spec)
        return installed, owned

    def run(self):
        """Execute the planned route.

        Returns the route's canonical result object:
        :class:`~repro.runtime.stream.StreamedSweepStudy` for sweeps,
        :class:`~repro.runtime.stream.StreamedTransientStudy` for
        transients, :class:`PoleStudy` for pole studies,
        :class:`SensitivityStudy` for sensitivities -- each bit-identical
        to the legacy kernel the route wraps.

        Observability: the run executes under a ``study.run`` root span
        (emitted to any :meth:`trace` sinks plus globally installed
        ones), and :meth:`metrics` afterwards reports the registry
        delta the run produced.  Neither affects any numeric result.
        """
        sinks, owned_sinks = self._resolve_trace_sinks()
        lineage_sink = None
        if self._warehouse is not None:
            # A private in-memory sink captures this run's chunk spans so
            # the post-run ingest can attribute each chunk's source
            # (computed / resumed / stolen) instead of the flat "stored"
            # a bare manifest walk would yield.
            lineage_sink = obs_trace.MemorySink()
            sinks = sinks + [lineage_sink]
        for sink in sinks:
            obs_trace.add_sink(sink)
        try:
            before = obs_metrics.registry().snapshot()
            with obs_trace.span("study.run") as root:
                plan = self.plan()
                if self._warehouse is not None:
                    if plan.workload == "sensitivities":
                        raise ValueError(
                            "warehouse(...) cannot ingest a sensitivities "
                            "study: the workload has no durable checkpoints"
                        )
                    if self._store is None:
                        raise ValueError(
                            "warehouse(...) requires store(...): the "
                            "warehouse ingests durable chunk checkpoints"
                        )
                root.set(
                    route=plan.route,
                    kernel=plan.kernel,
                    workload=plan.workload,
                    num_samples=plan.num_samples,
                    chunk_size=plan.chunk_size,
                    num_chunks=plan.num_chunks,
                    executor=plan.executor,
                    store=plan.store,
                    shard=None if plan.shard is None else list(plan.shard),
                )
                result = self._execute(plan)
            if lineage_sink is not None:
                self._ingest_warehouse(plan, lineage_sink)
            self._last_metrics = obs_metrics.snapshot_delta(
                before, obs_metrics.registry().snapshot()
            )
            if obs_trace.enabled():
                obs_trace.emit_record(
                    {"type": "metrics", "delta": self._last_metrics}
                )
            return result
        finally:
            for sink in sinks:
                obs_trace.remove_sink(sink)
            for sink in owned_sinks:
                sink.close()

    def work(
        self,
        store=None,
        ttl: float = 30.0,
        poll: float = 0.2,
        worker: Optional[str] = None,
        max_chunks: Optional[int] = None,
        board: Optional[LeaseBoard] = None,
    ):
        """Work-steal this study's chunks from a shared store, then merge.

        The dynamic counterpart of :meth:`shard`: instead of owning a
        static slice of the chunk grid, this process claims unfinished
        chunks one at a time through lease files in the store directory
        (:mod:`repro.runtime.scheduler`), so any number of
        heterogeneous workers running the same declaration against the
        same store finish the study together -- a dead worker's leases
        expire and are stolen, a slow one simply takes fewer chunks.
        Checkpoints go to this worker's own manifest and
        worker-suffixed chunk files, so racing workers never write the
        same file.

        When the drain finds every chunk checkpointed it merges through
        the ordinary :meth:`run` path -- each chunk's SHA-256 verified
        against its manifest before folding, corrupt copies re-queued
        and recomputed -- and returns the route's canonical result
        object, **bit-identical** to a one-shot run.  When
        ``max_chunks`` stopped this worker early the study is someone
        else's to finish and ``None`` is returned;
        :meth:`drain_report` tells either way what this worker did.

        Parameters
        ----------
        store:
            Store directory (or :class:`StudyStore`); optional if
            :meth:`store` was already declared.
        ttl:
            Lease time-to-live in seconds (see
            :class:`~repro.runtime.scheduler.LeaseBoard`).
        poll:
            Seconds between store re-scans while every remaining chunk
            is claimed by another worker.
        worker:
            Explicit worker id (filename-safe; validated); default is a
            fresh ``host-pid-random`` id.
        max_chunks:
            Stop after computing this many chunks (chaos drills).
        board:
            Inject a preconfigured
            :class:`~repro.runtime.scheduler.LeaseBoard` (tests use a
            fake clock); default builds one from ``ttl``.
        """
        if store is not None:
            self.store(store)
        if self._store is None:
            raise ValueError(
                "work() requires a store: pass a directory or call .store(...)"
            )
        if self._shard is not None:
            raise ValueError(
                "work() and shard() are mutually exclusive: workers claim "
                "chunks dynamically instead of owning a static slice"
            )
        worker_id = (
            parse_worker_id(worker) if worker is not None else default_worker_id()
        )
        sinks, owned_sinks = self._resolve_trace_sinks()
        for sink in sinks:
            obs_trace.add_sink(sink)
        try:
            with obs_trace.span("study.work", worker=worker_id) as root:
                plan = self.plan()
                target = self._resolve_target()
                samples = self._samples()
                config = self._workload_config(plan.workload, target)
                fingerprint = study_fingerprint(
                    target, plan.workload, samples, config
                )
                root.set(
                    route=plan.route,
                    workload=plan.workload,
                    num_chunks=plan.num_chunks,
                    study_key=fingerprint["key"],
                    store=plan.store,
                )
                checkpoint = self._store.checkpoint(
                    fingerprint,
                    chunk_size=plan.chunk_size,
                    num_chunks=plan.num_chunks,
                    num_samples=plan.num_samples,
                    worker=worker_id,
                    context={
                        "route": plan.route,
                        "kernel": plan.kernel,
                        "workload": plan.workload,
                        "executor": plan.executor,
                        "worker": worker_id,
                    },
                )
                lease_board = board if board is not None else LeaseBoard(
                    self._store, fingerprint["key"], worker=worker_id, ttl=ttl
                )
                compute, cleanup = self._chunk_compute(
                    plan, target, samples, checkpoint
                )
                try:
                    report = drain_chunks(
                        checkpoint, compute, lease_board,
                        poll=poll, max_chunks=max_chunks,
                    )
                finally:
                    cleanup()
                self._last_drain = report
                root.set(
                    drained=report.drained,
                    computed=len(report.computed),
                    stolen=len(report.stolen),
                    waits=report.waits,
                )
        finally:
            for sink in sinks:
                obs_trace.remove_sink(sink)
            for sink in owned_sinks:
                sink.close()
        if not report.drained:
            return None
        # Merge through the ordinary run() path: every chunk is loaded
        # with its recorded SHA-256 verified and folded in global chunk
        # order.  Lenient mode turns a chunk whose every copy fails
        # verification into an inline recompute (the drivers' own
        # payload-is-None branch) instead of a fatal StoreError.
        self._worker_ctx = (worker_id, True)
        try:
            return self.run()
        finally:
            self._worker_ctx = (None, False)

    def drain_report(self):
        """The :class:`~repro.runtime.scheduler.DrainReport` of the most
        recent :meth:`work` call (``None`` before the first)."""
        return self._last_drain

    def fingerprint(self) -> dict:
        """The study's durable content fingerprint, without running it.

        The same :func:`~repro.runtime.store.study_fingerprint` record
        :meth:`run` and :meth:`work` key their manifests by -- target
        content hash, sample-matrix hash, workload name, canonical
        config -- plus the combined ``key``.  Servers use this for
        content-addressed result lookup (an identical declaration from
        a different client lands on the same key) and clients use it to
        re-verify what a server computed.  Only durable workloads have
        a fingerprint; ``sensitivities`` raises ``ValueError``.
        """
        plan = self.plan()
        target = self._resolve_target()
        samples = self._samples()
        config = self._workload_config(plan.workload, target)
        return study_fingerprint(target, plan.workload, samples, config)

    def _ingest_warehouse(self, plan: ExecutionPlan, lineage_sink):
        """Post-run hook of the :meth:`warehouse` directive.

        Joins the run's captured chunk spans into per-chunk source
        attribution, then ingests this study's checkpoints from the
        store.  Errors propagate as the directive's failure -- the
        study result is already computed by this point, but an
        explicitly requested warehouse that cannot be written is not
        something to swallow.  The warehouse package is imported lazily
        so studies without the directive never touch it.
        """
        from repro.obs.export import chunk_lineage, lineage_sources
        from repro.warehouse import Warehouse

        directory, backend = self._warehouse
        target = self._resolve_target()
        samples = self._samples()
        config = self._workload_config(plan.workload, target)
        fingerprint = study_fingerprint(target, plan.workload, samples, config)
        warehouse = (
            directory if isinstance(directory, Warehouse)
            else Warehouse(directory, backend=backend)
        )
        self._last_warehouse = warehouse.ingest_store(
            self._store,
            key=fingerprint["key"],
            samples=samples,
            parameter_names=getattr(target, "parameter_names", None),
            lineage=lineage_sources(chunk_lineage(lineage_sink.records)),
        )
        return self._last_warehouse

    def _chunk_compute(self, plan: ExecutionPlan, target, samples, checkpoint):
        """``(compute, cleanup)`` for the work-stealing drain loop.

        ``compute(index)`` evaluates chunk ``index`` through the same
        payload definition the streaming drivers use and checkpoints it
        under this worker's manifest; ``cleanup()`` releases any owned
        executor held across the drain.
        """
        workload = plan.workload
        chunk = plan.chunk_size
        total = plan.num_samples

        def bounds(index: int) -> Tuple[int, int]:
            lo = index * chunk
            return lo, min(lo + chunk, total)

        def no_cleanup():
            return None

        cleanup = no_cleanup
        if workload in ("sweep", "sweep+poles"):
            dense = supports_batching(target)
            family = None if dense else shared_pattern_family(target)
            solver = (
                lowrank_solver(target)
                if plan.kernel.startswith("lowrank-")
                else None
            )

            def payload_fn(block):
                return _sweep_chunk_payload(
                    target, family, self._frequencies, block,
                    num_poles=self._num_poles,
                    keep_poles=dense and self._num_poles is not None,
                    keep_responses=self._keep_responses,
                    precision=self._precision,
                    solver=solver,
                )

        elif workload == "transient":
            options = self._resolved_transient_options(target)

            def payload_fn(block):
                return _transient_chunk_payload(
                    target, block,
                    waveform=options["waveform"],
                    t_final=options["t_final"],
                    num_steps=options["num_steps"],
                    method=options["method"],
                    delay_threshold=options["delay_threshold"],
                    slew_bounds=options["slew_bounds"],
                    output_index=options["output_index"],
                    reference=options["reference"],
                    keep_outputs=options["keep_outputs"],
                )

        elif workload == "poles":
            eval_block, backend, owned = self._pole_eval_block(plan.route, target)
            # One owned pool serves every chunk this worker claims
            # (including stolen ones) and is joined by cleanup().
            entered = owned and hasattr(backend, "__enter__")
            if entered:
                backend.__enter__()

            def payload_fn(block):
                pole_sets, verified = eval_block(block)
                payload = _pack_pole_sets(pole_sets)
                if verified is not None:
                    payload["verified"] = verified
                return payload

            def cleanup():
                if entered:
                    backend.close()

        else:
            raise ValueError(
                f"work() does not support the {workload!r} workload"
            )

        def compute(index: int) -> None:
            lo, hi = bounds(index)
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            checkpoint.save(
                index, lo, hi, payload_fn(samples[lo:hi]),
                telemetry=_chunk_telemetry(wall0, cpu0, hi - lo),
            )
            _observe_chunk(wall0, cpu0, hi - lo)

        return compute, cleanup

    def _resolved_transient_options(self, target) -> dict:
        """Transient options with the waveform/horizon defaults realized.

        Resolved before fingerprinting so a resumed (or work-stolen)
        study keys on the waveform and horizon it actually ran with.
        """
        options = dict(self._transient_options)
        if options["waveform"] is None:
            options["waveform"] = StepInput()
        if options["t_final"] is None:
            options["t_final"] = default_horizon(target)
        return options

    def _workload_config(self, workload: str, target) -> dict:
        """The workload's canonical option record -- the ``config``
        component of the study fingerprint.  One definition shared by
        :meth:`run` and :meth:`work`, so a worker draining a study and
        a one-shot run of the same declaration land on the same
        manifest key."""
        if workload in ("sweep", "sweep+poles"):
            config = {
                "frequencies": array_fingerprint(self._frequencies),
                "num_poles": self._num_poles,
                "keep_responses": self._keep_responses,
            }
            # Only non-default tiers enter the fingerprint: float64
            # studies keep their historical manifest keys, while screen
            # runs can never collide with full-precision checkpoints.
            if self._precision != "full":
                config["precision"] = self._precision
            return config
        if workload == "transient":
            options = self._resolved_transient_options(target)
            return {
                "waveform": repr(options["waveform"]),
                "t_final": float(options["t_final"]),
                "num_steps": int(options["num_steps"]),
                "method": options["method"],
                "delay_threshold": float(options["delay_threshold"]),
                "slew_bounds": [float(b) for b in options["slew_bounds"]],
                "output_index": int(options["output_index"]),
                "reference": options["reference"],
                "keep_outputs": bool(options["keep_outputs"]),
            }
        if workload == "poles":
            config = {"num_poles": self._num_poles}
            if self._precision != "full":
                config["precision"] = self._precision
            return config
        raise ValueError(f"workload {workload!r} has no durable config record")

    def _execute(self, plan: ExecutionPlan):
        workload = plan.workload
        target = self._resolve_target()
        samples = self._samples()

        if workload in ("sweep", "sweep+poles"):
            config = self._workload_config(workload, target)
            solver = (
                lowrank_solver(target)
                if plan.kernel.startswith("lowrank-")
                else None
            )
            result = _stream_sweep_study(
                target,
                self._frequencies,
                samples,
                chunk_size=plan.chunk_size,
                num_poles=self._num_poles,
                keep_responses=self._keep_responses,
                progress=self._progress,
                checkpoint=self._open_checkpoint(plan, target, samples, config),
                shard=self._shard,
                precision=self._precision,
                solver=solver,
            )
            result.plan = self._scenario_plan()
            return result
        if workload == "transient":
            options = self._resolved_transient_options(target)
            config = self._workload_config(workload, target)
            result = _stream_transient_study(
                target,
                samples,
                waveform=options["waveform"],
                t_final=options["t_final"],
                num_steps=options["num_steps"],
                method=options["method"],
                chunk_size=plan.chunk_size,
                delay_threshold=options["delay_threshold"],
                slew_bounds=options["slew_bounds"],
                output_index=options["output_index"],
                reference=options["reference"],
                keep_outputs=options["keep_outputs"],
                progress=self._progress,
                checkpoint=self._open_checkpoint(plan, target, samples, config),
                shard=self._shard,
            )
            result.plan = self._scenario_plan()
            return result
        if workload == "poles":
            return self._run_poles(plan, target, samples)
        return self._run_sensitivities(plan, target, samples)

    def _open_checkpoint(self, plan: ExecutionPlan, target, samples, config: dict):
        """The run's :class:`StudyCheckpoint`, or ``None`` without a store."""
        if self._store is None:
            return None
        fingerprint = study_fingerprint(target, plan.workload, samples, config)
        # Stamp the durable identity onto the enclosing study.run span,
        # so a trace line can be joined back to its manifest by key.
        obs_trace.annotate(study_key=fingerprint["key"])
        worker, lenient = self._worker_ctx
        return self._store.checkpoint(
            fingerprint,
            chunk_size=plan.chunk_size,
            num_chunks=plan.num_chunks,
            num_samples=plan.num_samples,
            shard=self._shard,
            resume=self._resume,
            worker=worker,
            lenient=lenient,
            context={
                "route": plan.route,
                "kernel": plan.kernel,
                "workload": plan.workload,
                "executor": plan.executor,
            },
        )

    def _owned_executor(self):
        """``(executor, owned)``: engine-built executors get closed."""
        return resolve_owned_executor(self._executor_spec)

    def _pole_eval_block(self, route: str, target):
        """``(eval_block, backend, owned)`` for a pole-study route.

        One factory shared by :meth:`_run_poles` and the work-stealing
        drain (:meth:`work`), so both compute a chunk's pole sets
        through the identical kernel path.  ``eval_block(block)``
        returns ``(pole_sets, verified)``; ``verified`` is the
        screening provenance column (``None`` at full precision).
        """
        num_poles = self._num_poles
        from repro.analysis.poles import dominant_poles

        if route == "dense-batch":
            if self._precision == "screen":
                def eval_block(block):
                    return _screen_pole_block(target, block, num_poles)
            else:
                def eval_block(block):
                    g, c = batch_instantiate(target, block, exact=True)
                    return [
                        dominant_poles(system, num_poles)
                        for system in systems_from_stacks(target, g, c)
                    ], None

            return eval_block, None, False
        if supports_sparse_batching(target):
            task = functools.partial(
                _pole_task_family, shared_pattern_family(target), num_poles
            )
        else:
            task = functools.partial(_pole_task_model, target, num_poles)
        backend, owned = self._owned_executor()

        def eval_block(block):
            # wrap_task/unwrap_results ship worker-raised spans back
            # with each result and re-parent them onto the chunk
            # span active here; with tracing off both are identity.
            return obs_trace.unwrap_results(
                executor_map_array(backend, obs_trace.wrap_task(task), block)
            ), None

        return eval_block, backend, owned

    def _run_poles(self, plan: ExecutionPlan, target, samples) -> PoleStudy:
        num_poles = self._num_poles
        eval_block, backend, owned = self._pole_eval_block(plan.route, target)
        checkpoint = self._open_checkpoint(
            plan, target, samples, self._workload_config("poles", target)
        )
        chunks = _owned_chunks(samples.shape[0], plan.chunk_size, self._shard)
        shard_total = sum(hi - lo for _, lo, hi in chunks)
        results: List[np.ndarray] = []
        screen = self._precision == "screen" and plan.route == "dense-batch"
        verified_rows: Optional[List[np.ndarray]] = [] if screen else None
        done = 0
        # Per-shard executor ownership: one engine-built pool serves
        # every chunk of this shard's run and is joined when it ends;
        # two shards of the same study never share pool state.
        entered = owned and hasattr(backend, "__enter__")
        if entered:
            backend.__enter__()
        num_owned = len(chunks)
        chunks_done = 0
        try:
            for index, lo, hi in chunks:
                with obs_trace.span(
                    "study.chunk", workload="poles", index=index, lo=lo, hi=hi,
                    instances=hi - lo,
                    shard=None if self._shard is None else list(self._shard),
                ) as chunk_span:
                    wall0 = time.perf_counter()
                    cpu0 = time.process_time()
                    payload = (
                        checkpoint.load(index) if checkpoint is not None else None
                    )
                    loaded = payload is not None
                    if payload is None:
                        pole_sets, verified = eval_block(samples[lo:hi])
                        if checkpoint is not None:
                            packed = _pack_pole_sets(pole_sets)
                            telemetry = _chunk_telemetry(wall0, cpu0, hi - lo)
                            if verified is not None:
                                packed["verified"] = verified
                                telemetry["verified_instances"] = int(
                                    verified.sum()
                                )
                            checkpoint.save(
                                index, lo, hi, packed, telemetry=telemetry
                            )
                    else:
                        pole_sets = _unpack_pole_sets(payload)
                        verified = payload.get("verified")
                    results.extend(pole_sets)
                    if verified_rows is not None:
                        verified_rows.append(
                            np.zeros(hi - lo, dtype=bool)
                            if verified is None
                            else np.asarray(verified, dtype=bool)
                        )
                    done += hi - lo
                    chunks_done += 1
                    _observe_chunk(wall0, cpu0, hi - lo)
                    chunk_span.set(
                        loaded=loaded, done=done, total=shard_total,
                        chunks_done=chunks_done, num_chunks=num_owned,
                    )
                if self._progress is not None:
                    self._progress(done, shard_total)
        finally:
            if entered:
                backend.close()
        if self._shard is None:
            covered, indices = samples, None
        else:
            indices = np.concatenate([np.arange(lo, hi) for _, lo, hi in chunks])
            covered = samples[indices]
        return PoleStudy(
            samples=covered,
            num_poles=num_poles,
            pole_sets=results,
            shard=self._shard,
            instance_indices=indices,
            verified=(
                None
                if verified_rows is None
                else np.concatenate(verified_rows)
                if verified_rows
                else np.zeros(0, dtype=bool)
            ),
        )

    def _run_sensitivities(
        self, plan: ExecutionPlan, target, samples
    ) -> SensitivityStudy:
        s = self._sensitivity_point
        if plan.route == "dense-batch":
            sensitivities = batch_transfer_sensitivities(target, s, samples)
        else:
            task = functools.partial(_sensitivity_task, target, s)
            sensitivities = np.stack(self._map_with_owned_executor(task, samples))
        if self._progress is not None:
            self._progress(samples.shape[0], samples.shape[0])
        return SensitivityStudy(samples=samples, s=s, sensitivities=sensitivities)

    def _map_with_owned_executor(self, task, samples) -> List:
        backend, owned = self._owned_executor()
        # Capture-and-replay worker spans (identity with tracing off).
        wrapped = obs_trace.wrap_task(task)
        if owned and hasattr(backend, "__enter__"):
            with backend:
                return obs_trace.unwrap_results(
                    executor_map_array(backend, wrapped, samples)
                )
        return obs_trace.unwrap_results(
            executor_map_array(backend, wrapped, samples)
        )

    def __repr__(self) -> str:
        directives = []
        if self._scenarios is not None:
            directives.append(f"scenarios={self._scenarios!r}")
        if self._frequencies is not None:
            directives.append(f"sweep[{self._frequencies.size} freqs]")
        if self._transient_options is not None:
            directives.append(
                f"transient[{self._transient_options['num_steps']} steps]"
            )
        if self._num_poles is not None:
            directives.append(f"poles[{self._num_poles}]")
        if self._sensitivity_point is not None:
            directives.append(f"sensitivities[s={self._sensitivity_point}]")
        return f"Study({type(self._target).__name__}, {', '.join(directives)})"
