"""Passivity verification for full systems and macromodels.

Two complementary checks:

1. **Structural** (:func:`check_structural_passivity`): the RLC-MNA
   sufficient conditions ``G + G^T >= 0``, ``C + C^T >= 0``, ``B = L``.
   Congruence transforms preserve them (paper, end of Section 4.1:
   "the congruence transforms ... implies that the passivity of the
   reduced model will be guaranteed if the original parametric model
   is passive").
2. **Sampled positive-realness** (:func:`is_positive_real_sampled`):
   ``H(s) + H(s)^H >= 0`` on a frequency grid -- a necessary condition
   that catches sign errors the structural check can miss when models
   are assembled by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

DEFAULT_TOLERANCE = 1e-9


@dataclass
class PassivityReport:
    """Outcome of the passivity checks on one system."""

    structural_margin: float
    symmetric_ports: bool
    sampled_min_eigenvalue: Optional[float]
    tolerance: float

    @property
    def is_structurally_passive(self) -> bool:
        """Structural conditions hold to within tolerance."""
        return self.symmetric_ports and self.structural_margin >= -self.tolerance

    @property
    def is_sampled_positive_real(self) -> Optional[bool]:
        """Sampled positive-realness (``None`` if not evaluated)."""
        if self.sampled_min_eigenvalue is None:
            return None
        return self.sampled_min_eigenvalue >= -self.tolerance


def check_structural_passivity(system, tol: float = DEFAULT_TOLERANCE) -> bool:
    """True if ``G + G^T >= 0``, ``C + C^T >= 0`` and ``B = L``.

    The margin is scaled by the matrix norms so that the check is
    meaningful across the ~15 orders of magnitude between conductance
    and capacitance entries.
    """
    if not system.is_symmetric_port_form():
        return False
    return _scaled_margin(system) >= -tol


def _scaled_margin(system) -> float:
    g = system.G.toarray() if hasattr(system.G, "toarray") else np.asarray(system.G)
    c = system.C.toarray() if hasattr(system.C, "toarray") else np.asarray(system.C)
    margins = []
    for matrix in (g, c):
        sym = 0.5 * (matrix + matrix.T)
        scale = max(np.abs(sym).max(), 1e-300)
        margins.append(np.linalg.eigvalsh(sym).min() / scale)
    return float(min(margins))


def is_positive_real_sampled(
    system,
    frequencies: Sequence[float],
    tol: float = DEFAULT_TOLERANCE,
) -> bool:
    """Sampled check of ``H(j w) + H(j w)^H >= 0`` over a grid in hertz."""
    return _sampled_min_eigenvalue(system, frequencies) >= -tol


def _sampled_min_eigenvalue(system, frequencies: Sequence[float]) -> float:
    if system.num_inputs != system.num_outputs:
        raise ValueError(
            "positive-realness is defined for square port transfer matrices; "
            "use system.port_restricted() to drop auxiliary observation outputs"
        )
    worst = np.inf
    for f in np.asarray(frequencies, dtype=float):
        h = system.transfer(2j * np.pi * f)
        hermitian_part = 0.5 * (h + h.conj().T)
        scale = max(np.abs(hermitian_part).max(), 1e-300)
        worst = min(worst, np.linalg.eigvalsh(hermitian_part).min() / scale)
    return float(worst)


def passivity_report(
    system,
    frequencies: Optional[Sequence[float]] = None,
    tol: float = DEFAULT_TOLERANCE,
) -> PassivityReport:
    """Run both checks and return a :class:`PassivityReport`."""
    sampled = None
    if frequencies is not None:
        sampled = _sampled_min_eigenvalue(system, frequencies)
    return PassivityReport(
        structural_margin=_scaled_margin(system),
        symmetric_ports=system.is_symmetric_port_form(),
        sampled_min_eigenvalue=sampled,
        tolerance=tol,
    )
