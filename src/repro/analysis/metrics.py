"""Error metrics shared by the analysis and benchmark code."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def relative_l2_error(reference: np.ndarray, approximation: np.ndarray) -> float:
    """``||ref - approx||_2 / ||ref||_2`` over flattened arrays."""
    reference = np.asarray(reference)
    approximation = np.asarray(approximation)
    if reference.shape != approximation.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {approximation.shape}")
    denominator = np.linalg.norm(reference.ravel())
    if denominator == 0.0:
        return float(np.linalg.norm(approximation.ravel()))
    return float(np.linalg.norm((reference - approximation).ravel()) / denominator)


def relative_linf_error(reference: np.ndarray, approximation: np.ndarray) -> float:
    """``max|ref - approx| / max|ref|`` -- the visual plot-error metric.

    Normalizing by the *peak* of the reference (rather than pointwise)
    matches how one reads the paper's overlay plots: a response that is
    tiny at some frequency but wrong by 100% there should not dominate.
    """
    reference = np.asarray(reference)
    approximation = np.asarray(approximation)
    if reference.shape != approximation.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {approximation.shape}")
    peak = np.abs(reference).max()
    if peak == 0.0:
        return float(np.abs(approximation).max())
    return float(np.abs(reference - approximation).max() / peak)


def max_relative_error(reference: np.ndarray, approximation: np.ndarray) -> float:
    """``max |ref - approx| / |ref|`` elementwise (pole-error metric)."""
    reference = np.asarray(reference)
    approximation = np.asarray(approximation)
    if reference.shape != approximation.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {approximation.shape}")
    magnitude = np.abs(reference)
    if np.any(magnitude == 0.0):
        raise ValueError("reference contains zeros; relative error undefined")
    return float(np.max(np.abs(reference - approximation) / magnitude))


def matched_pole_errors(
    reference_poles: np.ndarray, model_poles: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy nearest-match pole pairing and per-pole relative errors.

    For each reference pole (in dominance order) pick the closest
    not-yet-used model pole in the complex plane; the relative error is
    ``|p_ref - p_model| / |p_ref|``.  Returns ``(errors, matched_model_poles)``.
    Raises if fewer model poles than reference poles are supplied.
    """
    reference_poles = np.asarray(reference_poles, dtype=complex)
    model_poles = np.asarray(model_poles, dtype=complex)
    if model_poles.size < reference_poles.size:
        raise ValueError(
            f"need at least {reference_poles.size} model poles, got {model_poles.size}"
        )
    available = list(range(model_poles.size))
    errors = np.empty(reference_poles.size)
    matched = np.empty(reference_poles.size, dtype=complex)
    for i, pole in enumerate(reference_poles):
        distances = np.abs(model_poles[available] - pole)
        pick = int(np.argmin(distances))
        index = available.pop(pick)
        matched[i] = model_poles[index]
        errors[i] = np.abs(model_poles[index] - pole) / np.abs(pole)
    return errors, matched
