"""Analysis and verification tooling for full and reduced models.

- :mod:`repro.analysis.frequency` -- frequency sweeps and
  model-vs-model comparisons (the Figs. 3-4 machinery).
- :mod:`repro.analysis.poles` -- dominant-pole extraction and
  full-vs-reduced pole matching (the Figs. 5-6 machinery).
- :mod:`repro.analysis.passivity` -- structural and sampled passivity
  verification of the macromodels.
- :mod:`repro.analysis.timedomain` -- transient simulation of
  descriptor systems (backward Euler / trapezoidal); the bit-exact
  reference for the batched ensemble kernels in
  :mod:`repro.runtime.transient`.
- :mod:`repro.analysis.delay` -- Elmore / threshold-crossing delay and
  slew metrics, scalar and batched over scenario ensembles.
- :mod:`repro.analysis.montecarlo` -- Monte Carlo process-variation
  studies (normal 3-sigma sampling, per-instance errors).
- :mod:`repro.analysis.metrics` -- error norms shared by all of the
  above.
"""

from repro.analysis.delay import (
    batch_slew_times,
    batch_threshold_delays,
    delay_sensitivity,
    elmore_delay,
    settling_horizon,
    slew_time,
    threshold_crossing_times,
    threshold_delay,
)
from repro.analysis.frequency import FrequencySweep, compare_frequency_responses, sweep
from repro.analysis.metrics import (
    matched_pole_errors,
    max_relative_error,
    relative_l2_error,
    relative_linf_error,
)
from repro.analysis.montecarlo import MonteCarloResult, monte_carlo_pole_study, sample_parameters
from repro.analysis.passivity import (
    check_structural_passivity,
    is_positive_real_sampled,
    passivity_report,
)
from repro.analysis.poles import dominant_poles, match_poles, pole_error_grid, pole_residues
from repro.analysis.sensitivity import sensitivity_error, transfer_sensitivities
from repro.analysis.statistics import (
    MetricDistribution,
    ResponseSurface,
    fit_response_surface,
    metric_distribution,
    parameter_ranking,
)
from repro.analysis.timedomain import simulate_step, simulate_transient

__all__ = [
    "FrequencySweep",
    "MetricDistribution",
    "MonteCarloResult",
    "ResponseSurface",
    "batch_slew_times",
    "batch_threshold_delays",
    "check_structural_passivity",
    "compare_frequency_responses",
    "delay_sensitivity",
    "dominant_poles",
    "elmore_delay",
    "fit_response_surface",
    "is_positive_real_sampled",
    "match_poles",
    "matched_pole_errors",
    "max_relative_error",
    "metric_distribution",
    "monte_carlo_pole_study",
    "parameter_ranking",
    "passivity_report",
    "pole_error_grid",
    "pole_residues",
    "relative_l2_error",
    "relative_linf_error",
    "sample_parameters",
    "sensitivity_error",
    "settling_horizon",
    "simulate_step",
    "simulate_transient",
    "slew_time",
    "sweep",
    "threshold_crossing_times",
    "threshold_delay",
    "transfer_sensitivities",
]
