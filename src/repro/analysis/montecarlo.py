"""Monte Carlo process-variation studies (Figs. 5-6 left plots).

The paper "independently var[ies] the three metal line widths up to
30% (3-sigma variations) of the nominal values according to the normal
distribution" and histograms the relative errors of the 5 most
dominant poles of the reduced parametric model against the perturbed
full model over all instances.  This module implements that protocol
for any full/reduced model pair.

Evaluation runs on the :mod:`repro.runtime` serving layer: the reduced
model is instantiated for *all* instances at once through the batched
kernels (bit-identical to the scalar path), and the per-instance
full-model reference solves go through a pluggable executor
(serial by default, multiprocessing via ``executor="process"``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.metrics import matched_pole_errors
from repro.analysis.poles import dominant_poles
from repro.runtime.batch import batch_instantiate, supports_batching, systems_from_stacks
from repro.runtime.executor import executor_map_array, resolve_executor
from repro.runtime.sparse import shared_pattern_family, supports_sparse_batching


def sample_parameters(
    num_instances: int,
    num_parameters: int,
    three_sigma: float = 0.3,
    seed: int = 0,
    truncate: bool = True,
) -> np.ndarray:
    """Normal parameter samples with ``3 sigma = three_sigma``.

    Each parameter is drawn independently from
    ``N(0, (three_sigma/3)^2)``; with ``truncate`` (default) samples
    are clipped to ``+/- three_sigma``, matching the paper's "up to
    30%" phrasing (and keeping perturbed conductances positive for
    aggressive variations).
    """
    if num_instances < 1 or num_parameters < 1:
        raise ValueError("num_instances and num_parameters must be >= 1")
    rng = np.random.default_rng(seed)
    sigma = three_sigma / 3.0
    samples = rng.normal(0.0, sigma, size=(num_instances, num_parameters))
    if truncate:
        samples = np.clip(samples, -three_sigma, three_sigma)
    return samples


@dataclass
class MonteCarloResult:
    """Pole-error study over Monte Carlo parameter instances.

    ``pole_errors`` has shape ``(num_instances, num_poles)``: relative
    error of each matched dominant pole per instance (the population
    behind the paper's histograms).
    """

    samples: np.ndarray
    pole_errors: np.ndarray
    full_poles: np.ndarray
    reduced_poles: np.ndarray
    labels: dict = field(default_factory=dict)

    @property
    def num_instances(self) -> int:
        """Number of Monte Carlo instances."""
        return self.samples.shape[0]

    @property
    def max_error(self) -> float:
        """Worst relative pole error across all instances and poles."""
        return float(self.pole_errors.max())

    @property
    def total_poles(self) -> int:
        """Total pole comparisons (e.g. the paper's "1000 poles")."""
        return int(self.pole_errors.size)

    def histogram(self, bins: int = 20):
        """``numpy.histogram`` of all pole errors (in percent)."""
        return np.histogram(self.pole_errors.ravel() * 100.0, bins=bins)


def _full_dominant_poles_task(full_model, num_poles, point):
    """Reference solve for one instance: ``dominant_poles`` of the full model.

    Module-level (picklable) so the multiprocessing executor can ship
    it to workers; the model and pole count are bound once via
    ``functools.partial`` so only the bare sample point travels with
    each work item rather than a copy of the full system.
    """
    return dominant_poles(full_model, num_poles, point)


def _family_dominant_poles_task(family, num_poles, point):
    """Reference solve through a shared sparsity pattern.

    Instantiation via
    :class:`~repro.runtime.sparse.SparsePatternFamily` is a data-array
    update on the precomputed union pattern -- bit-identical matrices
    without the per-sample chain of scipy sparse additions, so the pole
    results match :func:`_full_dominant_poles_task` exactly.
    """
    return dominant_poles(family.instantiate(point), num_poles)


def monte_carlo_pole_study(
    full_model,
    reduced_model,
    num_instances: int,
    num_poles: int = 5,
    three_sigma: float = 0.3,
    seed: int = 0,
    samples: Optional[Sequence[Sequence[float]]] = None,
    executor=None,
) -> MonteCarloResult:
    """Run the Figs. 5-6 protocol.

    The reduced model is instantiated for all instances in one batched
    kernel call (when it supports batching), and the independent
    full-model reference solves are dispatched through ``executor``.
    Results are bit-identical to the historical per-sample loop for
    every executor backend: each instance's computation is a pure
    function of its sample point.

    Parameters
    ----------
    full_model:
        The full :class:`~repro.circuits.variational.ParametricSystem`.
    reduced_model:
        The reduced parametric model to evaluate.
    num_instances:
        Monte Carlo instance count (ignored when ``samples`` given).
    num_poles:
        Dominant poles compared per instance (paper: 5).
    three_sigma:
        3-sigma range of the normal parameter distribution (paper: 0.3).
    seed:
        Sampling seed.
    samples:
        Optional explicit parameter samples overriding the generator.
    executor:
        Executor spec for the full-model solves (anything
        :func:`repro.runtime.executor.resolve_executor` accepts;
        default serial).
    """
    if samples is None:
        samples = sample_parameters(
            num_instances, full_model.num_parameters, three_sigma=three_sigma, seed=seed
        )
    else:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
    backend = resolve_executor(executor)
    pole_errors = np.empty((samples.shape[0], num_poles))
    full_poles = np.empty((samples.shape[0], num_poles), dtype=complex)
    reduced_poles = np.empty((samples.shape[0], num_poles), dtype=complex)

    if supports_sparse_batching(full_model):
        # Shared-pattern instantiation: the union pattern and index maps
        # are computed once (and memoized on the model), each reference
        # solve then updates a bare data array -- same bits, less work.
        task = functools.partial(
            _family_dominant_poles_task, shared_pattern_family(full_model), num_poles
        )
    else:
        task = functools.partial(_full_dominant_poles_task, full_model, num_poles)
    full_results = executor_map_array(backend, task, samples)
    if supports_batching(reduced_model):
        g, c = batch_instantiate(reduced_model, samples, exact=True)
        reduced_systems = systems_from_stacks(reduced_model, g, c)
        reduced_results = [
            dominant_poles(system, 2 * num_poles) for system in reduced_systems
        ]
    else:
        reduced_results = [
            dominant_poles(reduced_model, 2 * num_poles, point) for point in samples
        ]

    for i, (full_p, reduced_p) in enumerate(zip(full_results, reduced_results)):
        errors, matched = matched_pole_errors(full_p, reduced_p)
        pole_errors[i] = errors
        full_poles[i] = full_p
        reduced_poles[i] = matched
    return MonteCarloResult(
        samples=samples,
        pole_errors=pole_errors,
        full_poles=full_poles,
        reduced_poles=reduced_poles,
        labels={"three_sigma": three_sigma, "num_poles": num_poles},
    )
