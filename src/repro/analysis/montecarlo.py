"""Monte Carlo process-variation studies (Figs. 5-6 left plots).

The paper "independently var[ies] the three metal line widths up to
30% (3-sigma variations) of the nominal values according to the normal
distribution" and histograms the relative errors of the 5 most
dominant poles of the reduced parametric model against the perturbed
full model over all instances.  This module implements that protocol
for any full/reduced model pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.poles import match_poles


def sample_parameters(
    num_instances: int,
    num_parameters: int,
    three_sigma: float = 0.3,
    seed: int = 0,
    truncate: bool = True,
) -> np.ndarray:
    """Normal parameter samples with ``3 sigma = three_sigma``.

    Each parameter is drawn independently from
    ``N(0, (three_sigma/3)^2)``; with ``truncate`` (default) samples
    are clipped to ``+/- three_sigma``, matching the paper's "up to
    30%" phrasing (and keeping perturbed conductances positive for
    aggressive variations).
    """
    if num_instances < 1 or num_parameters < 1:
        raise ValueError("num_instances and num_parameters must be >= 1")
    rng = np.random.default_rng(seed)
    sigma = three_sigma / 3.0
    samples = rng.normal(0.0, sigma, size=(num_instances, num_parameters))
    if truncate:
        samples = np.clip(samples, -three_sigma, three_sigma)
    return samples


@dataclass
class MonteCarloResult:
    """Pole-error study over Monte Carlo parameter instances.

    ``pole_errors`` has shape ``(num_instances, num_poles)``: relative
    error of each matched dominant pole per instance (the population
    behind the paper's histograms).
    """

    samples: np.ndarray
    pole_errors: np.ndarray
    full_poles: np.ndarray
    reduced_poles: np.ndarray
    labels: dict = field(default_factory=dict)

    @property
    def num_instances(self) -> int:
        """Number of Monte Carlo instances."""
        return self.samples.shape[0]

    @property
    def max_error(self) -> float:
        """Worst relative pole error across all instances and poles."""
        return float(self.pole_errors.max())

    @property
    def total_poles(self) -> int:
        """Total pole comparisons (e.g. the paper's "1000 poles")."""
        return int(self.pole_errors.size)

    def histogram(self, bins: int = 20):
        """``numpy.histogram`` of all pole errors (in percent)."""
        return np.histogram(self.pole_errors.ravel() * 100.0, bins=bins)


def monte_carlo_pole_study(
    full_model,
    reduced_model,
    num_instances: int,
    num_poles: int = 5,
    three_sigma: float = 0.3,
    seed: int = 0,
    samples: Optional[Sequence[Sequence[float]]] = None,
) -> MonteCarloResult:
    """Run the Figs. 5-6 protocol.

    Parameters
    ----------
    full_model:
        The full :class:`~repro.circuits.variational.ParametricSystem`.
    reduced_model:
        The reduced parametric model to evaluate.
    num_instances:
        Monte Carlo instance count (ignored when ``samples`` given).
    num_poles:
        Dominant poles compared per instance (paper: 5).
    three_sigma:
        3-sigma range of the normal parameter distribution (paper: 0.3).
    seed:
        Sampling seed.
    samples:
        Optional explicit parameter samples overriding the generator.
    """
    if samples is None:
        samples = sample_parameters(
            num_instances, full_model.num_parameters, three_sigma=three_sigma, seed=seed
        )
    else:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
    pole_errors = np.empty((samples.shape[0], num_poles))
    full_poles = np.empty((samples.shape[0], num_poles), dtype=complex)
    reduced_poles = np.empty((samples.shape[0], num_poles), dtype=complex)
    for i, point in enumerate(samples):
        errors, full_p, matched = match_poles(full_model, reduced_model, point, num_poles)
        pole_errors[i] = errors
        full_poles[i] = full_p
        reduced_poles[i] = matched
    return MonteCarloResult(
        samples=samples,
        pole_errors=pole_errors,
        full_poles=full_poles,
        reduced_poles=reduced_poles,
        labels={"three_sigma": three_sigma, "num_poles": num_poles},
    )
