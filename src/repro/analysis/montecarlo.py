"""Monte Carlo process-variation studies (Figs. 5-6 left plots).

The paper "independently var[ies] the three metal line widths up to
30% (3-sigma variations) of the nominal values according to the normal
distribution" and histograms the relative errors of the 5 most
dominant poles of the reduced parametric model against the perturbed
full model over all instances.  This module implements that protocol
for any full/reduced model pair.

Evaluation runs on the :class:`repro.runtime.engine.Study` engine: one
pole study per model routes the reduced side through the batched
stacked-instantiation kernels (bit-identical to the scalar path) and
the per-instance full-model reference solves through the
``executor-full`` route (serial by default, parallel via
``executor="process"`` etc.; executors built from a spec are shut down
deterministically by the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.metrics import matched_pole_errors
from repro.runtime.engine import Study
from repro.runtime.store import NothingToResumeError, StudyStore


def sample_parameters(
    num_instances: int,
    num_parameters: int,
    three_sigma: float = 0.3,
    seed: int = 0,
    truncate: bool = True,
) -> np.ndarray:
    """Normal parameter samples with ``3 sigma = three_sigma``.

    Each parameter is drawn independently from
    ``N(0, (three_sigma/3)^2)``; with ``truncate`` (default) samples
    are clipped to ``+/- three_sigma``, matching the paper's "up to
    30%" phrasing (and keeping perturbed conductances positive for
    aggressive variations).
    """
    if num_instances < 1 or num_parameters < 1:
        raise ValueError("num_instances and num_parameters must be >= 1")
    rng = np.random.default_rng(seed)
    sigma = three_sigma / 3.0
    samples = rng.normal(0.0, sigma, size=(num_instances, num_parameters))
    if truncate:
        samples = np.clip(samples, -three_sigma, three_sigma)
    return samples


@dataclass
class MonteCarloResult:
    """Pole-error study over Monte Carlo parameter instances.

    ``pole_errors`` has shape ``(num_instances, num_poles)``: relative
    error of each matched dominant pole per instance (the population
    behind the paper's histograms).

    ``verified`` is the float32-screening provenance column of the
    reduced-model study when it ran with ``precision="screen"``:
    per instance, True means the row was re-verified in float64,
    False means the float32 screen accepted it; ``None`` on
    full-precision runs.
    """

    samples: np.ndarray
    pole_errors: np.ndarray
    full_poles: np.ndarray
    reduced_poles: np.ndarray
    labels: dict = field(default_factory=dict)
    verified: Optional[np.ndarray] = None

    @property
    def num_instances(self) -> int:
        """Number of Monte Carlo instances."""
        return self.samples.shape[0]

    @property
    def max_error(self) -> float:
        """Worst relative pole error across all instances and poles."""
        return float(self.pole_errors.max())

    @property
    def total_poles(self) -> int:
        """Total pole comparisons (e.g. the paper's "1000 poles")."""
        return int(self.pole_errors.size)

    def histogram(self, bins: int = 20):
        """``numpy.histogram`` of all pole errors (in percent)."""
        return np.histogram(self.pole_errors.ravel() * 100.0, bins=bins)


def monte_carlo_pole_study(
    full_model,
    reduced_model,
    num_instances: int,
    num_poles: int = 5,
    three_sigma: float = 0.3,
    seed: int = 0,
    samples: Optional[Sequence[Sequence[float]]] = None,
    executor=None,
    store=None,
    shard: Optional[tuple] = None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
    trace=None,
    work: bool = False,
    ttl: float = 30.0,
    poll: float = 0.2,
    worker: Optional[str] = None,
    precision: str = "full",
) -> Optional[MonteCarloResult]:
    """Run the Figs. 5-6 protocol.

    The reduced model is instantiated for all instances in one batched
    kernel call (when it supports batching), and the independent
    full-model reference solves are dispatched through ``executor``.
    Results are bit-identical to the historical per-sample loop for
    every executor backend: each instance's computation is a pure
    function of its sample point.

    ``store`` (a directory or :class:`~repro.runtime.store.StudyStore`)
    makes the study durable: both pole studies checkpoint their chunks
    (``chunk_size`` instances per checkpoint unit) under one store, so
    an interrupted sign-off resumes (``resume=True``) and a 0-based
    ``shard=(i, n)`` split runs on ``n`` machines -- each shard's
    result covers its own instances, and a final resumed run with no
    shard merges everything bit-identically to a one-shot study.

    Parameters
    ----------
    full_model:
        The full :class:`~repro.circuits.variational.ParametricSystem`.
    reduced_model:
        The reduced parametric model to evaluate.
    num_instances:
        Monte Carlo instance count (ignored when ``samples`` given).
    num_poles:
        Dominant poles compared per instance (paper: 5).
    three_sigma:
        3-sigma range of the normal parameter distribution (paper: 0.3).
    seed:
        Sampling seed.
    samples:
        Optional explicit parameter samples overriding the generator.
    executor:
        Executor spec for the full-model solves (anything
        :func:`repro.runtime.executor.resolve_executor` accepts;
        default serial).
    store, shard, resume, chunk_size:
        Durable-study pass-through (see above); default: not durable.
    trace:
        Optional trace sink -- a path (JSONL file), an object with an
        ``emit(record)`` method, or a sequence of either -- applied to
        both internal studies via :meth:`Study.trace`, so one merged
        trace covers the full-model and reduced-model phases.
    work, ttl, poll, worker:
        ``work=True`` runs both pole studies through the lease-based
        work-stealing drain (:meth:`Study.work`) instead of
        :meth:`Study.run`: any number of processes given the same
        declaration and store cooperate until the sign-off drains
        (``ttl``/``poll``/``worker`` pass through to the scheduler).
        Requires ``store``; mutually exclusive with ``shard`` and
        ``resume``.  Every participating worker blocks until both
        sides drain and returns the same merged result, bit-identical
        to a one-shot run.
    precision:
        ``"full"`` (default) or ``"screen"``: the numeric tier of the
        *reduced-model* pole study (:meth:`Study.precision`).  The
        screen tier solves each reduced instance in float32 and
        re-verifies only ill-conditioned or non-finite rows in
        float64; the result's ``verified`` column records which rows
        were re-verified.  The full-model reference solves always stay
        float64.
    """
    if work:
        if store is None:
            raise ValueError("work=True requires store=...")
        if shard is not None or resume:
            raise ValueError(
                "work=True is mutually exclusive with shard/resume: workers "
                "claim chunks dynamically"
            )
    if samples is None:
        samples = sample_parameters(
            num_instances, full_model.num_parameters, three_sigma=three_sigma, seed=seed
        )
    else:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))

    if resume:
        if store is None:
            raise ValueError("resume=True requires store=...")
        store = store if isinstance(store, StudyStore) else StudyStore(store)
        if not list(store.directory.glob("manifest-*.json")):
            raise NothingToResumeError(
                f"nothing to resume: no study manifests in "
                f"{str(store.directory)!r}"
            )

    trace_sinks = () if trace is None else (
        trace if isinstance(trace, (list, tuple)) else (trace,)
    )

    def _durable(study: Study) -> Study:
        for sink in trace_sinks:
            study = study.trace(sink)
        if store is not None:
            study = study.store(store)
        if chunk_size is not None:
            study = study.chunk(chunk_size)
        if shard is not None:
            study = study.shard(*shard)
        if resume:
            study = study.resume()
        return study

    def _run_durable(study: Study):
        """Run one side of the sign-off durably.

        A crash can land between the two pole studies (the full-model
        phase runs first), so on a resumed sign-off the side that never
        reached its first checkpoint simply runs fresh against the
        store -- strictness for the sign-off as a whole is enforced by
        the manifest pre-check above.  Work-stealing mode drains each
        side cooperatively instead; every worker blocks until the side
        is complete, so both branches return a full merged study.
        """
        if work:
            return _durable(study).work(ttl=ttl, poll=poll, worker=worker)
        try:
            return _durable(study).run()
        except NothingToResumeError:
            return study.resume(False).run()

    # One engine study per side.  The full model always declares an
    # executor (default serial) so it takes the per-sample
    # executor-full route -- shared-pattern instantiation for sparse
    # systems, plain per-sample solves otherwise -- and never
    # materializes (m, n, n) full-order stacks; the reduced model
    # routes through the dense-batch stacked instantiation with a 2x
    # pole budget for matching.  Both are bit-identical to the
    # historical loops.
    full_study = _run_durable(
        Study(full_model)
        .scenarios(samples)
        .poles(num_poles)
        .executor(executor if executor is not None else "serial")
    )
    reduced_study = _run_durable(
        Study(reduced_model)
        .scenarios(samples)
        .poles(2 * num_poles)
        .precision(precision)
    )
    full_results = full_study.pole_sets
    reduced_results = reduced_study.pole_sets
    if shard is not None:
        # Sharded sign-off: the result covers this shard's instances.
        samples = full_study.samples

    pole_errors = np.empty((samples.shape[0], num_poles))
    full_poles = np.empty((samples.shape[0], num_poles), dtype=complex)
    reduced_poles = np.empty((samples.shape[0], num_poles), dtype=complex)
    for i, (full_p, reduced_p) in enumerate(zip(full_results, reduced_results)):
        errors, matched = matched_pole_errors(full_p, reduced_p)
        pole_errors[i] = errors
        full_poles[i] = full_p
        reduced_poles[i] = matched
    return MonteCarloResult(
        samples=samples,
        pole_errors=pole_errors,
        full_poles=full_poles,
        reduced_poles=reduced_poles,
        labels={"three_sigma": three_sigma, "num_poles": num_poles},
        verified=getattr(reduced_study, "verified", None),
    )
