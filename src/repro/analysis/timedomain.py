"""Transient simulation of descriptor systems.

Integrates ``C x' = -G x + B u(t)`` with the backward Euler or
trapezoidal method -- the standard circuit-simulator companion models.
Both are A-stable, which matters because interconnect systems are
stiff (time constants spread over many decades).

Used by the examples to show full-vs-reduced step responses, and by
the tests as an independent (time-domain) validation of the reduced
macromodels: a model that matches moments should match the step
response it implies.

This per-instance, per-timestep loop is the *bit-exact reference* for
the batched ensemble kernels in :mod:`repro.runtime.transient`, which
advance all instances of a scenario ensemble at once.  The declarative
waveforms of :mod:`repro.runtime.scenarios` (``StepInput``,
``RampInput``, ``PWLInput``, ``SineInput``) are accepted directly as
``input_function``, so one stimulus object drives both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


@dataclass
class TransientResult:
    """Time axis, outputs ``y(t)`` (nt x m_out), and states if kept."""

    time: np.ndarray
    outputs: np.ndarray
    states: Union[np.ndarray, None] = None


def simulate_transient(
    system,
    input_function: Callable[[float], np.ndarray],
    t_final: float,
    num_steps: int,
    method: str = "trapezoidal",
    keep_states: bool = False,
    x0: Union[np.ndarray, None] = None,
) -> TransientResult:
    """Fixed-step transient simulation.

    Parameters
    ----------
    system:
        A :class:`~repro.circuits.statespace.DescriptorSystem`.
    input_function:
        ``u(t)`` returning an ``m_in``-vector (scalars accepted for
        single-input systems), or a declarative
        :class:`~repro.runtime.scenarios.InputWaveform`.
    t_final, num_steps:
        Simulation horizon and step count (``h = t_final/num_steps``).
    method:
        ``"trapezoidal"`` (default) or ``"backward_euler"``.
    keep_states:
        Store the state trajectory (memory-heavy for large systems).
    x0:
        Initial state (default: zero).
    """
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if method not in ("trapezoidal", "backward_euler"):
        raise ValueError(f"unknown method {method!r}")
    if hasattr(input_function, "as_function"):
        input_function = input_function.as_function(system.num_inputs)

    n = system.order
    h = t_final / num_steps
    g_mat, c_mat = system.G, system.C
    b_mat = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    l_mat = system.L.toarray() if hasattr(system.L, "toarray") else np.asarray(system.L)

    sparse = sp.issparse(g_mat)
    if method == "backward_euler":
        lhs = c_mat / h + g_mat
    else:
        lhs = c_mat * (2.0 / h) + g_mat
    if sparse:
        solver = spla.splu(sp.csc_matrix(lhs)).solve
    else:
        from scipy.linalg import lu_factor, lu_solve

        factors = lu_factor(np.asarray(lhs))
        solver = lambda rhs: lu_solve(factors, rhs)  # noqa: E731

    def u_at(t: float) -> np.ndarray:
        value = np.atleast_1d(np.asarray(input_function(t), dtype=float))
        if value.shape != (b_mat.shape[1],):
            raise ValueError(
                f"input function returned shape {value.shape}, expected ({b_mat.shape[1]},)"
            )
        return value

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    time = np.linspace(0.0, t_final, num_steps + 1)
    outputs = np.empty((num_steps + 1, l_mat.shape[1]))
    outputs[0] = l_mat.T @ x
    states = np.empty((num_steps + 1, n)) if keep_states else None
    if keep_states:
        states[0] = x

    for step in range(1, num_steps + 1):
        t_new = time[step]
        if method == "backward_euler":
            rhs = np.asarray(c_mat @ x) / h + b_mat @ u_at(t_new)
        else:
            t_old = time[step - 1]
            rhs = (
                np.asarray(c_mat @ x) * (2.0 / h)
                - np.asarray(g_mat @ x)
                + b_mat @ (u_at(t_new) + u_at(t_old))
            )
        x = np.asarray(solver(rhs)).ravel()
        outputs[step] = l_mat.T @ x
        if keep_states:
            states[step] = x
    return TransientResult(time=time, outputs=outputs, states=states)


def simulate_step(
    system,
    amplitude: float = 1.0,
    t_final: float = 1e-9,
    num_steps: int = 500,
    input_index: int = 0,
    method: str = "trapezoidal",
) -> TransientResult:
    """Step response: ``u_input_index(t) = amplitude`` for ``t >= 0``.

    The source is on *at* ``t = 0`` (the 0+ convention): the companion
    models then integrate a constant input exactly instead of smearing
    the discontinuity over the first step.
    """
    m_in = system.num_inputs

    def step_input(t: float) -> np.ndarray:
        u = np.zeros(m_in)
        if t >= 0:
            u[input_index] = amplitude
        return u

    return simulate_transient(system, step_input, t_final, num_steps, method=method)
