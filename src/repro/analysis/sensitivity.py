"""Direct parameter sensitivities of the transfer function (extension).

For the first-order parametric family ``G(p) = G0 + sum p_i G_i``,
``C(p) = C0 + sum p_i C_i`` the exact derivative of the transfer
function with respect to a parameter is available in closed form:

``dH/dp_i (s, p) = -L^T K(s,p)^{-1} (G_i + s C_i) K(s,p)^{-1} B``,
``K(s, p) = G(p) + s C(p)``,

at the cost of one extra (block) solve per parameter against the same
factorization used for ``H`` itself.  This gives an independent oracle
for everything the MOR pipeline produces:

- it must agree with finite differences of ``H`` (internal consistency);
- at ``(s, p) = (0, 0)`` it must equal the first-order multi-parameter
  moments of :mod:`repro.core.moments` (cross-validation of the moment
  recurrence);
- evaluated on a reduced parametric model it measures how well the
  model tracks not just the response but the response's *slope* in the
  parameters -- a stricter fidelity criterion used by the tests.

Evaluation routes through the :class:`repro.runtime.engine.Study`
engine: dense models hit the batched runtime kernel (a batch of one),
sparse full systems the factored-solve scalar path the engine's
executor route maps per sample.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.runtime.batch import supports_batching
from repro.runtime.sparse import supports_sparse_batching


def _scalar_sensitivities(
    parametric_model,
    s: complex,
    point: np.ndarray,
) -> np.ndarray:
    """Exact per-sample ``dH/dp`` through one factorization at ``point``.

    The reference implementation every engine route is pinned to: one
    (sparse LU or dense) factorization of the pencil, one forward and
    one adjoint block solve, then one contraction per parameter.  Used
    directly for sparse full systems and mapped over samples by the
    engine's ``executor-full`` sensitivity route.
    """
    system = parametric_model.instantiate(point)
    s = complex(s)

    g = system.G
    c = system.C
    b = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    l_mat = system.L.toarray() if hasattr(system.L, "toarray") else np.asarray(system.L)

    if sp.issparse(g):
        pencil = (g + s * c).tocsc().astype(np.complex128)
        lu = spla.splu(pencil)
        x = lu.solve(b.astype(complex))
        # Adjoint solves for the output side: K^T y = L.
        y = lu.solve(l_mat.astype(complex), trans="T")
    else:
        pencil = (np.asarray(g) + s * np.asarray(c)).astype(np.complex128)
        x = np.linalg.solve(pencil, b.astype(complex))
        y = np.linalg.solve(pencil.T, l_mat.astype(complex))

    num_parameters = parametric_model.num_parameters
    sensitivities = np.empty((num_parameters, l_mat.shape[1], b.shape[1]), dtype=complex)
    for i in range(num_parameters):
        gi = parametric_model.dG[i]
        ci = parametric_model.dC[i]
        k_i = gi + s * ci
        sensitivities[i] = -(y.T @ np.asarray(k_i @ x))
    return sensitivities


def transfer_sensitivities(
    parametric_model,
    s: complex,
    p: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Exact ``dH/dp_i`` for all parameters at ``(s, p)``.

    ``parametric_model`` is a full
    :class:`~repro.circuits.variational.ParametricSystem` or a reduced
    :class:`~repro.core.model.ParametricReducedModel`; both expose the
    sensitivity matrices ``dG``/``dC`` this needs.  Batchable models
    (dense or sparse) are dispatched through the ``Study`` engine as a
    batch of one; anything else falls back to the scalar factored
    solve directly.

    Returns an array of shape ``(n_p, m_out, m_in)``.
    """
    num_parameters = parametric_model.num_parameters
    point = (
        np.zeros(num_parameters) if p is None else np.asarray(p, dtype=float)
    )
    if supports_batching(parametric_model) or supports_sparse_batching(parametric_model):
        from repro.runtime.engine import Study

        study = (
            Study(parametric_model)
            .scenarios(point[None, :])
            .sensitivities(s)
            .run()
        )
        return study.sensitivities[0]
    return _scalar_sensitivities(parametric_model, s, point)


def sensitivity_error(
    full_parametric,
    reduced_model,
    s: complex,
    p: Optional[Sequence[float]] = None,
) -> float:
    """Worst relative mismatch of ``dH/dp_i`` between full and reduced.

    A stricter fidelity metric than response error: a model can match
    ``H`` pointwise while getting the parameter slopes wrong, which
    would poison any downstream sensitivity/statistical analysis.
    """
    full = transfer_sensitivities(full_parametric, s, p)
    reduced = transfer_sensitivities(reduced_model, s, p)
    if full.shape != reduced.shape:
        raise ValueError(
            f"sensitivity shapes differ: {full.shape} vs {reduced.shape}"
        )
    worst = 0.0
    for i in range(full.shape[0]):
        scale = max(np.abs(full[i]).max(), 1e-300)
        worst = max(worst, float(np.abs(full[i] - reduced[i]).max() / scale))
    return worst
