"""Statistical performance analysis on parametric macromodels (extension).

The end product the paper enables: once a compact parametric model
exists, statistical analysis of any scalar performance metric (delay,
bandwidth, peak crosstalk, ...) over the process distribution becomes
cheap.  This module provides:

- :func:`metric_distribution` -- Monte Carlo of a user metric over the
  parameter distribution, with summary statistics and percentiles;
- :func:`fit_response_surface` -- a quadratic response-surface model
  ``f(p) ~= c0 + b^T p + p^T A p / 2`` fitted by least squares on model
  evaluations, the standard SSTA-style surrogate;
- :func:`parameter_ranking` -- Pearson-correlation ranking of which
  parameter drives the metric (a cheap global sensitivity measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.montecarlo import sample_parameters


@dataclass
class MetricDistribution:
    """Monte Carlo summary of a scalar performance metric."""

    samples: np.ndarray
    values: np.ndarray

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self.values.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(self.values.std())

    def percentile(self, q) -> np.ndarray:
        """Percentile(s) of the metric (e.g. ``q=99`` for worst-case-ish)."""
        return np.percentile(self.values, q)

    def histogram(self, bins: int = 20):
        """``numpy.histogram`` of the metric values."""
        return np.histogram(self.values, bins=bins)


def metric_distribution(
    parametric_model,
    metric: Callable[..., float],
    num_instances: int = 200,
    three_sigma: float = 0.3,
    seed: int = 0,
    samples: Optional[Sequence[Sequence[float]]] = None,
) -> MetricDistribution:
    """Monte Carlo distribution of ``metric(instantiated_system)``.

    ``metric`` receives the instantiated (reduced or full) descriptor
    system for each parameter sample; use e.g.
    :func:`repro.analysis.delay.elmore_delay`.
    """
    if samples is None:
        samples = sample_parameters(
            num_instances, parametric_model.num_parameters,
            three_sigma=three_sigma, seed=seed,
        )
    else:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
    values = np.array(
        [metric(parametric_model.instantiate(point)) for point in samples]
    )
    return MetricDistribution(samples=samples, values=values)


@dataclass
class ResponseSurface:
    """Quadratic surrogate ``f(p) ~= c0 + b.p + p.A.p/2``."""

    constant: float
    linear: np.ndarray
    quadratic: np.ndarray
    residual_rms: float

    def __call__(self, p: Sequence[float]) -> float:
        point = np.asarray(p, dtype=float)
        return float(
            self.constant
            + self.linear @ point
            + 0.5 * point @ self.quadratic @ point
        )


def fit_response_surface(
    samples: Sequence[Sequence[float]], values: Sequence[float]
) -> ResponseSurface:
    """Least-squares quadratic response surface from (samples, values).

    Needs at least ``1 + np + np(np+1)/2`` samples.  The quadratic
    coefficient matrix is symmetric by construction.
    """
    points = np.atleast_2d(np.asarray(samples, dtype=float))
    targets = np.asarray(values, dtype=float)
    if points.shape[0] != targets.shape[0]:
        raise ValueError("samples and values must have equal length")
    n_samples, np_count = points.shape
    num_terms = 1 + np_count + np_count * (np_count + 1) // 2
    if n_samples < num_terms:
        raise ValueError(
            f"need at least {num_terms} samples for a quadratic fit in "
            f"{np_count} parameters, got {n_samples}"
        )
    columns = [np.ones(n_samples)]
    columns.extend(points[:, i] for i in range(np_count))
    pairs = []
    for i in range(np_count):
        for j in range(i, np_count):
            factor = 0.5 if i == j else 1.0
            columns.append(factor * points[:, i] * points[:, j])
            pairs.append((i, j))
    design = np.column_stack(columns)
    coefficients, *_ = np.linalg.lstsq(design, targets, rcond=None)
    constant = float(coefficients[0])
    linear = coefficients[1 : 1 + np_count].copy()
    quadratic = np.zeros((np_count, np_count))
    for coefficient, (i, j) in zip(coefficients[1 + np_count :], pairs):
        # Design columns: 0.5 p_i^2 (diagonal) and p_i p_j (off-diagonal),
        # so f = c0 + b.p + 0.5 p.Q.p holds with Q[i,i] = c_ii and
        # Q[i,j] = Q[j,i] = c_ij directly.
        quadratic[i, j] = coefficient
        quadratic[j, i] = coefficient
    residual = design @ coefficients - targets
    return ResponseSurface(
        constant=constant,
        linear=linear,
        quadratic=quadratic,
        residual_rms=float(np.sqrt(np.mean(residual ** 2))),
    )


def parameter_ranking(distribution: MetricDistribution):
    """Parameters ranked by |Pearson correlation| with the metric.

    Returns a list of ``(parameter_index, correlation)`` sorted by
    descending influence.  Zero-variance parameters get correlation 0.
    """
    samples = distribution.samples
    values = distribution.values
    correlations = []
    value_std = values.std()
    for i in range(samples.shape[1]):
        column = samples[:, i]
        denominator = column.std() * value_std
        if denominator == 0.0:
            correlations.append((i, 0.0))
            continue
        covariance = np.mean((column - column.mean()) * (values - values.mean()))
        correlations.append((i, float(covariance / denominator)))
    return sorted(correlations, key=lambda item: abs(item[1]), reverse=True)
