"""Dominant-pole extraction and pole-accuracy studies (Figs. 5-6 machinery).

The paper evaluates the clock-tree models by comparing the 5 most
dominant poles of the reduced parametric model against the perturbed
full model, over Monte Carlo instances (histogram, Figs. 5-6 left) and
over a 2-D grid of M5/M6 width variations (Figs. 5-6 right).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.linalg as dla

from repro.analysis.metrics import matched_pole_errors

RESIDUE_FLOOR = 1e-9
COINCIDENCE_TOL = 1e-7


def pole_residues(
    system, output_index: int = 0, input_index: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Poles and residues of one transfer-function entry.

    Diagonalizing ``A' = G^{-1} C = V diag(lambda) V^{-1}`` gives

    ``H(s) = sum_j c_j / (1 + s lambda_j)``,
    ``c_j = (L^T v_j) (V^{-1} G^{-1} B)_j``,

    with poles ``s_j = -1/lambda_j``.  The residue magnitudes ``|c_j|``
    measure how much each pole actually contributes to the port
    response -- the quantity "dominant poles" is about.  Eigenvalues
    with negligible ``|lambda|`` (poles at infinity) are dropped.

    Dense ``O(n^3)``: intended for full systems up to a few thousand
    states and for all reduced models.
    """
    g = system.G.toarray() if hasattr(system.G, "toarray") else np.asarray(system.G)
    c = system.C.toarray() if hasattr(system.C, "toarray") else np.asarray(system.C)
    b = system.B.toarray() if hasattr(system.B, "toarray") else np.asarray(system.B)
    l_mat = system.L.toarray() if hasattr(system.L, "toarray") else np.asarray(system.L)
    a = np.linalg.solve(g, c)
    eigenvalues, v = dla.eig(a)
    r = np.linalg.solve(g, b[:, input_index])
    coefficients = (l_mat[:, output_index] @ v) * np.linalg.solve(v, r)
    magnitude = np.abs(eigenvalues)
    scale = magnitude.max() if magnitude.size else 0.0
    if scale == 0.0:
        return np.empty(0, dtype=complex), np.empty(0, dtype=complex)
    finite = magnitude > 1e-12 * scale
    return -1.0 / eigenvalues[finite], coefficients[finite]


def _merge_coincident(poles: np.ndarray, residues: np.ndarray):
    """Sum residues of (numerically) coincident poles.

    Symmetric structures (balanced clock trees, identical bus lines)
    produce degenerate eigenvalues whose individual eigenvectors are
    arbitrary; only the *summed* port contribution is well defined.
    """
    order = np.argsort(np.abs(poles))
    poles, residues = poles[order], residues[order]
    merged_poles, merged_residues = [], []
    for pole, residue in zip(poles, residues):
        if merged_poles and abs(pole - merged_poles[-1]) <= COINCIDENCE_TOL * abs(pole):
            merged_residues[-1] += residue
        else:
            merged_poles.append(pole)
            merged_residues.append(residue)
    return np.array(merged_poles), np.array(merged_residues)


def dominant_poles(
    model,
    num: int,
    p: Optional[Sequence[float]] = None,
    observable_only: bool = True,
    output_index: int = 0,
    input_index: int = 0,
) -> np.ndarray:
    """The ``num`` most dominant poles of any supported model object.

    Dominance = smallest ``|s|`` (largest time constant) among the
    poles that actually appear in the selected transfer-function entry
    (residue above ``RESIDUE_FLOOR`` relative to the largest; disable
    with ``observable_only=False`` to rank raw eigenvalues instead).
    Coincident poles from structural symmetry are merged.  ``p``
    selects the parameter point for parametric (full or reduced)
    models.
    """
    if p is not None:
        if hasattr(model, "instantiate"):
            model = model.instantiate(p)
        else:
            raise TypeError(f"{model!r} is not parametric but p was given")
    if not observable_only:
        return model.poles(num=num)
    poles, residues = pole_residues(model, output_index=output_index, input_index=input_index)
    poles, residues = _merge_coincident(poles, residues)
    strength = np.abs(residues)
    if strength.size == 0:
        return poles
    keep = strength > RESIDUE_FLOOR * strength.max()
    poles = poles[keep]
    order = np.argsort(np.abs(poles))
    return poles[order][:num]


def match_poles(
    full_model,
    reduced_model,
    p: Sequence[float],
    num: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relative errors in the ``num`` dominant poles at parameter point ``p``.

    The reduced model is given a 2x pole budget for matching so that a
    reduced pole ordering slightly different from the full model's does
    not produce spurious mismatches.

    Returns ``(errors, full_poles, matched_reduced_poles)``.
    """
    full_poles = dominant_poles(full_model, num, p)
    reduced_poles = dominant_poles(reduced_model, 2 * num, p)
    errors, matched = matched_pole_errors(full_poles, reduced_poles)
    return errors, full_poles, matched


def pole_error_grid(
    full_model,
    reduced_model,
    axis_values: Sequence[float],
    vary_indices: Tuple[int, int],
    fixed_point: Sequence[float],
    num_poles: int = 1,
) -> np.ndarray:
    """Dominant-pole error over a 2-D slice of the parameter space.

    Mirrors the right-hand plots of Figs. 5-6: vary two parameters
    (e.g. M5 and M6 widths) over ``axis_values`` (e.g. -30%..30%),
    keep the others at ``fixed_point``, and record the worst relative
    error among the ``num_poles`` most dominant poles.

    Returns an array of shape ``(len(axis_values), len(axis_values))``
    indexed ``[i, j]`` = (first varied param = axis_values[i],
    second = axis_values[j]).
    """
    axis_values = np.asarray(axis_values, dtype=float)
    i_index, j_index = vary_indices
    base = np.asarray(fixed_point, dtype=float).copy()
    grid = np.empty((axis_values.size, axis_values.size))
    for a, vi in enumerate(axis_values):
        for b, vj in enumerate(axis_values):
            point = base.copy()
            point[i_index] = vi
            point[j_index] = vj
            errors, _, _ = match_poles(full_model, reduced_model, point, num_poles)
            grid[a, b] = errors.max()
    return grid
