"""Frequency-domain sweeps and model comparisons (Figs. 3-4 machinery).

:func:`sweep` evaluates any model-like object -- a
:class:`~repro.circuits.statespace.DescriptorSystem`, a
:class:`~repro.circuits.variational.ParametricSystem` at a point, or a
:class:`~repro.core.model.ParametricReducedModel` at a point -- over a
frequency grid and returns a :class:`FrequencySweep` carrying the
complex response of one (out, in) entry.  :func:`compare_frequency_responses`
produces the per-model error table the figure benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.metrics import relative_l2_error, relative_linf_error


@dataclass
class FrequencySweep:
    """A single-entry frequency response ``H[out, in](j 2 pi f)``."""

    frequencies: np.ndarray
    response: np.ndarray
    label: str = "sweep"
    output_index: int = 0
    input_index: int = 0

    def magnitude(self) -> np.ndarray:
        """``|H(f)|`` (what the paper's Figs. 3-4 plot)."""
        return np.abs(self.response)

    def __post_init__(self):
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.response = np.asarray(self.response, dtype=complex)
        if self.frequencies.shape != self.response.shape:
            raise ValueError("frequencies and response must have matching shapes")


def _evaluate(model, frequencies: np.ndarray, p: Optional[Sequence[float]]) -> np.ndarray:
    """Full ``(nf, m_out, m_in)`` response of any supported model object."""
    if hasattr(model, "frequency_response"):
        if p is None:
            return model.frequency_response(frequencies)
        return model.frequency_response(frequencies, p)
    raise TypeError(f"object {model!r} does not expose frequency_response")


def sweep(
    model,
    frequencies: Sequence[float],
    p: Optional[Sequence[float]] = None,
    output_index: int = 0,
    input_index: int = 0,
    label: Optional[str] = None,
) -> FrequencySweep:
    """Evaluate one transfer-function entry over a frequency grid.

    ``p`` selects the parameter point for parametric models (full or
    reduced) and must be omitted for plain descriptor systems.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    # ParametricSystem exposes instantiate() but not frequency_response.
    if p is not None and hasattr(model, "instantiate") and not hasattr(
        model, "frequency_response"
    ):
        model = model.instantiate(p)
        p = None
    full = _evaluate(model, frequencies, p)
    return FrequencySweep(
        frequencies,
        full[:, output_index, input_index],
        label=label or getattr(model, "title", model.__class__.__name__),
        output_index=output_index,
        input_index=input_index,
    )


@dataclass
class SweepComparison:
    """Error table of several sweeps against a shared reference."""

    reference: FrequencySweep
    sweeps: Dict[str, FrequencySweep] = field(default_factory=dict)
    linf_errors: Dict[str, float] = field(default_factory=dict)
    l2_errors: Dict[str, float] = field(default_factory=dict)

    def rows(self):
        """(label, linf, l2) rows sorted by insertion order."""
        return [
            (label, self.linf_errors[label], self.l2_errors[label])
            for label in self.sweeps
        ]


def compare_frequency_responses(
    reference: FrequencySweep, candidates: Dict[str, FrequencySweep]
) -> SweepComparison:
    """Compare candidate sweeps against a reference on the same grid."""
    comparison = SweepComparison(reference=reference)
    for label, candidate in candidates.items():
        if candidate.frequencies.shape != reference.frequencies.shape or not np.allclose(
            candidate.frequencies, reference.frequencies
        ):
            raise ValueError(f"sweep {label!r} uses a different frequency grid")
        comparison.sweeps[label] = candidate
        comparison.linf_errors[label] = relative_linf_error(
            reference.response, candidate.response
        )
        comparison.l2_errors[label] = relative_l2_error(
            reference.response, candidate.response
        )
    return comparison
