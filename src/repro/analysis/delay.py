"""Interconnect delay metrics (extension).

The downstream use of variational interconnect models (the paper's
motivation) is timing: how much does the clock-tree insertion delay
move under process variation?  This module provides the standard delay
metrics, each computable from either a full or a reduced model:

- :func:`elmore_delay` -- the first moment of the impulse response,
  ``T_elmore = m1_ratio = -d/ds [H(s)/H(0)] |_{s=0}``, computed exactly
  from two transfer-function moments (no simulation);
- :func:`threshold_delay` -- the 50% (or arbitrary-threshold) step
  delay from a transient simulation;
- :func:`slew_time` -- the 10%-90% (or arbitrary-band) rise time of the
  step response;
- :func:`delay_sensitivity` -- finite-difference sensitivity of a delay
  metric with respect to each variational parameter, evaluated on the
  *reduced* parametric model (the cheap surrogate the paper's method
  makes possible).

The ensemble versions -- :func:`batch_threshold_delays` and
:func:`batch_slew_times` -- run on the batched time-domain kernels of
:mod:`repro.runtime.transient`: one simulation of the whole sample
matrix, then one vectorized crossing extraction
(:func:`threshold_crossing_times`) over the stacked waveforms.  The
scalar functions above remain the per-instance reference they are
tested against.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.timedomain import simulate_step
from repro.baselines.awe import transfer_moments


def settling_horizon(system, time_constants: float = 8.0) -> float:
    """Default step-settling window: ``time_constants`` dominant taus.

    The shared horizon rule behind every delay/slew metric (scalar and
    batched) and :func:`repro.runtime.transient.default_horizon`.
    Raises when the system has no stable dominant pole to infer from.
    """
    dominant = system.poles(num=1)
    if dominant.size == 0 or dominant[0].real >= 0:
        raise ValueError("cannot infer a horizon: no stable dominant pole")
    return time_constants / abs(dominant[0].real)


def threshold_crossing_times(
    time: np.ndarray, waveforms: np.ndarray, level
) -> np.ndarray:
    """First upward crossings of stacked waveforms, linearly interpolated.

    ``waveforms`` is ``(m, nt)`` (a single ``(nt,)`` row is promoted),
    ``level`` a scalar or per-row ``(m,)`` array.  Returns the ``(m,)``
    times at which each row first reaches ``level``; rows already at or
    above the level at ``time[0]`` return ``time[0]``, rows that never
    reach it return ``nan``.  This is the vectorized kernel behind both
    the scalar and the batched delay/slew metrics.
    """
    time = np.asarray(time, dtype=float)
    rows = np.atleast_2d(np.asarray(waveforms, dtype=float))
    levels = np.broadcast_to(np.asarray(level, dtype=float), (rows.shape[0],))
    above = rows >= levels[:, None]
    first = above.argmax(axis=1)
    never = ~above.any(axis=1)
    rows_index = np.arange(rows.shape[0])
    previous = np.maximum(first - 1, 0)
    y0 = rows[rows_index, previous]
    y1 = rows[rows_index, first]
    t0, t1 = time[previous], time[first]
    # Where first == 0 the segment is degenerate (y1 - y0 == 0); those
    # rows are overwritten below, so silence the spurious 0/0.
    with np.errstate(divide="ignore", invalid="ignore"):
        crossed = t0 + (levels - y0) / (y1 - y0) * (t1 - t0)
    out = np.where(first == 0, time[0], crossed)
    out[never] = np.nan
    return out


def elmore_delay(system, output_index: int = 0, input_index: int = 0) -> float:
    """Elmore delay of one transfer-function entry.

    For a monotonic step response, ``T_elmore = -m1/m0`` where ``m_k``
    are the transfer-function moments -- the classic first-order delay
    metric (and an upper bound on the 50% delay for RC trees).

    Raises if the DC gain ``m0`` vanishes (undriven output).
    """
    moments = transfer_moments(system, 2)
    m0 = moments[0, output_index, input_index]
    m1 = moments[1, output_index, input_index]
    if m0 == 0.0:
        raise ValueError("zero DC gain: Elmore delay undefined for this entry")
    return float(-m1 / m0)


def threshold_delay(
    system,
    threshold: float = 0.5,
    output_index: int = 0,
    input_index: int = 0,
    horizon: Optional[float] = None,
    num_steps: int = 2000,
) -> float:
    """Threshold-crossing step delay (50% by default).

    Simulates the unit-step response (trapezoidal) and returns the
    first time the output crosses ``threshold`` times its final value,
    with linear interpolation between time points.  ``horizon``
    defaults to eight times the dominant time constant.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if horizon is None:
        horizon = settling_horizon(system)
    result = simulate_step(
        system, t_final=horizon, num_steps=num_steps, input_index=input_index
    )
    waveform = result.outputs[:, output_index]
    # The threshold is relative to the true DC steady state (L^T G^{-1} B),
    # not to the value at the end of the simulated window -- otherwise a
    # too-short horizon would silently rescale the threshold.
    final = system.dc_gain()[output_index, input_index]
    if final == 0.0:
        raise ValueError("zero steady-state response: threshold delay undefined")
    normalized = waveform / final
    crossing = threshold_crossing_times(result.time, normalized, threshold)[0]
    if np.isnan(crossing) or crossing == result.time[0]:
        raise ValueError(
            "response does not cross the threshold inside the horizon; "
            "increase `horizon`"
        )
    return float(crossing)


def slew_time(
    system,
    low: float = 0.1,
    high: float = 0.9,
    output_index: int = 0,
    input_index: int = 0,
    horizon: Optional[float] = None,
    num_steps: int = 2000,
) -> float:
    """``low -> high`` rise time of the unit-step response (10%-90% default).

    Thresholds are relative to the true DC steady state, like
    :func:`threshold_delay`; raises when either level is not crossed
    inside the horizon.
    """
    if not 0.0 < low < high < 1.0:
        raise ValueError("need 0 < low < high < 1")
    if horizon is None:
        horizon = settling_horizon(system)
    result = simulate_step(
        system, t_final=horizon, num_steps=num_steps, input_index=input_index
    )
    final = system.dc_gain()[output_index, input_index]
    if final == 0.0:
        raise ValueError("zero steady-state response: slew undefined")
    normalized = result.outputs[:, output_index] / final
    t_low = threshold_crossing_times(result.time, normalized, low)[0]
    t_high = threshold_crossing_times(result.time, normalized, high)[0]
    if np.isnan(t_low) or np.isnan(t_high):
        raise ValueError(
            "response does not cross both slew thresholds inside the horizon; "
            "increase `horizon`"
        )
    return float(t_high - t_low)


def batch_threshold_delays(
    model,
    samples,
    threshold: float = 0.5,
    output_index: int = 0,
    input_index: int = 0,
    horizon: Optional[float] = None,
    num_steps: int = 2000,
    method: str = "trapezoidal",
) -> np.ndarray:
    """Threshold-crossing step delays of a whole parameter ensemble.

    The batched counterpart of :func:`threshold_delay` for dense
    parametric models: one batched transient-study kernel
    run over the ``(m, n_p)`` sample matrix, then one vectorized
    crossing extraction.  ``horizon`` defaults to eight *nominal*
    dominant time constants shared across the ensemble (the scalar
    function infers it per instance -- pass ``horizon`` explicitly when
    comparing the two).  Instances that never cross inside the horizon
    -- or whose steady-state response is zero -- yield ``nan`` (where
    the scalar function raises).
    """
    from repro.runtime.scenarios import StepInput
    from repro.runtime.transient import _transient_study

    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    study = _transient_study(
        model,
        samples,
        waveform=StepInput(input_index=input_index),
        t_final=horizon,
        num_steps=num_steps,
        method=method,
    )
    return study.delays(threshold=threshold, output_index=output_index)


def batch_slew_times(
    model,
    samples,
    low: float = 0.1,
    high: float = 0.9,
    output_index: int = 0,
    input_index: int = 0,
    horizon: Optional[float] = None,
    num_steps: int = 2000,
    method: str = "trapezoidal",
) -> np.ndarray:
    """``low -> high`` step rise times of a whole parameter ensemble.

    Batched counterpart of :func:`slew_time`; same horizon convention
    as :func:`batch_threshold_delays`.  ``nan`` where either threshold
    is not crossed.
    """
    from repro.runtime.scenarios import StepInput
    from repro.runtime.transient import _transient_study

    if not 0.0 < low < high < 1.0:
        raise ValueError("need 0 < low < high < 1")
    study = _transient_study(
        model,
        samples,
        waveform=StepInput(input_index=input_index),
        t_final=horizon,
        num_steps=num_steps,
        method=method,
    )
    return study.slews(low=low, high=high, output_index=output_index)


def delay_sensitivity(
    parametric_model,
    metric: Callable = elmore_delay,
    point: Optional[Sequence[float]] = None,
    step: float = 1e-3,
    output_index: int = 0,
    input_index: int = 0,
) -> np.ndarray:
    """Per-parameter delay sensitivities ``d(metric)/dp_i`` at ``point``.

    ``parametric_model`` is anything with ``instantiate(p)`` (full
    :class:`~repro.circuits.variational.ParametricSystem` or reduced
    :class:`~repro.core.model.ParametricReducedModel`) -- running this
    on the reduced model is the intended cheap path.  Central
    differences with relative parameter step ``step``.
    """
    num_parameters = parametric_model.num_parameters
    base = np.zeros(num_parameters) if point is None else np.asarray(point, dtype=float)
    sensitivities = np.empty(num_parameters)
    for i in range(num_parameters):
        forward = base.copy()
        backward = base.copy()
        forward[i] += step
        backward[i] -= step
        d_plus = metric(
            parametric_model.instantiate(forward),
            output_index=output_index,
            input_index=input_index,
        )
        d_minus = metric(
            parametric_model.instantiate(backward),
            output_index=output_index,
            input_index=input_index,
        )
        sensitivities[i] = (d_plus - d_minus) / (2.0 * step)
    return sensitivities
