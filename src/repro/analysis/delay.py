"""Interconnect delay metrics (extension).

The downstream use of variational interconnect models (the paper's
motivation) is timing: how much does the clock-tree insertion delay
move under process variation?  This module provides the standard delay
metrics, each computable from either a full or a reduced model:

- :func:`elmore_delay` -- the first moment of the impulse response,
  ``T_elmore = m1_ratio = -d/ds [H(s)/H(0)] |_{s=0}``, computed exactly
  from two transfer-function moments (no simulation);
- :func:`threshold_delay` -- the 50% (or arbitrary-threshold) step
  delay from a transient simulation;
- :func:`delay_sensitivity` -- finite-difference sensitivity of a delay
  metric with respect to each variational parameter, evaluated on the
  *reduced* parametric model (the cheap surrogate the paper's method
  makes possible).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.timedomain import simulate_step
from repro.baselines.awe import transfer_moments


def elmore_delay(system, output_index: int = 0, input_index: int = 0) -> float:
    """Elmore delay of one transfer-function entry.

    For a monotonic step response, ``T_elmore = -m1/m0`` where ``m_k``
    are the transfer-function moments -- the classic first-order delay
    metric (and an upper bound on the 50% delay for RC trees).

    Raises if the DC gain ``m0`` vanishes (undriven output).
    """
    moments = transfer_moments(system, 2)
    m0 = moments[0, output_index, input_index]
    m1 = moments[1, output_index, input_index]
    if m0 == 0.0:
        raise ValueError("zero DC gain: Elmore delay undefined for this entry")
    return float(-m1 / m0)


def threshold_delay(
    system,
    threshold: float = 0.5,
    output_index: int = 0,
    input_index: int = 0,
    horizon: Optional[float] = None,
    num_steps: int = 2000,
) -> float:
    """Threshold-crossing step delay (50% by default).

    Simulates the unit-step response (trapezoidal) and returns the
    first time the output crosses ``threshold`` times its final value,
    with linear interpolation between time points.  ``horizon``
    defaults to eight times the dominant time constant.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if horizon is None:
        dominant = system.poles(num=1)
        if dominant.size == 0 or dominant[0].real >= 0:
            raise ValueError("cannot infer a horizon: no stable dominant pole")
        horizon = 8.0 / abs(dominant[0].real)
    result = simulate_step(
        system, t_final=horizon, num_steps=num_steps, input_index=input_index
    )
    waveform = result.outputs[:, output_index]
    # The threshold is relative to the true DC steady state (L^T G^{-1} B),
    # not to the value at the end of the simulated window -- otherwise a
    # too-short horizon would silently rescale the threshold.
    final = system.dc_gain()[output_index, input_index]
    if final == 0.0:
        raise ValueError("zero steady-state response: threshold delay undefined")
    level = threshold * final
    normalized = waveform / final
    above = np.nonzero(normalized >= threshold)[0]
    if above.size == 0 or above[0] == 0:
        raise ValueError(
            "response does not cross the threshold inside the horizon; "
            "increase `horizon`"
        )
    i = above[0]
    t0, t1 = result.time[i - 1], result.time[i]
    y0, y1 = waveform[i - 1], waveform[i]
    return float(t0 + (level - y0) / (y1 - y0) * (t1 - t0))


def delay_sensitivity(
    parametric_model,
    metric: Callable = elmore_delay,
    point: Optional[Sequence[float]] = None,
    step: float = 1e-3,
    output_index: int = 0,
    input_index: int = 0,
) -> np.ndarray:
    """Per-parameter delay sensitivities ``d(metric)/dp_i`` at ``point``.

    ``parametric_model`` is anything with ``instantiate(p)`` (full
    :class:`~repro.circuits.variational.ParametricSystem` or reduced
    :class:`~repro.core.model.ParametricReducedModel`) -- running this
    on the reduced model is the intended cheap path.  Central
    differences with relative parameter step ``step``.
    """
    num_parameters = parametric_model.num_parameters
    base = np.zeros(num_parameters) if point is None else np.asarray(point, dtype=float)
    sensitivities = np.empty(num_parameters)
    for i in range(num_parameters):
        forward = base.copy()
        backward = base.copy()
        forward[i] += step
        backward[i] -= step
        d_plus = metric(
            parametric_model.instantiate(forward),
            output_index=output_index,
            input_index=input_index,
        )
        d_minus = metric(
            parametric_model.instantiate(backward),
            output_index=output_index,
            input_index=input_index,
        )
        sensitivities[i] = (d_plus - d_minus) / (2.0 * step)
    return sensitivities
