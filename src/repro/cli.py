"""Command-line interface: netlist in, macromodel diagnostics out.

Usage (also via ``python -m repro``):

```
python -m repro info   netlist.sp
python -m repro reduce netlist.sp --method lowrank --moments 4
python -m repro sweep  netlist.sp --fmin 1e7 --fmax 1e10 --points 30
python -m repro poles  netlist.sp --num 5
```

The CLI operates on plain (non-parametric) netlists -- the parametric
workflows need sensitivity data that has no portable file format, so
they stay API-only -- and is primarily a convenience for inspecting
circuits and validating reductions from the shell.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.passivity import passivity_report
from repro.baselines.prima import prima
from repro.baselines.rational_arnoldi import logspaced_shifts, rational_arnoldi
from repro.baselines.tbr import tbr
from repro.circuits.mna import assemble
from repro.circuits.parser import parse_netlist


def _load_system(path: str):
    with open(path) as handle:
        netlist = parse_netlist(handle.read(), title=path)
    return netlist, assemble(netlist)


def _cmd_info(args) -> int:
    netlist, system = _load_system(args.netlist)
    stats = netlist.stats()
    print(f"title:        {netlist.title}")
    for key in ("nodes", "states", "resistors", "capacitors", "inductors",
                "mutuals", "ports", "sources", "observations"):
        print(f"{key + ':':13s} {stats[key]}")
    print(f"inputs:       {', '.join(system.input_names)}")
    print(f"outputs:      {', '.join(system.output_names)}")
    margin = system.passivity_structure_margin()
    print(f"passivity-structure margin: {margin:.3e}")
    return 0


def _reduce_system(system, args):
    if args.method == "prima":
        return prima(system, args.moments, expansion_point=args.shift)[0]
    if args.method == "rational":
        shifts = logspaced_shifts(args.fmin, args.fmax, args.shifts)
        return rational_arnoldi(system, shifts, args.moments)[0]
    if args.method == "tbr":
        return tbr(system, args.order)[0]
    raise ValueError(f"unknown method {args.method!r}")


def _cmd_reduce(args) -> int:
    _, system = _load_system(args.netlist)
    reduced = _reduce_system(system, args)
    print(f"full order:    {system.order}")
    print(f"reduced order: {reduced.order}  (method: {args.method})")
    frequencies = np.logspace(np.log10(args.fmin), np.log10(args.fmax), args.points)
    full = system.frequency_response(frequencies)
    approx = reduced.frequency_response(frequencies)
    scale = np.abs(full).max()
    worst = np.abs(full - approx).max() / scale if scale else 0.0
    print(f"worst relative response error over "
          f"[{args.fmin:.3g}, {args.fmax:.3g}] Hz: {worst:.3e}")
    if system.is_symmetric_port_form():
        report = passivity_report(reduced, frequencies=frequencies)
        print(f"reduced model structurally passive: {report.is_structurally_passive}")
    return 0 if worst < args.tolerance else 2


def _cmd_sweep(args) -> int:
    _, system = _load_system(args.netlist)
    frequencies = np.logspace(np.log10(args.fmin), np.log10(args.fmax), args.points)
    response = system.frequency_response(frequencies)
    out_index = args.output
    in_index = args.input
    print("frequency_hz,magnitude,phase_deg")
    for i, f in enumerate(frequencies):
        h = response[i, out_index, in_index]
        print(f"{f:.6e},{abs(h):.6e},{np.degrees(np.angle(h)):.4f}")
    return 0


def _cmd_poles(args) -> int:
    _, system = _load_system(args.netlist)
    poles = system.poles(num=args.num)
    print("pole_real,pole_imag,frequency_hz")
    for pole in poles:
        print(f"{pole.real:.6e},{pole.imag:.6e},{abs(pole) / (2 * np.pi):.6e}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interconnect MOR toolkit (DATE 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="netlist statistics")
    info.add_argument("netlist")
    info.set_defaults(func=_cmd_info)

    reduce_cmd = commands.add_parser("reduce", help="reduce and validate")
    reduce_cmd.add_argument("netlist")
    reduce_cmd.add_argument("--method", choices=("prima", "rational", "tbr"),
                            default="prima")
    reduce_cmd.add_argument("--moments", type=int, default=8,
                            help="block moments (prima/rational)")
    reduce_cmd.add_argument("--order", type=int, default=10, help="TBR order")
    reduce_cmd.add_argument("--shift", type=float, default=0.0,
                            help="PRIMA expansion point (rad/s)")
    reduce_cmd.add_argument("--shifts", type=int, default=3,
                            help="number of rational-Arnoldi shifts")
    reduce_cmd.add_argument("--fmin", type=float, default=1e7)
    reduce_cmd.add_argument("--fmax", type=float, default=1e10)
    reduce_cmd.add_argument("--points", type=int, default=25)
    reduce_cmd.add_argument("--tolerance", type=float, default=1e-2,
                            help="exit nonzero if the error exceeds this")
    reduce_cmd.set_defaults(func=_cmd_reduce)

    sweep_cmd = commands.add_parser("sweep", help="frequency response CSV")
    sweep_cmd.add_argument("netlist")
    sweep_cmd.add_argument("--fmin", type=float, default=1e7)
    sweep_cmd.add_argument("--fmax", type=float, default=1e10)
    sweep_cmd.add_argument("--points", type=int, default=30)
    sweep_cmd.add_argument("--output", type=int, default=0)
    sweep_cmd.add_argument("--input", type=int, default=0)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    poles_cmd = commands.add_parser("poles", help="dominant poles CSV")
    poles_cmd.add_argument("netlist")
    poles_cmd.add_argument("--num", type=int, default=5)
    poles_cmd.set_defaults(func=_cmd_poles)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
