"""Command-line interface: netlist in, macromodel diagnostics out.

Usage (also via ``python -m repro``):

```
python -m repro info       netlist.sp
python -m repro reduce     netlist.sp --method lowrank --moments 4
python -m repro sweep      netlist.sp --fmin 1e7 --fmax 1e10 --points 30
python -m repro poles      netlist.sp --num 5
python -m repro montecarlo netlist.sp --instances 200 --jobs 4
python -m repro batch      netlist.sp --plan corners --points 30
python -m repro transient  netlist.sp --plan corners --waveform ramp --rise-time 2e-10
python -m repro batch      netlist.sp --chunk 8 --store run1 --shard 1/2
python -m repro batch      netlist.sp --chunk 8 --store run1 --resume
python -m repro batch      netlist.sp --chunk 8 --trace run1.trace --progress
python -m repro work batch netlist.sp --chunk 8 --store run1 --worker-id w1
python -m repro trace summarize run1.trace
python -m repro serve run1 --port 8787 --memory-budget 100000000 --warehouse wh
python -m repro submit http://127.0.0.1:8787 job.json --watch
python -m repro jobs http://127.0.0.1:8787
python -m repro query ingest wh run1
python -m repro query percentile wh --metric delay --q 99
python -m repro query outliers wh --metric delay -k 5
```

The ``info``/``reduce``/``sweep``/``poles`` commands operate on plain
(non-parametric) netlists.  ``montecarlo``, ``batch``, and
``transient`` attach random variational directions to the netlist (the
paper's Section 5.1/5.2 construction,
:func:`repro.circuits.generators.with_random_variations`) and drive
the :mod:`repro.runtime` serving layer through its declarative
``Study`` engine: the planner inspects the workload and routes to the
optimal kernel (batched, streamed, sparse shared-pattern), with a
manual chunk size (``--chunk N``), an automatic one derived from a
peak-memory bound (``--memory-budget BYTES``), and an optional
content-addressed model cache (``--cache DIR``).  All three study
commands are durable on request: ``--store DIR`` checkpoints every
chunk to a :class:`~repro.runtime.store.StudyStore`, ``--shard I/N``
(1-based) runs one slice of the chunk grid, and ``--resume`` reuses
and merges existing checkpoints -- bit-identically to a one-shot run.
``work {batch,transient,montecarlo}`` is the dynamic counterpart of
``--shard``: every worker process gets the identical study declaration
plus the same ``--store DIR`` and claims chunks through lease files
(:mod:`repro.runtime.scheduler`); dead workers' leases expire after
``--ttl`` and are stolen, and each surviving worker prints the merged
result once the store drains -- bit-identical to a one-shot run.
Store misuse (invalid shard spec, bad worker id or ttl/poll value,
missing/corrupt manifest, unwritable store directory) exits with
code 2 and a one-line diagnostic.
All three study commands are observable on request: ``--trace FILE``
appends a JSONL span trace (``repro-trace/v1``) of the run, and
``--progress`` prints a uniform chunk progress line to stderr (both
built on :mod:`repro.obs`; setting the ``REPRO_TRACE`` environment
variable traces any command process-wide).  ``trace summarize``
renders one or more trace files as a human report.
``montecarlo``
additionally parallelizes its full-model reference solves (``--jobs``:
a worker count, ``thread``, ``process``, or ``shared``) and routes
sparse full models through the shared-pattern runtime.  ``transient``
simulates the whole scenario ensemble through the batched time-domain
kernels and prints the waveform envelope plus a threshold-delay
summary.
``serve`` runs the :mod:`repro.serve` study service over a store;
``submit`` posts a JSON job document (the same declaration schema as
the study commands, fully defaulted) and prints the canonical result
bytes, and ``jobs`` lists a service's jobs.  An identical
re-submission -- even from a different client -- is served from the
content-addressed result index without recomputation.
``query`` is the columnar warehouse tier (:mod:`repro.warehouse`):
``query ingest`` converts a store's chunk checkpoints into a
partitioned dataset (idempotently -- re-ingest adds zero rows), and
``query studies`` / ``yield`` / ``percentile`` / ``outliers`` run
exact out-of-core aggregations over it (duckdb or polars when the
optional extras are installed, a streamed numpy engine always).
Warehouse misuse (missing optional dependency, unreadable dataset,
over-budget partition) exits 2 with a one-line diagnostic, like any
store error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.analysis.passivity import passivity_report
from repro.runtime.store import StoreError, parse_shard
from repro.baselines.prima import prima
from repro.baselines.rational_arnoldi import logspaced_shifts, rational_arnoldi
from repro.baselines.tbr import tbr
from repro.circuits.mna import assemble
from repro.circuits.parser import parse_netlist


def _load_system(path: str):
    with open(path) as handle:
        netlist = parse_netlist(handle.read(), title=path)
    return netlist, assemble(netlist)


def _cmd_info(args) -> int:
    netlist, system = _load_system(args.netlist)
    stats = netlist.stats()
    print(f"title:        {netlist.title}")
    for key in ("nodes", "states", "resistors", "capacitors", "inductors",
                "mutuals", "ports", "sources", "observations"):
        print(f"{key + ':':13s} {stats[key]}")
    print(f"inputs:       {', '.join(system.input_names)}")
    print(f"outputs:      {', '.join(system.output_names)}")
    margin = system.passivity_structure_margin()
    print(f"passivity-structure margin: {margin:.3e}")
    return 0


def _reduce_system(system, args):
    if args.method == "prima":
        return prima(system, args.moments, expansion_point=args.shift)[0]
    if args.method == "rational":
        shifts = logspaced_shifts(args.fmin, args.fmax, args.shifts)
        return rational_arnoldi(system, shifts, args.moments)[0]
    if args.method == "tbr":
        return tbr(system, args.order)[0]
    raise ValueError(f"unknown method {args.method!r}")


def _cmd_reduce(args) -> int:
    _, system = _load_system(args.netlist)
    reduced = _reduce_system(system, args)
    print(f"full order:    {system.order}")
    print(f"reduced order: {reduced.order}  (method: {args.method})")
    frequencies = np.logspace(np.log10(args.fmin), np.log10(args.fmax), args.points)
    full = system.frequency_response(frequencies)
    approx = reduced.frequency_response(frequencies)
    scale = np.abs(full).max()
    worst = np.abs(full - approx).max() / scale if scale else 0.0
    print(f"worst relative response error over "
          f"[{args.fmin:.3g}, {args.fmax:.3g}] Hz: {worst:.3e}")
    if system.is_symmetric_port_form():
        report = passivity_report(reduced, frequencies=frequencies)
        print(f"reduced model structurally passive: {report.is_structurally_passive}")
    return 0 if worst < args.tolerance else 2


def _cmd_sweep(args) -> int:
    _, system = _load_system(args.netlist)
    frequencies = np.logspace(np.log10(args.fmin), np.log10(args.fmax), args.points)
    response = system.frequency_response(frequencies)
    out_index = args.output
    in_index = args.input
    print("frequency_hz,magnitude,phase_deg")
    for i, f in enumerate(frequencies):
        h = response[i, out_index, in_index]
        print(f"{f:.6e},{abs(h):.6e},{np.degrees(np.angle(h)):.4f}")
    return 0


def _cmd_poles(args) -> int:
    _, system = _load_system(args.netlist)
    poles = system.poles(num=args.num)
    print("pole_real,pole_imag,frequency_hz")
    for pole in poles:
        print(f"{pole.real:.6e},{pole.imag:.6e},{abs(pole) / (2 * np.pi):.6e}")
    return 0


def _load_parametric(args):
    """Netlist -> ParametricSystem with random variational directions."""
    from repro.circuits.generators import with_random_variations

    with open(args.netlist) as handle:
        netlist = parse_netlist(handle.read(), title=args.netlist)
    return with_random_variations(
        netlist, args.parameters, seed=args.variation_seed, relative_spread=args.spread
    )


def _reduce_parametric(parametric, args):
    """Reduce with the low-rank flow, through the model cache if given."""
    from repro.core import LowRankReducer

    reducer = LowRankReducer(num_moments=args.moments, rank=args.rank)
    if args.cache:
        from repro.runtime import ModelCache

        cache = ModelCache(args.cache)
        key = cache.key(parametric, reducer)
        model = cache.load(key)
        status = "hit" if model is not None else "miss"
        if model is None:
            model = reducer.reduce(parametric)
            cache.store(key, model)
        print(f"# cache: {status} ({cache.path_for(key).name})")
        return model
    return reducer.reduce(parametric)


def _obs_sinks(args, label):
    """Realize ``--trace`` / ``--progress`` as ``Study.trace`` sinks.

    Paths stay paths (the engine opens and closes the JSONL sink per
    run, which keeps one file valid across montecarlo's back-to-back
    studies); ``--progress`` becomes a reporter writing to stderr so
    CSV output on stdout stays clean.
    """
    sinks = []
    if args.trace:
        sinks.append(args.trace)
    if args.progress:
        from repro.obs import ProgressReporter

        sinks.append(ProgressReporter(label=label))
    return sinks


def _print_montecarlo_study(args, parametric, model, study) -> int:
    """Report a finished Monte Carlo study; shared with ``work``."""
    print(f"full order:     {parametric.order}")
    print(f"reduced order:  {model.size}")
    print(f"parameters:     {parametric.num_parameters}")
    print(f"instances:      {study.num_instances}")
    print(f"pole compares:  {study.total_poles}")
    if study.verified is not None:
        print(f"screen tier:    {int(study.verified.sum())} of "
              f"{study.verified.size} instances re-verified in float64")
    print(f"max pole error: {study.max_error:.6e}")
    print(f"mean pole error:{study.pole_errors.mean():.6e}")
    counts, edges = study.histogram(bins=args.bins)
    print("bin_lo_pct,bin_hi_pct,count")
    for i, count in enumerate(counts):
        print(f"{edges[i]:.6e},{edges[i + 1]:.6e},{int(count)}")
    return 0 if study.max_error < args.tolerance else 2


def _cmd_montecarlo(args) -> int:
    from repro.analysis.montecarlo import monte_carlo_pole_study

    shard = _shard_arg(args)
    parametric = _load_parametric(args)
    model = _reduce_parametric(parametric, args)
    study = monte_carlo_pole_study(
        parametric,
        model,
        num_instances=args.instances,
        num_poles=args.poles,
        three_sigma=args.sigma,
        seed=args.seed,
        executor=args.jobs,
        store=args.store or None,
        shard=shard,
        resume=args.resume,
        chunk_size=args.chunk,
        trace=_obs_sinks(args, "montecarlo") or None,
        precision=args.precision,
    )
    banner = _store_banner(args)
    if banner:
        print(banner)
    return _print_montecarlo_study(args, parametric, model, study)


def _make_plan(args):
    from repro.serve.protocol import build_plan

    return build_plan(
        args.plan, instances=args.instances, sigma=args.sigma,
        seed=args.seed, magnitude=args.magnitude, points=args.grid_points,
    )


def _apply_chunking(study, args):
    """Wire ``--chunk`` / ``--memory-budget`` into a Study.

    ``--chunk`` is the manual override: when both are given the
    explicit chunk size wins and the budget is ignored.
    """
    if args.chunk is not None:
        return study.chunk(args.chunk)
    if args.memory_budget is not None:
        return study.memory_budget(args.memory_budget)
    return study


def _shard_arg(args):
    """Validated 0-based ``(index, of)`` from ``--shard``, or ``None``."""
    if (args.shard or args.resume) and not args.store:
        raise StoreError("--shard and --resume require --store DIR")
    return parse_shard(args.shard) if args.shard else None


def _apply_store(study, args):
    """Wire ``--store`` / ``--shard`` / ``--resume`` into a Study."""
    shard = _shard_arg(args)
    if args.store:
        study = study.store(args.store)
    if shard is not None:
        study = study.shard(*shard)
    if args.resume:
        study = study.resume()
    return study


def _apply_obs(study, args, label):
    """Wire ``--trace`` / ``--progress`` into a Study."""
    for sink in _obs_sinks(args, label):
        study = study.trace(sink)
    return study


def _store_banner(args) -> Optional[str]:
    """The ``# store:`` line a durable study command prints."""
    if not args.store:
        return None
    line = f"# store: {args.store}"
    if args.shard:
        line += f"  shard: {args.shard}"
    if args.resume:
        line += "  (resumed)"
    return line


def _build_batch_engine(args):
    """``(engine, model, plan, frequencies)`` for the batch workload.

    The engine carries the study declaration plus chunking and
    observability, but not yet the store wiring -- ``batch`` applies
    ``--store/--shard/--resume`` while ``work batch`` attaches the
    (required) shared store for the drain.  Splitting here keeps the
    declared workload -- and therefore the study manifest key -- one
    definition for both commands.
    """
    from repro.runtime import Study

    parametric = _load_parametric(args)
    model = _reduce_parametric(parametric, args)
    plan = _make_plan(args)
    num_outputs = model.nominal.num_outputs
    num_inputs = model.nominal.num_inputs
    if not 0 <= args.output < num_outputs:
        raise ValueError(f"--output {args.output} out of range (model has {num_outputs} outputs)")
    if not 0 <= args.input < num_inputs:
        raise ValueError(f"--input {args.input} out of range (model has {num_inputs} inputs)")
    frequencies = np.logspace(np.log10(args.fmin), np.log10(args.fmax), args.points)
    engine = _apply_obs(
        _apply_chunking(Study(model).scenarios(plan).sweep(frequencies), args),
        args,
        "batch",
    )
    return engine, model, plan, frequencies


def _print_batch_study(args, model, plan, frequencies, execution, study) -> int:
    """Envelope CSV + headers for a finished batch study."""
    low, mean, high = study.magnitude_envelope(
        output_index=args.output, input_index=args.input
    )
    print(f"# plan: {plan!r}")
    print(f"# route: {execution.route} [{execution.kernel}]  "
          f"peak: ~{execution.estimated_peak_bytes / 2**20:.1f} MiB")
    banner = _store_banner(args)
    if banner:
        print(banner)
    print(f"# instances: {study.num_samples}  reduced order: {model.size}  "
          f"chunks: {study.num_chunks}")
    print("frequency_hz,min_magnitude,mean_magnitude,max_magnitude")
    for i, f in enumerate(frequencies):
        print(f"{f:.6e},{low[i]:.6e},{mean[i]:.6e},{high[i]:.6e}")
    return 0


def _cmd_batch(args) -> int:
    engine, model, plan, frequencies = _build_batch_engine(args)
    engine = _apply_store(engine, args)
    execution = engine.plan()
    study = engine.run()
    return _print_batch_study(args, model, plan, frequencies, execution, study)


def _parse_pwl(text: str):
    """``t1:v1,t2:v2,...`` -> PWL breakpoint tuples."""
    points = []
    for chunk in text.split(","):
        try:
            t_str, v_str = chunk.split(":")
            points.append((float(t_str), float(v_str)))
        except ValueError:
            raise ValueError(
                f"bad PWL point {chunk!r}: expected time:value (e.g. 1e-10:0.5)"
            ) from None
    return tuple(points)


def _make_waveform(args):
    """Realize the ``--waveform`` options as an InputWaveform plan."""
    from repro.serve.protocol import build_waveform

    return build_waveform(
        args.waveform, amplitude=args.amplitude, rise_time=args.rise_time,
        frequency=args.frequency, points=_parse_pwl(args.pwl),
        input_index=args.input,
    )


def _build_transient_engine(args):
    """``(engine, model, plan, waveform)`` for the transient workload.

    Same store-free split as :func:`_build_batch_engine`: shared by
    ``transient`` (which wires ``--store/--shard/--resume``) and
    ``work transient`` (which attaches the shared drain store).
    """
    from repro.runtime import Study

    parametric = _load_parametric(args)
    model = _reduce_parametric(parametric, args)
    plan = _make_plan(args)
    if not 0 <= args.output < model.nominal.num_outputs:
        raise ValueError(
            f"--output {args.output} out of range (model has "
            f"{model.nominal.num_outputs} outputs)"
        )
    if not 0 <= args.input < model.nominal.num_inputs:
        raise ValueError(
            f"--input {args.input} out of range (model has "
            f"{model.nominal.num_inputs} inputs)"
        )
    if not 0.0 < args.threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    waveform = _make_waveform(args)
    engine = _apply_obs(
        _apply_chunking(
            Study(model)
            .scenarios(plan)
            .transient(
                waveform,
                t_final=args.t_final,
                num_steps=args.steps,
                method=args.method,
                delay_threshold=args.threshold,
                output_index=args.output,
                reference=args.delay_reference,
            ),
            args,
        ),
        args,
        "transient",
    )
    return engine, model, plan, waveform


def _print_transient_study(args, model, plan, waveform, execution, study) -> int:
    """Envelope CSV + delay summary for a finished transient study."""
    print(f"# plan: {plan!r}")
    print(f"# route: {execution.route} [{execution.kernel}]  "
          f"peak: ~{execution.estimated_peak_bytes / 2**20:.1f} MiB")
    banner = _store_banner(args)
    if banner:
        print(banner)
    print(f"# waveform: {waveform!r}")
    print(f"# instances: {study.num_samples}  reduced order: {model.size}  "
          f"steps: {args.steps}  method: {args.method}  "
          f"chunks: {study.num_chunks}")
    delays = study.delays
    crossed = delays[~np.isnan(delays)]
    label = f"# delay({args.threshold * 100:.0f}% of {args.delay_reference})"
    if crossed.size:
        print(f"{label}: "
              f"min={crossed.min():.6e}  mean={crossed.mean():.6e}  "
              f"max={crossed.max():.6e}  ({crossed.size}/{delays.size} crossed)")
    elif (args.delay_reference == "steady"
          and not study.steady_states[:, args.output].any()):
        print(f"{label}: undefined -- the stimulus settles to zero; "
              "use --delay-reference peak for pulse-like waveforms")
    else:
        print(f"{label}: no instance crossed inside the horizon")
    low, mean, high = study.output_envelope(output_index=args.output)
    print("time_s,min_output,mean_output,max_output")
    for j, t in enumerate(study.time):
        print(f"{t:.6e},{low[j]:.6e},{mean[j]:.6e},{high[j]:.6e}")
    return 0


def _cmd_transient(args) -> int:
    engine, model, plan, waveform = _build_transient_engine(args)
    engine = _apply_store(engine, args)
    execution = engine.plan()
    study = engine.run()
    return _print_transient_study(args, model, plan, waveform, execution, study)


def _work_options(args):
    """Validated ``(ttl, poll, worker, max_chunks)`` for a work command.

    All four arrive as raw strings so malformed values take the
    :class:`StoreError` exit-2 one-liner path (like ``--shard``), not
    an argparse usage dump or a traceback.
    """
    from repro.runtime import parse_worker_id
    from repro.runtime.store import parse_positive

    ttl = parse_positive(args.ttl, "--ttl")
    poll = parse_positive(args.poll, "--poll")
    worker = parse_worker_id(args.worker_id) if args.worker_id else None
    max_chunks = (
        parse_positive(args.max_chunks, "--max-chunks", kind=int)
        if getattr(args, "max_chunks", None) is not None
        else None
    )
    return ttl, poll, worker, max_chunks


#: Exit status for a worker that contributed chunks but left before the
#: study drained (``--max-chunks``).  Distinct from success (0) and the
#: declaration/store error codes (1/2) so orchestration scripts can
#: tell "done, result printed" from "partial shift, relaunch me".
EXIT_WORK_INCOMPLETE = 3


def _print_drain_report(engine, worker, drained: bool) -> None:
    """One ``# worker:`` line summarizing what this process drained."""
    report = engine.drain_report()
    print(f"# worker: {worker or 'auto'}  computed: {len(report.computed)} "
          f"chunk(s)  stolen: {len(report.stolen)}  waits: {report.waits}  "
          f"drained: {'yes' if drained else 'no'}")


def _cmd_work_batch(args) -> int:
    ttl, poll, worker, max_chunks = _work_options(args)
    engine, model, plan, frequencies = _build_batch_engine(args)
    engine = engine.store(args.store)
    execution = engine.plan()
    study = engine.work(ttl=ttl, poll=poll, worker=worker, max_chunks=max_chunks)
    _print_drain_report(engine, worker, drained=study is not None)
    if study is None:
        print("# stopped at --max-chunks before the study drained; "
              "contributed and exited -- no merged result")
        return EXIT_WORK_INCOMPLETE
    return _print_batch_study(args, model, plan, frequencies, execution, study)


def _cmd_work_transient(args) -> int:
    ttl, poll, worker, max_chunks = _work_options(args)
    engine, model, plan, waveform = _build_transient_engine(args)
    engine = engine.store(args.store)
    execution = engine.plan()
    study = engine.work(ttl=ttl, poll=poll, worker=worker, max_chunks=max_chunks)
    _print_drain_report(engine, worker, drained=study is not None)
    if study is None:
        print("# stopped at --max-chunks before the study drained; "
              "contributed and exited -- no merged result")
        return EXIT_WORK_INCOMPLETE
    return _print_transient_study(args, model, plan, waveform, execution, study)


def _cmd_work_montecarlo(args) -> int:
    from repro.analysis.montecarlo import monte_carlo_pole_study

    ttl, poll, worker, _ = _work_options(args)
    parametric = _load_parametric(args)
    model = _reduce_parametric(parametric, args)
    study = monte_carlo_pole_study(
        parametric,
        model,
        num_instances=args.instances,
        num_poles=args.poles,
        three_sigma=args.sigma,
        seed=args.seed,
        executor=args.jobs,
        store=args.store,
        chunk_size=args.chunk,
        trace=_obs_sinks(args, "montecarlo") or None,
        work=True,
        ttl=ttl,
        poll=poll,
        worker=worker,
        precision=args.precision,
    )
    print(f"# store: {args.store}  worker: {worker or 'auto'}")
    return _print_montecarlo_study(args, parametric, model, study)


def _cmd_trace_summarize(args) -> int:
    from repro.obs import read_trace, summarize_trace

    records = []
    for path in args.trace_file:
        records.extend(read_trace(path))
    print(summarize_trace(records))
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime.cache import ModelCache
    from repro.serve.server import run as serve_run

    cache = ModelCache(args.cache) if args.cache else None
    serve_run(
        args.store, host=args.host, port=args.port,
        memory_budget=args.memory_budget, pool_size=args.pool_size,
        model_cache=cache, ttl=args.ttl, poll=args.poll,
        warehouse=args.warehouse,
    )
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.serve.client import ServeClient, ServeClientError

    if args.jobfile == "-":
        payload = sys.stdin.read()
    else:
        with open(args.jobfile) as handle:
            payload = handle.read()
    client = ServeClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(json.loads(payload))
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.status == 413 and "peak_bytes" in exc.body:
            print(f"# planned peak: {exc.body['peak_bytes']} bytes  "
                  f"budget: {exc.body['memory_budget']} bytes",
                  file=sys.stderr)
        return 1
    print(f"# job: {job['id']}  state: {job['state']}  "
          f"cached: {'yes' if job['cached'] else 'no'}", file=sys.stderr)
    if args.no_wait:
        print(json.dumps(job, sort_keys=True, indent=1))
        return 0
    if args.watch and not job["cached"]:
        for event in client.events(job["id"]):
            print(json.dumps(event, sort_keys=True), file=sys.stderr)
    final = client.wait(job["id"], timeout=args.timeout)
    if final["state"] != "done":
        print(f"error: job {job['id']} {final['state']}: {final['error']}",
              file=sys.stderr)
        return 1
    sys.stdout.write(client.result_bytes(job["id"]).decode())
    sys.stdout.write("\n")
    return 0


def _cmd_jobs(args) -> int:
    import json

    from repro.serve.client import ServeClient, ServeClientError

    client = ServeClient(args.url)
    try:
        if args.job:
            print(json.dumps(client.job(args.job), sort_keys=True, indent=1))
        else:
            jobs = client.jobs()
            for job in jobs:
                cached = " (cached)" if job["cached"] else ""
                print(f"{job['id']}  {job['state']}{cached}")
            if not jobs:
                print("# no jobs")
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _query_engine(args):
    from repro.warehouse import QueryEngine

    return QueryEngine(
        args.warehouse, engine=args.engine,
        memory_budget=args.memory_budget,
    )


def _cmd_query_ingest(args) -> int:
    from repro.warehouse import Warehouse

    warehouse = Warehouse(args.warehouse, backend=args.backend)
    report = warehouse.ingest_store(args.store, key=args.key)
    print(f"# warehouse: {args.warehouse}  backend: {warehouse.backend.name}")
    print(f"studies: {', '.join(report.studies) if report.studies else '-'}")
    print(f"chunks:  {report.chunks} ingested, {report.skipped} skipped "
          f"(already warehoused)")
    for name in sorted(report.rows):
        print(f"rows[{name}]: {report.rows[name]}")
    print(f"bytes:   {report.bytes_written}")
    return 0


def _cmd_query_studies(args) -> int:
    studies = _query_engine(args).studies()
    for record in studies:
        layout = record.get("layout") or {}
        print(f"{record['key16']}  workload: {record.get('workload')}  "
              f"samples: {layout.get('num_samples')}  "
              f"chunks: {layout.get('num_chunks')}")
    if not studies:
        print("# no studies")
    return 0


def _cmd_query_yield(args) -> int:
    import json

    result = _query_engine(args).yield_fraction(
        args.metric, args.limit, study=args.study, table=args.table
    )
    print(json.dumps(result, sort_keys=True, indent=1))
    return 0


def _cmd_query_percentile(args) -> int:
    import json

    result = _query_engine(args).percentile(
        args.metric, args.q, study=args.study, table=args.table
    )
    print(json.dumps(result, sort_keys=True, indent=1))
    return 0


def _cmd_query_outliers(args) -> int:
    import json

    rows = _query_engine(args).outliers(
        args.metric, k=args.k, study=args.study,
        largest=not args.smallest, table=args.table,
    )
    print(json.dumps(rows, sort_keys=True, indent=1))
    return 0


def _executor_spec(value: str):
    """argparse type for ``--jobs``: worker count or backend name."""
    return int(value) if value.isdigit() else value


def _add_plan_arguments(subparser) -> None:
    """Shared scenario-plan options for the batched study commands."""
    subparser.add_argument("--plan", choices=("montecarlo", "corners", "grid"),
                           default="montecarlo")
    subparser.add_argument("--instances", type=int, default=100,
                           help="Monte Carlo plan instance count")
    subparser.add_argument("--magnitude", type=float, default=0.3,
                           help="corner/grid parameter excursion")
    subparser.add_argument("--grid-points", type=int, default=3,
                           help="grid plan points per axis")
    subparser.add_argument("--sigma", type=float, default=0.3)
    subparser.add_argument("--seed", type=int, default=0)
    subparser.add_argument("--chunk", type=int, default=None,
                           help="streaming chunk size (instances per batch; "
                                "bounds peak memory, default: one chunk; "
                                "overrides --memory-budget)")
    subparser.add_argument("--memory-budget", type=int, default=None,
                           help="peak-memory bound in bytes; the chunk size "
                                "is derived from the documented per-chunk "
                                "estimates (errors out with the estimate when "
                                "one instance cannot fit)")


def _add_store_arguments(subparser) -> None:
    """Durable-study options shared by montecarlo/batch/transient."""
    subparser.add_argument("--store", default=None, metavar="DIR",
                           help="durable study store: every chunk is "
                                "checkpointed to DIR (npz shards + a JSON "
                                "manifest keyed by content fingerprints)")
    subparser.add_argument("--shard", default=None, metavar="I/N",
                           help="run shard I of N (1-based) of the chunk "
                                "grid; shards share --store and a final "
                                "--resume run merges them")
    subparser.add_argument("--resume", action="store_true",
                           help="require and reuse checkpoints from --store "
                                "(skips completed chunks bit-identically; "
                                "errors when there is nothing to resume)")


def _add_obs_arguments(subparser) -> None:
    """Observability options shared by montecarlo/batch/transient."""
    subparser.add_argument("--trace", default=None, metavar="FILE",
                           help="append a JSONL span trace (repro-trace/v1) "
                                "of the run to FILE (summarize with "
                                "'repro trace summarize FILE')")
    subparser.add_argument("--progress", action="store_true",
                           help="print a chunk progress line to stderr "
                                "(chunks done/total, instances/s)")


def _add_parametric_arguments(subparser) -> None:
    """Shared options for commands that build a parametric workload."""
    subparser.add_argument("netlist")
    subparser.add_argument("--parameters", type=int, default=2,
                           help="number of random variational sources")
    subparser.add_argument("--spread", type=float, default=0.5,
                           help="per-element variation spread")
    subparser.add_argument("--variation-seed", type=int, default=0,
                           help="seed for the variational directions")
    subparser.add_argument("--moments", type=int, default=4,
                           help="low-rank reduction moment order")
    subparser.add_argument("--rank", type=int, default=1,
                           help="low-rank reduction rank")
    subparser.add_argument("--cache", default=None,
                           help="content-addressed macromodel cache directory")


def _add_montecarlo_arguments(subparser) -> None:
    """The montecarlo study declaration (shared with ``work``)."""
    _add_parametric_arguments(subparser)
    _add_obs_arguments(subparser)
    subparser.add_argument("--chunk", type=int, default=None,
                           help="checkpoint unit for --store: instances per "
                                "persisted pole-study chunk")
    subparser.add_argument("--instances", type=int, default=200)
    subparser.add_argument("--poles", type=int, default=5,
                           help="dominant poles compared per instance")
    subparser.add_argument("--sigma", type=float, default=0.3,
                           help="3-sigma range of the parameter distribution")
    subparser.add_argument("--seed", type=int, default=0, help="sampling seed")
    subparser.add_argument("--bins", type=int, default=10, help="histogram bins")
    subparser.add_argument("--jobs", type=_executor_spec, default=None,
                           help="full-solve backend: a worker count, 'serial', "
                                "'thread', 'process', or 'shared' "
                                "(shared-memory sample channel)")
    subparser.add_argument("--tolerance", type=float, default=1e-2,
                           help="exit nonzero if the worst pole error exceeds this")
    subparser.add_argument("--precision", choices=("full", "screen"),
                           default="full",
                           help="numeric tier of the reduced-model solves: "
                                "'screen' runs float32 and re-verifies only "
                                "flagged instances in float64")


def _add_batch_arguments(subparser) -> None:
    """The batch study declaration (shared with ``work``)."""
    _add_parametric_arguments(subparser)
    _add_plan_arguments(subparser)
    _add_obs_arguments(subparser)
    subparser.add_argument("--fmin", type=float, default=1e7)
    subparser.add_argument("--fmax", type=float, default=1e10)
    subparser.add_argument("--points", type=int, default=30)
    subparser.add_argument("--output", type=int, default=0)
    subparser.add_argument("--input", type=int, default=0)


def _add_transient_arguments(subparser) -> None:
    """The transient study declaration (shared with ``work``)."""
    _add_parametric_arguments(subparser)
    _add_plan_arguments(subparser)
    _add_obs_arguments(subparser)
    subparser.add_argument("--waveform", choices=("step", "ramp", "pwl", "sine"),
                           default="step", help="input stimulus plan")
    subparser.add_argument("--amplitude", type=float, default=1.0,
                           help="stimulus amplitude")
    subparser.add_argument("--rise-time", type=float, default=1e-10,
                           help="ramp waveform rise time (seconds)")
    subparser.add_argument("--frequency", type=float, default=1e9,
                           help="sine waveform frequency (Hz)")
    subparser.add_argument("--pwl", default="0:0,1e-9:1",
                           help="PWL breakpoints as t1:v1,t2:v2,...")
    subparser.add_argument("--t-final", type=float, default=None,
                           help="horizon (default: 8 nominal time constants)")
    subparser.add_argument("--steps", type=int, default=200,
                           help="number of timesteps")
    subparser.add_argument("--method",
                           choices=("trapezoidal", "backward_euler"),
                           default="trapezoidal")
    subparser.add_argument("--threshold", type=float, default=0.5,
                           help="delay threshold (fraction of the reference level)")
    subparser.add_argument("--delay-reference", choices=("steady", "peak"),
                           default="steady",
                           help="100%% level: DC steady state (settling "
                                "stimuli) or per-instance peak (pulses)")
    subparser.add_argument("--output", type=int, default=0)
    subparser.add_argument("--input", type=int, default=0)


def _add_work_arguments(subparser, max_chunks: bool = True) -> None:
    """Lease-scheduler options for the ``work`` subcommands.

    Numeric values stay strings here; the handlers validate them with
    :func:`~repro.runtime.store.parse_positive` so misuse exits 2 with
    a one-line diagnostic.  ``--shard``/``--resume`` do not exist in
    work mode (chunks are claimed dynamically) but downstream helpers
    read them, so they are pinned to their inert defaults.
    """
    subparser.add_argument("--store", required=True, metavar="DIR",
                           help="shared study store to drain; every worker "
                                "must be given the same declaration and DIR")
    subparser.add_argument("--ttl", default="30", metavar="SECONDS",
                           help="lease time-to-live: an untouched claim older "
                                "than this is presumed dead and stolen "
                                "(heartbeats refresh it at TTL/4)")
    subparser.add_argument("--poll", default="0.2", metavar="SECONDS",
                           help="idle re-scan interval while other workers "
                                "hold the remaining chunks")
    subparser.add_argument("--worker-id", default=None, metavar="ID",
                           help="stable worker name for manifests and chunk "
                                "files (default: host-pid-random)")
    if max_chunks:
        subparser.add_argument("--max-chunks", default=None, metavar="N",
                               help="exit after claiming N chunks, leaving "
                                    "the rest to other workers (no merged "
                                    "result unless the store drained)")
    subparser.set_defaults(shard=None, resume=False)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interconnect MOR toolkit (DATE 2005 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="netlist statistics")
    info.add_argument("netlist")
    info.set_defaults(func=_cmd_info)

    reduce_cmd = commands.add_parser("reduce", help="reduce and validate")
    reduce_cmd.add_argument("netlist")
    reduce_cmd.add_argument("--method", choices=("prima", "rational", "tbr"),
                            default="prima")
    reduce_cmd.add_argument("--moments", type=int, default=8,
                            help="block moments (prima/rational)")
    reduce_cmd.add_argument("--order", type=int, default=10, help="TBR order")
    reduce_cmd.add_argument("--shift", type=float, default=0.0,
                            help="PRIMA expansion point (rad/s)")
    reduce_cmd.add_argument("--shifts", type=int, default=3,
                            help="number of rational-Arnoldi shifts")
    reduce_cmd.add_argument("--fmin", type=float, default=1e7)
    reduce_cmd.add_argument("--fmax", type=float, default=1e10)
    reduce_cmd.add_argument("--points", type=int, default=25)
    reduce_cmd.add_argument("--tolerance", type=float, default=1e-2,
                            help="exit nonzero if the error exceeds this")
    reduce_cmd.set_defaults(func=_cmd_reduce)

    sweep_cmd = commands.add_parser("sweep", help="frequency response CSV")
    sweep_cmd.add_argument("netlist")
    sweep_cmd.add_argument("--fmin", type=float, default=1e7)
    sweep_cmd.add_argument("--fmax", type=float, default=1e10)
    sweep_cmd.add_argument("--points", type=int, default=30)
    sweep_cmd.add_argument("--output", type=int, default=0)
    sweep_cmd.add_argument("--input", type=int, default=0)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    poles_cmd = commands.add_parser("poles", help="dominant poles CSV")
    poles_cmd.add_argument("netlist")
    poles_cmd.add_argument("--num", type=int, default=5)
    poles_cmd.set_defaults(func=_cmd_poles)

    mc_cmd = commands.add_parser(
        "montecarlo", help="Monte Carlo pole-accuracy study (batched runtime)"
    )
    _add_montecarlo_arguments(mc_cmd)
    _add_store_arguments(mc_cmd)
    mc_cmd.set_defaults(func=_cmd_montecarlo)

    batch_cmd = commands.add_parser(
        "batch", help="batched scenario frequency-envelope CSV"
    )
    _add_batch_arguments(batch_cmd)
    _add_store_arguments(batch_cmd)
    batch_cmd.set_defaults(func=_cmd_batch)

    transient_cmd = commands.add_parser(
        "transient", help="batched time-domain scenario-envelope CSV"
    )
    _add_transient_arguments(transient_cmd)
    _add_store_arguments(transient_cmd)
    transient_cmd.set_defaults(func=_cmd_transient)

    work_cmd = commands.add_parser(
        "work",
        help="lease-based worker: cooperatively drain a shared --store",
        description="Run one work-stealing worker for a study. Every "
                    "worker gets the identical study declaration plus the "
                    "same --store DIR; chunks are claimed through lease "
                    "files, dead workers' leases expire and are stolen, "
                    "and each worker prints the merged result once the "
                    "store drains (bit-identical to a one-shot run).",
    )
    work_actions = work_cmd.add_subparsers(dest="work_command", required=True)

    work_batch = work_actions.add_parser(
        "batch", help="drain a batch frequency-envelope study"
    )
    _add_batch_arguments(work_batch)
    _add_work_arguments(work_batch)
    work_batch.set_defaults(func=_cmd_work_batch)

    work_transient = work_actions.add_parser(
        "transient", help="drain a transient scenario-envelope study"
    )
    _add_transient_arguments(work_transient)
    _add_work_arguments(work_transient)
    work_transient.set_defaults(func=_cmd_work_transient)

    work_mc = work_actions.add_parser(
        "montecarlo", help="drain a Monte Carlo pole-accuracy sign-off"
    )
    _add_montecarlo_arguments(work_mc)
    _add_work_arguments(work_mc, max_chunks=False)
    work_mc.set_defaults(func=_cmd_work_montecarlo)

    serve_cmd = commands.add_parser(
        "serve",
        help="run the async study service (HTTP job queue over a store)",
        description="Serve studies over HTTP: POST job documents to "
                    "/jobs, stream NDJSON progress from /jobs/{id}/events, "
                    "fetch canonical result bytes from /jobs/{id}/result. "
                    "Jobs are admitted against --memory-budget using the "
                    "plan's peak-bytes estimate and content-addressed by "
                    "study fingerprint: an identical re-submission is "
                    "served from the store without recomputation.",
    )
    serve_cmd.add_argument("store", metavar="DIR",
                           help="study store directory (checkpoints, "
                                "manifests, and the result index)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8787,
                           help="listen port (0 picks an ephemeral port)")
    serve_cmd.add_argument("--memory-budget", type=int, default=None,
                           help="admission bound in bytes: jobs whose "
                                "planned peak exceeds this are rejected "
                                "with the estimate in the error body")
    serve_cmd.add_argument("--pool-size", type=int, default=2,
                           help="worker threads draining the job queue")
    serve_cmd.add_argument("--cache", default=None, metavar="DIR",
                           help="content-addressed macromodel cache "
                                "shared across submissions")
    serve_cmd.add_argument("--ttl", type=float, default=30.0,
                           help="chunk lease time-to-live for multi-worker "
                                "jobs (seconds)")
    serve_cmd.add_argument("--poll", type=float, default=0.05,
                           help="lease re-scan interval (seconds)")
    serve_cmd.add_argument("--warehouse", default=None, metavar="DIR",
                           help="columnar warehouse: every completed job's "
                                "chunk checkpoints are ingested into DIR "
                                "(idempotent; query with 'repro query')")
    serve_cmd.set_defaults(func=_cmd_serve)

    submit_cmd = commands.add_parser(
        "submit", help="submit a job document to a study service"
    )
    submit_cmd.add_argument("url", help="service base URL, e.g. "
                                        "http://127.0.0.1:8787")
    submit_cmd.add_argument("jobfile",
                            help="JSON job document ('-' reads stdin)")
    submit_cmd.add_argument("--watch", action="store_true",
                            help="stream NDJSON progress events to stderr "
                                 "while the job runs")
    submit_cmd.add_argument("--no-wait", action="store_true",
                            help="print the job status document and exit "
                                 "without waiting for the result")
    submit_cmd.add_argument("--timeout", type=float, default=600.0,
                            help="seconds to wait for completion")
    submit_cmd.set_defaults(func=_cmd_submit)

    jobs_cmd = commands.add_parser(
        "jobs", help="list a study service's jobs (or one job's status)"
    )
    jobs_cmd.add_argument("url", help="service base URL")
    jobs_cmd.add_argument("--job", default=None, metavar="ID",
                          help="print one job's full status document")
    jobs_cmd.set_defaults(func=_cmd_jobs)

    query_cmd = commands.add_parser(
        "query",
        help="columnar warehouse: ingest checkpoints, aggregate out-of-core",
        description="Ingest StudyStore chunk checkpoints into a "
                    "partitioned columnar dataset and run exact "
                    "aggregations over it without loading whole studies "
                    "into RAM. Ingest is idempotent (re-ingest adds zero "
                    "rows) and every row carries provenance columns "
                    "(chunk SHA-256, worker, computed/resumed/stolen "
                    "source) verifiable against the store manifests. "
                    "Parquet + duckdb/polars are optional extras; without "
                    "them a native .npz backend and a streamed numpy "
                    "engine keep everything working.",
    )
    query_actions = query_cmd.add_subparsers(dest="query_command",
                                             required=True)

    def _add_query_common(sub, metric: bool) -> None:
        sub.add_argument("warehouse", metavar="DIR",
                         help="warehouse dataset directory")
        sub.add_argument("--engine",
                         choices=("auto", "stream", "duckdb", "polars"),
                         default="auto",
                         help="aggregation engine (auto prefers duckdb, "
                              "then polars, then the streamed numpy "
                              "engine)")
        sub.add_argument("--memory-budget", type=int, default=None,
                         help="bound in bytes on the column bytes "
                              "materialized from any single partition "
                              "file (stream engine)")
        sub.add_argument("--study", default=None, metavar="KEY16",
                         help="restrict to one study (key16 prefix)")
        if metric:
            sub.add_argument("--metric", required=True,
                             help="metric column, e.g. delay, slew, "
                                  "num_poles, p_<name>")
            sub.add_argument("--table", default="instances",
                             help="table to aggregate (default: instances)")

    query_ingest = query_actions.add_parser(
        "ingest", help="convert a store's checkpoints into the dataset"
    )
    query_ingest.add_argument("warehouse", metavar="DIR",
                              help="warehouse dataset directory")
    query_ingest.add_argument("store", metavar="STORE",
                              help="study store to ingest from")
    query_ingest.add_argument("--key", default=None,
                              help="one study key (full or prefix; "
                                   "default: every study in the store)")
    query_ingest.add_argument("--backend",
                              choices=("auto", "parquet", "native"),
                              default="auto",
                              help="table format (auto: parquet when "
                                   "pyarrow is installed, else native "
                                   ".npz)")
    query_ingest.set_defaults(func=_cmd_query_ingest)

    query_studies = query_actions.add_parser(
        "studies", help="list the dataset's studies"
    )
    _add_query_common(query_studies, metric=False)
    query_studies.set_defaults(func=_cmd_query_studies)

    query_yield = query_actions.add_parser(
        "yield", help="fraction of instances passing metric <= limit"
    )
    _add_query_common(query_yield, metric=True)
    query_yield.add_argument("--limit", type=float, required=True,
                             help="pass/fail limit (NaN metrics fail)")
    query_yield.set_defaults(func=_cmd_query_yield)

    query_percentile = query_actions.add_parser(
        "percentile", help="exact percentile of a metric column"
    )
    _add_query_common(query_percentile, metric=True)
    query_percentile.add_argument("--q", type=float, default=99.0,
                                  help="percentile in [0, 100]")
    query_percentile.set_defaults(func=_cmd_query_percentile)

    query_outliers = query_actions.add_parser(
        "outliers", help="most extreme instances with full provenance"
    )
    _add_query_common(query_outliers, metric=True)
    query_outliers.add_argument("-k", type=int, default=10,
                                help="how many rows")
    query_outliers.add_argument("--smallest", action="store_true",
                                help="rank smallest-first instead of "
                                     "largest-first")
    query_outliers.set_defaults(func=_cmd_query_outliers)

    trace_cmd = commands.add_parser(
        "trace", help="inspect JSONL trace files (repro-trace/v1)"
    )
    trace_actions = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize_cmd = trace_actions.add_parser(
        "summarize",
        help="human report: phase time tree, solver tiers, throughput",
    )
    summarize_cmd.add_argument("trace_file", nargs="+",
                               help="trace file(s); several shards' files "
                                    "are merged into one report")
    summarize_cmd.set_defaults(func=_cmd_trace_summarize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.obs import configure_from_env, remove_sink

    parser = build_parser()
    args = parser.parse_args(argv)
    env_sink = configure_from_env()
    try:
        return args.func(args)
    except StoreError as exc:
        # Store misuse (bad shard spec, nothing to resume, corrupt
        # manifest, unwritable directory): exit 2, one line, no trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if env_sink is not None:
            remove_sink(env_sink)
            env_sink.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
