"""Netlist container and programmatic builder API.

A :class:`Netlist` is an ordered collection of circuit elements plus
the port/observation declarations that define the system's inputs and
outputs.  It enforces name uniqueness and referential integrity
(mutual inductances must reference existing inductors) and provides
convenience constructors so that circuit generators read naturally:

>>> net = Netlist("divider")
>>> net.resistor("R1", "in", "mid", 1e3)
>>> net.resistor("R2", "mid", "0", 1e3)
>>> net.capacitor("C1", "mid", "0", 1e-12)
>>> net.current_port("P1", "in")
>>> net.node_count()
2
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.circuits.elements import (
    Capacitor,
    CurrentPort,
    GROUND_NAMES,
    Inductor,
    MutualInductance,
    Observation,
    Resistor,
    VoltageSource,
    is_ground,
)


def _canonical(node: str) -> str:
    """Normalize node names; all ground aliases collapse to ``"0"``."""
    node = str(node)
    return "0" if node in GROUND_NAMES else node


class Netlist:
    """Ordered, validated collection of elements, ports and outputs."""

    def __init__(self, title: str = "untitled"):
        self.title = title
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.inductors: List[Inductor] = []
        self.mutuals: List[MutualInductance] = []
        self.current_ports: List[CurrentPort] = []
        self.voltage_sources: List[VoltageSource] = []
        self.observations: List[Observation] = []
        self._names: Dict[str, str] = {}
        self._inductor_names: Dict[str, Inductor] = {}

    # -- construction -------------------------------------------------

    def _register(self, name: str, kind: str) -> None:
        if name in self._names:
            raise ValueError(
                f"duplicate element name {name!r} (already a {self._names[name]})"
            )
        self._names[name] = kind

    def resistor(self, name: str, node_a: str, node_b: str, value: float) -> Resistor:
        """Add a resistor and return it."""
        element = Resistor(name, _canonical(node_a), _canonical(node_b), float(value))
        self._register(name, "resistor")
        self.resistors.append(element)
        return element

    def capacitor(self, name: str, node_a: str, node_b: str, value: float) -> Capacitor:
        """Add a capacitor and return it."""
        element = Capacitor(name, _canonical(node_a), _canonical(node_b), float(value))
        self._register(name, "capacitor")
        self.capacitors.append(element)
        return element

    def inductor(self, name: str, node_a: str, node_b: str, value: float) -> Inductor:
        """Add an inductor and return it."""
        element = Inductor(name, _canonical(node_a), _canonical(node_b), float(value))
        self._register(name, "inductor")
        self.inductors.append(element)
        self._inductor_names[name] = element
        return element

    def mutual(self, name: str, inductor_a: str, inductor_b: str, coupling: float) -> MutualInductance:
        """Add a mutual-inductance coupling between two existing inductors."""
        if inductor_a not in self._inductor_names:
            raise ValueError(f"mutual {name}: unknown inductor {inductor_a!r}")
        if inductor_b not in self._inductor_names:
            raise ValueError(f"mutual {name}: unknown inductor {inductor_b!r}")
        element = MutualInductance(name, inductor_a, inductor_b, float(coupling))
        self._register(name, "mutual")
        self.mutuals.append(element)
        return element

    def current_port(self, name: str, node: str) -> CurrentPort:
        """Declare a current-driven, voltage-observed external port."""
        element = CurrentPort(name, _canonical(node))
        self._register(name, "port")
        self.current_ports.append(element)
        return element

    def voltage_source(self, name: str, node_plus: str, node_minus: str = "0") -> VoltageSource:
        """Declare a voltage-source input between two nodes."""
        element = VoltageSource(name, _canonical(node_plus), _canonical(node_minus))
        self._register(name, "source")
        self.voltage_sources.append(element)
        return element

    def observe(self, name: str, node: str) -> Observation:
        """Declare a named voltage output at ``node``."""
        element = Observation(name, _canonical(node))
        self._register(name, "observation")
        self.observations.append(element)
        return element

    # -- introspection ------------------------------------------------

    def elements(self) -> Iterator:
        """Iterate over all passive elements (R, C, L, K) in order."""
        yield from self.resistors
        yield from self.capacitors
        yield from self.inductors
        yield from self.mutuals

    def nodes(self) -> List[str]:
        """All non-ground node names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for element in self.elements():
            if isinstance(element, MutualInductance):
                continue
            for node in (element.node_a, element.node_b):
                if not is_ground(node) and node not in seen:
                    seen[node] = None
        for port in self.current_ports:
            if port.node not in seen:
                seen[port.node] = None
        for source in self.voltage_sources:
            for node in (source.node_plus, source.node_minus):
                if not is_ground(node) and node not in seen:
                    seen[node] = None
        for obs in self.observations:
            if obs.node not in seen:
                seen[obs.node] = None
        return list(seen)

    def node_count(self) -> int:
        """Number of non-ground nodes."""
        return len(self.nodes())

    def state_size(self) -> int:
        """Size of the MNA state vector (nodes + L and V branch currents)."""
        return self.node_count() + len(self.inductors) + len(self.voltage_sources)

    def input_count(self) -> int:
        """Number of inputs (current ports + voltage sources)."""
        return len(self.current_ports) + len(self.voltage_sources)

    def output_count(self) -> int:
        """Number of outputs (current ports + explicit observations)."""
        return len(self.current_ports) + len(self.observations)

    def find_inductor(self, name: str) -> Optional[Inductor]:
        """Look up an inductor by name (``None`` if absent)."""
        return self._inductor_names.get(name)

    def stats(self) -> Dict[str, int]:
        """Element/unknown counts, for reports and sanity checks."""
        return {
            "nodes": self.node_count(),
            "states": self.state_size(),
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "inductors": len(self.inductors),
            "mutuals": len(self.mutuals),
            "ports": len(self.current_ports),
            "sources": len(self.voltage_sources),
            "observations": len(self.observations),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Netlist({self.title!r}, nodes={s['nodes']}, states={s['states']}, "
            f"R={s['resistors']}, C={s['capacitors']}, L={s['inductors']}, "
            f"ports={s['ports']})"
        )
