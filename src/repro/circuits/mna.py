"""MNA (modified nodal analysis) stamping.

Assembles the sparse system matrices of paper eq. (1),

``C x' = -G x + B u,    y = L^T x``,

from a :class:`repro.circuits.netlist.Netlist`.  The state vector is

``x = [node voltages..., inductor currents..., source currents...]``.

Stamps are chosen so the assembled matrices have the passivity
structure PRIMA relies on:

- resistors stamp a symmetric PSD block into ``G``;
- capacitors stamp a symmetric PSD block into ``C``;
- inductor branch rows make the non-symmetric part of ``G`` exactly
  skew (``G + G^T`` is PSD) and put the (PSD) branch inductance matrix
  on the diagonal of ``C``;
- current ports produce ``B = L`` columns with a single ``+1`` at the
  port node.

Voltage-source inputs (if any) use the standard MNA source stamps; they
give ``B != L`` and are intended for transfer-function studies rather
than passive macromodeling.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.circuits.elements import is_ground
from repro.circuits.netlist import Netlist


class MNAError(ValueError):
    """Raised when a netlist cannot be assembled into a valid MNA system."""


class MNAIndex:
    """Mapping from netlist entities to MNA state/input/output indices."""

    def __init__(self, netlist: Netlist):
        self.node_index: Dict[str, int] = {name: i for i, name in enumerate(netlist.nodes())}
        n_nodes = len(self.node_index)
        self.inductor_index: Dict[str, int] = {
            ind.name: n_nodes + j for j, ind in enumerate(netlist.inductors)
        }
        n_l = len(self.inductor_index)
        self.source_index: Dict[str, int] = {
            src.name: n_nodes + n_l + j for j, src in enumerate(netlist.voltage_sources)
        }
        self.n_states = n_nodes + n_l + len(self.source_index)
        self.input_names: List[str] = [p.name for p in netlist.current_ports] + [
            s.name for s in netlist.voltage_sources
        ]
        self.output_names: List[str] = [p.name for p in netlist.current_ports] + [
            o.name for o in netlist.observations
        ]

    def node(self, name: str) -> int:
        """State index of a non-ground node (raises for unknown names)."""
        try:
            return self.node_index[name]
        except KeyError:
            raise MNAError(f"unknown node {name!r}") from None


def _stamp_conductance(triples: list, index: MNAIndex, node_a: str, node_b: str, value: float):
    a = None if is_ground(node_a) else index.node(node_a)
    b = None if is_ground(node_b) else index.node(node_b)
    if a is not None:
        triples.append((a, a, value))
    if b is not None:
        triples.append((b, b, value))
    if a is not None and b is not None:
        triples.append((a, b, -value))
        triples.append((b, a, -value))


def assemble(netlist: Netlist) -> "DescriptorSystem":
    """Assemble a netlist into a :class:`~repro.circuits.statespace.DescriptorSystem`.

    Raises
    ------
    MNAError
        If the netlist has no states or no inputs, or if a mutual
        inductance coupling would make the inductance matrix indefinite.
    """
    # Imported here to avoid a circular import at module load time.
    from repro.circuits.statespace import DescriptorSystem

    index = MNAIndex(netlist)
    n = index.n_states
    if n == 0:
        raise MNAError("netlist has no circuit unknowns")
    if not index.input_names:
        raise MNAError("netlist declares no inputs (ports or sources)")

    g_triples: List[Tuple[int, int, float]] = []
    c_triples: List[Tuple[int, int, float]] = []

    for res in netlist.resistors:
        _stamp_conductance(g_triples, index, res.node_a, res.node_b, 1.0 / res.value)
    for cap in netlist.capacitors:
        _stamp_conductance(c_triples, index, cap.node_a, cap.node_b, cap.value)

    for ind in netlist.inductors:
        k = index.inductor_index[ind.name]
        a = None if is_ground(ind.node_a) else index.node(ind.node_a)
        b = None if is_ground(ind.node_b) else index.node(ind.node_b)
        # KCL: branch current leaves node_a, enters node_b.
        if a is not None:
            g_triples.append((a, k, 1.0))
            g_triples.append((k, a, -1.0))
        if b is not None:
            g_triples.append((b, k, -1.0))
            g_triples.append((k, b, 1.0))
        # Branch equation: L di/dt = v_a - v_b.
        c_triples.append((k, k, ind.value))

    for mut in netlist.mutuals:
        la = netlist.find_inductor(mut.inductor_a)
        lb = netlist.find_inductor(mut.inductor_b)
        m_value = mut.coupling * np.sqrt(la.value * lb.value)
        ka = index.inductor_index[mut.inductor_a]
        kb = index.inductor_index[mut.inductor_b]
        c_triples.append((ka, kb, m_value))
        c_triples.append((kb, ka, m_value))

    b_triples: List[Tuple[int, int, float]] = []
    l_triples: List[Tuple[int, int, float]] = []
    for j, port in enumerate(netlist.current_ports):
        node = index.node(port.node)
        b_triples.append((node, j, 1.0))
        l_triples.append((node, j, 1.0))

    n_ports = len(netlist.current_ports)
    for j, src in enumerate(netlist.voltage_sources):
        k = index.source_index[src.name]
        a = None if is_ground(src.node_plus) else index.node(src.node_plus)
        b = None if is_ground(src.node_minus) else index.node(src.node_minus)
        if a is not None:
            g_triples.append((a, k, 1.0))
            g_triples.append((k, a, -1.0))
        if b is not None:
            g_triples.append((b, k, -1.0))
            g_triples.append((k, b, 1.0))
        # Branch equation: v_plus - v_minus = u  ->  row k of (-G x + B u) = 0.
        b_triples.append((k, n_ports + j, -1.0))

    for j, obs in enumerate(netlist.observations):
        l_triples.append((index.node(obs.node), n_ports + j, 1.0))

    def build(triples, shape):
        if not triples:
            return sp.csr_matrix(shape)
        rows, cols, vals = zip(*triples)
        return sp.csr_matrix(sp.coo_matrix((vals, (rows, cols)), shape=shape))

    g_matrix = build(g_triples, (n, n))
    c_matrix = build(c_triples, (n, n))
    b_matrix = build(b_triples, (n, len(index.input_names)))
    l_matrix = build(l_triples, (n, len(index.output_names)))

    _check_inductance_psd(netlist, c_matrix, index)

    return DescriptorSystem(
        g_matrix,
        c_matrix,
        b_matrix,
        l_matrix,
        input_names=list(index.input_names),
        output_names=list(index.output_names),
        state_names=_state_names(netlist, index),
        title=netlist.title,
    )


def assemble_perturbation(netlist: Netlist, scales: Dict[str, float]):
    """Stamp a sensitivity-matrix pair ``(dG, dC)`` from element scales.

    MNA matrices are linear in the element conductances, capacitances
    and inductances, so any first-order sensitivity matrix is a
    weighted re-stamp of a subset of elements.  ``scales`` maps element
    names to the dimensionless factor ``d(value)/dp / value`` -- the
    per-element relative sensitivity to the parameter.  Each listed
    element is stamped with ``scale * nominal_value`` (for resistors,
    ``scale * nominal_conductance``); unlisted elements contribute
    nothing.  Topological stamps (inductor/source incidence columns)
    never depend on element values and are therefore never part of a
    sensitivity matrix.

    Returns
    -------
    (dG, dC):
        Sparse sensitivity matrices with the same shape as the
        assembled ``G``/``C``.
    """
    index = MNAIndex(netlist)
    n = index.n_states
    g_triples: List[Tuple[int, int, float]] = []
    c_triples: List[Tuple[int, int, float]] = []
    known = set()
    for res in netlist.resistors:
        known.add(res.name)
        scale = scales.get(res.name)
        if scale:
            _stamp_conductance(g_triples, index, res.node_a, res.node_b, scale / res.value)
    for cap in netlist.capacitors:
        known.add(cap.name)
        scale = scales.get(cap.name)
        if scale:
            _stamp_conductance(c_triples, index, cap.node_a, cap.node_b, scale * cap.value)
    for ind in netlist.inductors:
        known.add(ind.name)
        scale = scales.get(ind.name)
        if scale:
            k = index.inductor_index[ind.name]
            c_triples.append((k, k, scale * ind.value))
    unknown = set(scales) - known
    if unknown:
        raise MNAError(f"scales reference unknown or non-RCL elements: {sorted(unknown)}")

    def build(triples):
        if not triples:
            return sp.csr_matrix((n, n))
        rows, cols, vals = zip(*triples)
        return sp.csr_matrix(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))

    return build(g_triples), build(c_triples)


def _check_inductance_psd(netlist: Netlist, c_matrix: sp.spmatrix, index: MNAIndex) -> None:
    if not netlist.mutuals:
        return
    l_rows = sorted(index.inductor_index.values())
    # Inductor branch indices are a contiguous block by construction
    # (n_nodes .. n_nodes + n_l), so two cheap contiguous slices extract
    # the branch inductance submatrix.  The historical fancy-indexed
    # ``tocsc()[np.ix_(...)]`` built full-size index structures over the
    # whole (huge) capacitance matrix just to read this small block.
    lo, hi = l_rows[0], l_rows[-1] + 1
    if l_rows == list(range(lo, hi)):
        branch = c_matrix.tocsr()[lo:hi].tocsc()[:, lo:hi].toarray()
    else:  # pragma: no cover - unreachable with the current index layout
        branch = c_matrix.tocsr()[l_rows].tocsc()[:, l_rows].toarray()
    eigenvalues = np.linalg.eigvalsh(branch)
    if eigenvalues.min() <= 0:
        raise MNAError(
            "mutual couplings make the branch inductance matrix indefinite "
            f"(min eigenvalue {eigenvalues.min():.3e}); reduce the coupling coefficients"
        )


def _state_names(netlist: Netlist, index: MNAIndex) -> List[str]:
    names = [""] * index.n_states
    for node, i in index.node_index.items():
        names[i] = f"v({node})"
    for ind_name, i in index.inductor_index.items():
        names[i] = f"i({ind_name})"
    for src_name, i in index.source_index.items():
        names[i] = f"i({src_name})"
    return names
