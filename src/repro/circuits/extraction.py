"""Geometry-based parasitic extraction with width sensitivities.

The paper's clock-tree experiments (Section 5.3) use industrial RC
networks whose sensitivity matrices "are obtained by performing
multiple parasitic extractions" with respect to metal line width
variations on layers M5, M6 and M7.  We do not have the industrial
extractor, so this module implements the standard closed-form
extraction model that plays the same role:

- **Resistance**: ``R = rho_sheet * length / width`` (sheet-resistance
  model; thickness folded into ``rho_sheet``).
- **Capacitance**: parallel-plate area term plus a width-independent
  fringe term, ``C = (eps * width / height + c_fringe) * length``.

Both are differentiable in width, so each wire contributes closed-form
conductance/capacitance sensitivities:

``dG/dw = -G / w``  (wider wire, lower resistance -> higher conductance)
``dC/dw = eps * length / height``  (wider wire, more area capacitance)

The variational parameters exposed to the MOR algorithms are the
*relative* layer width deviations ``p = (w - w0) / w0``, matching the
paper's +/-30% (3-sigma) experiments, so the stamped sensitivities are
``w0 * dG/dw`` and ``w0 * dC/dw``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# Vacuum permittivity times a typical low-k dielectric constant, F/um.
EPSILON_OX = 8.854e-18 * 3.9  # F/um (8.854e-12 F/m = 8.854e-18 F/um)


@dataclass(frozen=True)
class MetalLayer:
    """A routing layer of the metal stack.

    Parameters
    ----------
    name:
        Layer name (``"M5"``...).
    sheet_resistance:
        Ohms per square (thickness folded in).
    height:
        Dielectric height to the ground plane, in microns.
    nominal_width:
        Nominal drawn wire width on this layer, in microns.
    fringe_capacitance:
        Width-independent fringe capacitance, F/um of wire length.
    """

    name: str
    sheet_resistance: float
    height: float
    nominal_width: float
    fringe_capacitance: float

    def __post_init__(self):
        for field in ("sheet_resistance", "height", "nominal_width"):
            if getattr(self, field) <= 0:
                raise ValueError(f"layer {self.name}: {field} must be positive")
        if self.fringe_capacitance < 0:
            raise ValueError(f"layer {self.name}: fringe capacitance must be >= 0")


@dataclass(frozen=True)
class Wire:
    """A wire segment: a run of ``length`` um on ``layer`` at nominal width."""

    layer: MetalLayer
    length: float

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("wire length must be positive")


@dataclass(frozen=True)
class ExtractedWire:
    """Extraction result for one wire segment.

    ``resistance``/``capacitance`` are the nominal values; the
    ``d*_dp`` fields are derivatives with respect to the *relative*
    layer width deviation ``p`` (dimensionless), i.e. already scaled by
    the nominal width.
    """

    resistance: float
    capacitance: float
    dconductance_dp: float
    dcapacitance_dp: float

    @property
    def conductance(self) -> float:
        """Nominal conductance ``1/R``."""
        return 1.0 / self.resistance


def wire_resistance(layer: MetalLayer, length: float, width: float) -> float:
    """Sheet-resistance model ``R = rho_sheet * length / width``."""
    if width <= 0:
        raise ValueError("width must be positive")
    return layer.sheet_resistance * length / width


def wire_capacitance(layer: MetalLayer, length: float, width: float) -> float:
    """Area plus fringe capacitance to the ground plane."""
    if width <= 0:
        raise ValueError("width must be positive")
    area_term = EPSILON_OX * width / layer.height
    return (area_term + layer.fringe_capacitance) * length


def extract_wire(wire: Wire) -> ExtractedWire:
    """Extract nominal RC and relative-width sensitivities for a wire.

    With ``w = w0 (1 + p)``:

    - ``G(p) = w0 (1+p) / (rho L)`` so ``dG/dp = G0`` (conductance is
      linear in width under the sheet model).
    - ``C(p) = (eps w0 (1+p)/h + cf) L`` so ``dC/dp = eps w0 L / h``
      (only the area term varies).
    """
    layer = wire.layer
    w0 = layer.nominal_width
    resistance = wire_resistance(layer, wire.length, w0)
    capacitance = wire_capacitance(layer, wire.length, w0)
    dg_dp = 1.0 / resistance  # G = w/(rho L); dG/dp = w0/(rho L) = G0
    dc_dp = EPSILON_OX * w0 / layer.height * wire.length
    return ExtractedWire(resistance, capacitance, dg_dp, dc_dp)


def perturbed_wire_rc(wire: Wire, relative_width_shift: float) -> Tuple[float, float]:
    """Exact (non-linearized) RC of a wire at width ``w0 * (1 + p)``.

    Used by tests and by the finite-difference extraction path to
    validate the first-order model against the true geometry response.
    """
    width = wire.layer.nominal_width * (1.0 + relative_width_shift)
    return (
        wire_resistance(wire.layer, wire.length, width),
        wire_capacitance(wire.layer, wire.length, width),
    )


def standard_stack() -> Dict[str, MetalLayer]:
    """A representative M5/M6/M7 metal stack for the clock-tree nets.

    Values are typical of a 130 nm-era process (the paper's vintage):
    upper layers are wider, thicker (lower sheet resistance) and
    further from the substrate.
    """
    return {
        "M5": MetalLayer("M5", sheet_resistance=0.08, height=1.2, nominal_width=0.4,
                         fringe_capacitance=4.0e-17),
        "M6": MetalLayer("M6", sheet_resistance=0.05, height=2.0, nominal_width=0.8,
                         fringe_capacitance=4.5e-17),
        "M7": MetalLayer("M7", sheet_resistance=0.03, height=3.0, nominal_width=1.6,
                         fringe_capacitance=5.0e-17),
    }
