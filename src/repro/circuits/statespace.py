"""Descriptor state-space systems (the MNA form of paper eq. (1)).

:class:`DescriptorSystem` holds the quadruple ``(G, C, B, L)`` of

``C x' = -G x + B u,    y = L^T x``

with sparse matrices for full circuits and dense matrices for reduced
macromodels.  It provides transfer-function evaluation, frequency
sweeps, pole computation, and congruence-transform reduction -- the
operations every experiment in the paper is built from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np
import scipy.linalg as dla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

Matrix = Union[np.ndarray, sp.spmatrix]


def _to_dense(matrix: Matrix) -> np.ndarray:
    return matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)


class DescriptorSystem:
    """The MNA descriptor system ``C x' = -G x + B u, y = L^T x``.

    Parameters
    ----------
    G, C:
        Square conductance/susceptance matrices (sparse or dense).
    B:
        ``n x m_in`` input incidence matrix.
    L:
        ``n x m_out`` output incidence matrix.
    input_names, output_names, state_names:
        Optional labels used by reports.
    title:
        Human-readable system name.
    """

    def __init__(
        self,
        G: Matrix,
        C: Matrix,
        B: Matrix,
        L: Matrix,
        input_names: Optional[List[str]] = None,
        output_names: Optional[List[str]] = None,
        state_names: Optional[List[str]] = None,
        title: str = "system",
    ):
        n = G.shape[0]
        if G.shape != (n, n) or C.shape != (n, n):
            raise ValueError(f"G and C must be square and matching: {G.shape} vs {C.shape}")
        if B.shape[0] != n:
            raise ValueError(f"B has {B.shape[0]} rows, expected {n}")
        if L.shape[0] != n:
            raise ValueError(f"L has {L.shape[0]} rows, expected {n}")
        self.G = G
        self.C = C
        self.B = B
        self.L = L
        self.title = title
        self.input_names = input_names or [f"u{j}" for j in range(B.shape[1])]
        self.output_names = output_names or [f"y{j}" for j in range(L.shape[1])]
        self.state_names = state_names or [f"x{j}" for j in range(n)]

    # -- basic properties ---------------------------------------------

    @property
    def order(self) -> int:
        """State dimension ``n``."""
        return self.G.shape[0]

    @property
    def num_inputs(self) -> int:
        """Number of inputs ``m_in``."""
        return self.B.shape[1]

    @property
    def num_outputs(self) -> int:
        """Number of outputs ``m_out``."""
        return self.L.shape[1]

    @property
    def is_sparse(self) -> bool:
        """True when the system matrices are stored sparse."""
        return sp.issparse(self.G)

    def is_symmetric_port_form(self, tol: float = 0.0) -> bool:
        """True when ``B == L`` (PRIMA's symmetric passive-port form)."""
        if self.B.shape != self.L.shape:
            return False
        diff = self.B - self.L
        if sp.issparse(diff):
            if diff.nnz == 0:
                return True
            return abs(diff).max() <= tol
        return np.abs(diff).max() <= tol

    # -- frequency domain ---------------------------------------------

    def transfer(self, s: complex) -> np.ndarray:
        """Transfer matrix ``H(s) = L^T (G + s C)^{-1} B`` (m_out x m_in)."""
        s = complex(s)
        if self.is_sparse:
            pencil = (self.G + s * self.C).tocsc().astype(np.complex128)
            rhs = _to_dense(self.B).astype(complex)
            x = spla.splu(pencil).solve(rhs)
            return _to_dense(self.L).T @ x
        pencil = (_to_dense(self.G) + s * _to_dense(self.C)).astype(np.complex128)
        x = np.linalg.solve(pencil, _to_dense(self.B).astype(complex))
        return _to_dense(self.L).T @ x

    def frequency_response(self, frequencies: Sequence[float]) -> np.ndarray:
        """Evaluate ``H(j 2 pi f)`` over frequencies in hertz.

        Returns an array of shape ``(len(frequencies), m_out, m_in)``.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        out = np.empty((frequencies.size, self.num_outputs, self.num_inputs), dtype=complex)
        for i, f in enumerate(frequencies):
            out[i] = self.transfer(2j * np.pi * f)
        return out

    def dc_gain(self) -> np.ndarray:
        """``H(0) = L^T G^{-1} B``."""
        return self.transfer(0.0).real

    # -- poles ----------------------------------------------------------

    def poles(self, num: Optional[int] = None) -> np.ndarray:
        """System poles, most dominant first.

        Poles are the values of ``s`` where ``G + s C`` is singular.
        Writing ``G + s C = G (I + s G^{-1} C)``, the finite poles are
        ``s = -1/lambda`` for the nonzero eigenvalues ``lambda`` of
        ``G^{-1} C``.  Dominance is measured by ``|lambda|`` (largest
        time constant / pole closest to the origin first), matching the
        paper's "most dominant poles" metric in Figs. 5-6.

        Parameters
        ----------
        num:
            Return only the ``num`` most dominant poles.
        """
        if self.is_sparse:
            lu = spla.splu(self.G.tocsc())
            a = lu.solve(_to_dense(self.C))
        else:
            a = np.linalg.solve(_to_dense(self.G), _to_dense(self.C))
        eigenvalues = dla.eig(a, right=False)
        magnitude = np.abs(eigenvalues)
        if magnitude.size == 0:
            return np.empty(0, dtype=complex)
        # Relative cutoff: eigenvalues of G^{-1}C live at RC-time-constant
        # scale (~1e-13 s), so "zero" must be measured against the largest.
        scale = magnitude.max()
        if scale == 0.0:
            return np.empty(0, dtype=complex)
        finite = eigenvalues[magnitude > 1e-12 * scale]
        poles = -1.0 / finite
        order = np.argsort(np.abs(poles))
        poles = poles[order]
        if num is not None:
            poles = poles[:num]
        return poles

    # -- reduction -------------------------------------------------------

    def reduce(self, projection: np.ndarray, title: Optional[str] = None) -> "DescriptorSystem":
        """Congruence-transform reduction ``M -> V^T M V`` (paper eq. (2)).

        The congruence transform preserves the passivity structure: if
        ``G + G^T`` and ``C + C^T`` are PSD then so are their reduced
        counterparts, for any real ``V``.
        """
        v = np.asarray(projection, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.order:
            raise ValueError(
                f"projection must be {self.order} x q, got {v.shape}"
            )
        g_r = v.T @ _as_array_product(self.G, v)
        c_r = v.T @ _as_array_product(self.C, v)
        b_r = v.T @ _to_dense(self.B)
        l_r = v.T @ _to_dense(self.L)
        return DescriptorSystem(
            g_r,
            c_r,
            b_r,
            l_r,
            input_names=list(self.input_names),
            output_names=list(self.output_names),
            title=title or f"{self.title}[reduced q={v.shape[1]}]",
        )

    def port_restricted(self) -> "DescriptorSystem":
        """The same system observed only at its driven ports (``L := B``).

        Passivity is a property of the *port* behaviour; systems that
        carry extra observation outputs (``L != B``) are restricted to
        their ports before positive-realness is checked.
        """
        return DescriptorSystem(
            self.G,
            self.C,
            self.B,
            self.B,
            input_names=list(self.input_names),
            output_names=list(self.input_names),
            state_names=list(self.state_names),
            title=f"{self.title}[ports]",
        )

    # -- structure checks -------------------------------------------------

    def passivity_structure_margin(self) -> float:
        """Smallest eigenvalue over the symmetric parts of ``G`` and ``C``.

        A value ``>= -tol`` certifies the structural passivity
        conditions ``G + G^T >= 0`` and ``C + C^T >= 0`` (together with
        ``B = L`` these guarantee a positive-real transfer function).
        """
        g_sym = _to_dense(self.G)
        g_sym = 0.5 * (g_sym + g_sym.T)
        c_sym = _to_dense(self.C)
        c_sym = 0.5 * (c_sym + c_sym.T)
        return float(
            min(np.linalg.eigvalsh(g_sym).min(), np.linalg.eigvalsh(c_sym).min())
        )

    def __repr__(self) -> str:
        return (
            f"DescriptorSystem({self.title!r}, n={self.order}, "
            f"inputs={self.num_inputs}, outputs={self.num_outputs}, "
            f"{'sparse' if self.is_sparse else 'dense'})"
        )


def _as_array_product(matrix: Matrix, block: np.ndarray) -> np.ndarray:
    return np.asarray(matrix @ block)
