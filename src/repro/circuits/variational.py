"""Parametric (variational) interconnect systems.

Implements the first-order variational form of paper eqs. (3)/(5):

``G(p) = G0 + sum_i p_i G_i,   C(p) = C0 + sum_i p_i C_i``

with nominal matrices ``G0, C0`` and sensitivity matrices ``G_i, C_i``
with respect to each variational parameter ``p_i`` (metal line width,
thickness, ...).  The parameters are dimensionless deviations from
nominal (e.g. ``p_i = 0.3`` for a +30% width variation), matching the
paper's experiments.

Sensitivity matrices can come from three sources, all exercised in the
benchmarks:

1. closed-form extraction sensitivities
   (:mod:`repro.circuits.extraction` -- the clock-tree nets),
2. random variational directions
   (:func:`repro.circuits.generators.with_random_variations` -- the
   767-unknown RC net), and
3. finite differences over a circuit-builder callback
   (:func:`finite_difference_sensitivities` -- mirroring the paper's
   "multiple parasitic extractions").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.circuits.statespace import DescriptorSystem

Matrix = Union[np.ndarray, sp.spmatrix]


class ParametricSystem:
    """First-order parametric MNA system (paper eq. (5)).

    Parameters
    ----------
    nominal:
        The nominal :class:`~repro.circuits.statespace.DescriptorSystem`
        ``{G0, C0, B, L}``.
    dG, dC:
        Sensitivity matrices ``G_i`` and ``C_i``, one per parameter
        (same sparsity/world as ``G0``/``C0``; zero matrices allowed).
    parameter_names:
        Optional labels (e.g. ``["M5_width", "M6_width", "M7_width"]``).
    """

    def __init__(
        self,
        nominal: DescriptorSystem,
        dG: Sequence[Matrix],
        dC: Sequence[Matrix],
        parameter_names: Optional[List[str]] = None,
    ):
        if len(dG) != len(dC):
            raise ValueError(
                f"need matching sensitivity lists, got {len(dG)} dG vs {len(dC)} dC"
            )
        n = nominal.order
        for i, (gi, ci) in enumerate(zip(dG, dC)):
            if gi.shape != (n, n) or ci.shape != (n, n):
                raise ValueError(
                    f"sensitivity {i} has shape {gi.shape}/{ci.shape}, expected ({n}, {n})"
                )
        self.nominal = nominal
        self.dG = list(dG)
        self.dC = list(dC)
        if parameter_names is None:
            parameter_names = [f"p{i + 1}" for i in range(len(dG))]
        if len(parameter_names) != len(dG):
            raise ValueError("one parameter name per sensitivity pair required")
        self.parameter_names = list(parameter_names)

    # -- basic properties ---------------------------------------------

    @property
    def num_parameters(self) -> int:
        """Number of variational parameters ``n_p``."""
        return len(self.dG)

    @property
    def order(self) -> int:
        """State dimension of the underlying MNA system."""
        return self.nominal.order

    def _check_point(self, p: Sequence[float]) -> np.ndarray:
        point = np.atleast_1d(np.asarray(p, dtype=float))
        if point.shape != (self.num_parameters,):
            raise ValueError(
                f"parameter point has shape {point.shape}, expected ({self.num_parameters},)"
            )
        return point

    # -- evaluation -----------------------------------------------------

    def conductance(self, p: Sequence[float]) -> Matrix:
        """``G(p) = G0 + sum_i p_i G_i``."""
        point = self._check_point(p)
        g = self.nominal.G
        for value, gi in zip(point, self.dG):
            if value != 0.0:
                g = g + value * gi
        return g

    def capacitance(self, p: Sequence[float]) -> Matrix:
        """``C(p) = C0 + sum_i p_i C_i``."""
        point = self._check_point(p)
        c = self.nominal.C
        for value, ci in zip(point, self.dC):
            if value != 0.0:
                c = c + value * ci
        return c

    def instantiate(self, p: Sequence[float], title: Optional[str] = None) -> DescriptorSystem:
        """The perturbed full system at parameter point ``p``."""
        point = self._check_point(p)
        label = title or (
            f"{self.nominal.title}@("
            + ", ".join(f"{n}={v:+.3g}" for n, v in zip(self.parameter_names, point))
            + ")"
        )
        return DescriptorSystem(
            self.conductance(point),
            self.capacitance(point),
            self.nominal.B,
            self.nominal.L,
            input_names=list(self.nominal.input_names),
            output_names=list(self.nominal.output_names),
            state_names=list(self.nominal.state_names),
            title=label,
        )

    def transfer(self, s: complex, p: Sequence[float]) -> np.ndarray:
        """Parametric transfer matrix ``H(s, p)`` of the full model."""
        return self.instantiate(p).transfer(s)

    # -- reduction ------------------------------------------------------

    def reduce(self, projection: np.ndarray):
        """Congruence-reduce every system matrix with ``projection``.

        This is step 4 of the paper's Algorithm 1: the transform is
        applied to the *original* sensitivity matrices (not their
        low-rank approximations), preserving passivity of the
        parametric model.  Returns a
        :class:`repro.core.model.ParametricReducedModel`.
        """
        from repro.core.model import ParametricReducedModel

        v = np.asarray(projection, dtype=float)
        reduced_nominal = self.nominal.reduce(v)
        dg_reduced = [v.T @ _product(gi, v) for gi in self.dG]
        dc_reduced = [v.T @ _product(ci, v) for ci in self.dC]
        return ParametricReducedModel(
            reduced_nominal,
            dg_reduced,
            dc_reduced,
            parameter_names=list(self.parameter_names),
            projection=v,
        )

    def __repr__(self) -> str:
        return (
            f"ParametricSystem({self.nominal.title!r}, n={self.order}, "
            f"np={self.num_parameters}, params={self.parameter_names})"
        )


def _product(matrix: Matrix, block: np.ndarray) -> np.ndarray:
    return np.asarray(matrix @ block)


def finite_difference_sensitivities(
    builder: Callable[[np.ndarray], DescriptorSystem],
    num_parameters: int,
    step: float = 1e-4,
    parameter_names: Optional[List[str]] = None,
) -> ParametricSystem:
    """Extract a :class:`ParametricSystem` from a circuit builder.

    ``builder(p)`` must return the full :class:`DescriptorSystem` for
    parameter point ``p`` (an ``n_p``-vector of relative deviations).
    Sensitivities are estimated by central differences,

    ``G_i = (G(+h e_i) - G(-h e_i)) / (2 h)``,

    which mirrors how the paper obtained the clock-tree sensitivity
    matrices "by performing multiple parasitic extractions".  The
    builder must return structurally consistent systems (same state
    ordering) for all points -- generators in this package do.
    """
    zero = np.zeros(num_parameters)
    nominal = builder(zero)
    dg: List[Matrix] = []
    dc: List[Matrix] = []
    for i in range(num_parameters):
        forward = builder(_unit(num_parameters, i, step))
        backward = builder(_unit(num_parameters, i, -step))
        if forward.order != nominal.order or backward.order != nominal.order:
            raise ValueError(
                "builder returned systems of different order across parameter points"
            )
        dg.append((forward.G - backward.G) / (2.0 * step))
        dc.append((forward.C - backward.C) / (2.0 * step))
    return ParametricSystem(nominal, dg, dc, parameter_names=parameter_names)


def _unit(size: int, index: int, value: float) -> np.ndarray:
    vec = np.zeros(size)
    vec[index] = value
    return vec
