"""Circuit element definitions.

Elements are small frozen dataclasses; all electrical behaviour (MNA
stamps) lives in :mod:`repro.circuits.mna` so that elements remain
plain descriptions that generators, parsers and tests can construct
and inspect freely.

Node names are strings; the ground node is ``"0"`` (aliases ``"gnd"``
and ``"GND"`` are accepted by the netlist builder).
"""

from __future__ import annotations

from dataclasses import dataclass

GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


def is_ground(node: str) -> bool:
    """True if ``node`` names the ground/reference node."""
    return node in GROUND_NAMES


@dataclass(frozen=True)
class Resistor:
    """Two-terminal resistor; ``value`` in ohms (must be positive)."""

    name: str
    node_a: str
    node_b: str
    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError(f"resistor {self.name}: value must be positive, got {self.value}")
        if self.node_a == self.node_b:
            raise ValueError(f"resistor {self.name}: both terminals on node {self.node_a}")


@dataclass(frozen=True)
class Capacitor:
    """Two-terminal capacitor; ``value`` in farads (must be positive)."""

    name: str
    node_a: str
    node_b: str
    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError(f"capacitor {self.name}: value must be positive, got {self.value}")
        if self.node_a == self.node_b:
            raise ValueError(f"capacitor {self.name}: both terminals on node {self.node_a}")


@dataclass(frozen=True)
class Inductor:
    """Two-terminal inductor; ``value`` in henries (must be positive).

    Each inductor introduces one branch-current unknown into the MNA
    state vector (paper eq. (1): "nodal voltages and branch currents
    for voltage sources and inductors").
    """

    name: str
    node_a: str
    node_b: str
    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError(f"inductor {self.name}: value must be positive, got {self.value}")
        if self.node_a == self.node_b:
            raise ValueError(f"inductor {self.name}: both terminals on node {self.node_a}")


@dataclass(frozen=True)
class MutualInductance:
    """Mutual coupling between two named inductors.

    ``coupling`` is the dimensionless coefficient ``k`` with
    ``|k| < 1`` so that the branch inductance matrix stays positive
    definite (required for passivity).
    """

    name: str
    inductor_a: str
    inductor_b: str
    coupling: float

    def __post_init__(self):
        if not -1.0 < self.coupling < 1.0:
            raise ValueError(
                f"mutual {self.name}: coupling must satisfy |k| < 1, got {self.coupling}"
            )
        if self.inductor_a == self.inductor_b:
            raise ValueError(f"mutual {self.name}: cannot couple {self.inductor_a} to itself")


@dataclass(frozen=True)
class CurrentPort:
    """An external port driven by a current source, observing voltage.

    Current ports produce the symmetric ``B = L`` input/output
    structure that PRIMA requires for provable passivity of the reduced
    macromodel: input ``u_j`` is the current injected into ``node``
    (w.r.t. ground), output ``y_j`` is the voltage at ``node``.
    """

    name: str
    node: str

    def __post_init__(self):
        if is_ground(self.node):
            raise ValueError(f"port {self.name}: cannot attach a port to ground")


@dataclass(frozen=True)
class VoltageSource:
    """An independent voltage source input between two nodes.

    Adds one branch-current unknown.  Used for voltage-driven transfer
    functions (e.g. the paper's Fig. 3, "transfer function from the
    voltage input to an observation node").  Note that circuits with
    voltage-source inputs have ``B != L`` and are reduced without the
    symmetric-passivity guarantee; use :class:`CurrentPort` when a
    passive macromodel is required.
    """

    name: str
    node_plus: str
    node_minus: str

    def __post_init__(self):
        if self.node_plus == self.node_minus:
            raise ValueError(f"source {self.name}: both terminals on node {self.node_plus}")


@dataclass(frozen=True)
class Observation:
    """A named voltage output at ``node`` (adds a row to ``L``)."""

    name: str
    node: str

    def __post_init__(self):
        if is_ground(self.node):
            raise ValueError(f"observation {self.name}: ground voltage is identically zero")
