"""A small SPICE-like netlist parser.

Supports the subset of SPICE syntax needed to describe the passive
interconnect structures this package models, plus two directives for
declaring the MOR ports/outputs:

```
* comment (also ';' at end of line)
R<name> <node+> <node-> <value>
C<name> <node+> <node-> <value>
L<name> <node+> <node-> <value>
K<name> <Lname1> <Lname2> <k>
V<name> <node+> <node->            (voltage-source input)
.port <name> <node>                (current-driven port, B = L column)
.observe <name> <node>             (voltage output, extra L column)
.title <text>
.end
```

Values accept standard SPICE suffixes (``f p n u m k meg g t``) and
plain scientific notation.  Parsing is case-insensitive for element
keys and suffixes, and whitespace separated.
"""

from __future__ import annotations

import re
from typing import Iterable, Union

from repro.circuits.netlist import Netlist


class NetlistSyntaxError(ValueError):
    """Raised with a line number when a netlist line cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"line {line_number}: {reason}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"^([+-]?\d+\.?\d*(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?[a-z]*$", re.IGNORECASE
)


def parse_value(token: str) -> float:
    """Parse a SPICE value token like ``10k``, ``1.5p``, ``2e-12``.

    Trailing unit letters after the suffix are ignored (``10pF`` ==
    ``10p``), as in SPICE.
    """
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise ValueError(f"cannot parse value {token!r}")
    mantissa = float(match.group(1))
    suffix = match.group(2)
    if suffix is None:
        return mantissa
    return mantissa * _SUFFIXES[suffix.lower()]


def parse_netlist(source: Union[str, Iterable[str]], title: str = "netlist") -> Netlist:
    """Parse netlist text (string or iterable of lines) into a :class:`Netlist`."""
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)

    net = Netlist(title)
    for number, raw in enumerate(lines, start=1):
        line = raw.split(";", 1)[0].strip()
        if not line or line.startswith("*"):
            continue
        tokens = line.split()
        key = tokens[0]
        lowered = key.lower()
        try:
            if lowered == ".end":
                break
            if lowered == ".title":
                net.title = " ".join(tokens[1:]) or net.title
                continue
            if lowered == ".port":
                _expect(tokens, 3, number, raw)
                net.current_port(tokens[1], tokens[2])
                continue
            if lowered == ".observe":
                _expect(tokens, 3, number, raw)
                net.observe(tokens[1], tokens[2])
                continue
            if lowered.startswith("."):
                raise NetlistSyntaxError(number, raw, f"unknown directive {key!r}")
            kind = lowered[0]
            if kind == "r":
                _expect(tokens, 4, number, raw)
                net.resistor(key, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "c":
                _expect(tokens, 4, number, raw)
                net.capacitor(key, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "l":
                _expect(tokens, 4, number, raw)
                net.inductor(key, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "k":
                _expect(tokens, 4, number, raw)
                net.mutual(key, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "v":
                _expect(tokens, 3, number, raw)
                net.voltage_source(key, tokens[1], tokens[2] if len(tokens) > 2 else "0")
            else:
                raise NetlistSyntaxError(number, raw, f"unknown element type {key[0]!r}")
        except NetlistSyntaxError:
            raise
        except ValueError as exc:
            raise NetlistSyntaxError(number, raw, str(exc)) from exc
    return net


def _expect(tokens, count: int, number: int, raw: str) -> None:
    if len(tokens) < count:
        raise NetlistSyntaxError(
            number, raw, f"expected at least {count} fields, got {len(tokens)}"
        )
