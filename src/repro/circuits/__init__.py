"""Interconnect circuit substrate: netlists, MNA stamping, generators.

The paper's algorithms operate on MNA (modified nodal analysis)
descriptions of interconnect,

``C x' = -G x + B u,   y = L^T x``  (paper eq. (1)),

optionally parameterized by process-variation parameters
(paper eq. (3)/(5)).  This subpackage builds that substrate from
scratch:

- :mod:`repro.circuits.elements` / :mod:`repro.circuits.netlist` --
  circuit elements (R, C, L, mutual inductance, sources, ports) and a
  netlist container with a programmatic builder API.
- :mod:`repro.circuits.parser` -- a small SPICE-like netlist parser.
- :mod:`repro.circuits.mna` -- sparse MNA stamping producing the
  ``G, C, B, L`` matrices in PRIMA-compatible, passivity-structured
  form.
- :mod:`repro.circuits.statespace` -- the descriptor state-space model
  with transfer-function evaluation, pole computation, congruence
  reduction.
- :mod:`repro.circuits.variational` -- parametric systems
  ``{G0, C0, {G_i}, {C_i}, B, L}`` plus finite-difference sensitivity
  extraction.
- :mod:`repro.circuits.extraction` -- a geometry-based parasitic
  extraction model (sheet resistance, area + fringe capacitance) with
  closed-form width sensitivities, standing in for the paper's
  industrial extractor.
- :mod:`repro.circuits.generators` -- the benchmark circuits of the
  paper's Section 5 (767-unknown RC net, 4-port coupled RLC bus,
  clock-tree nets RCNetA/RCNetB).
"""

from repro.circuits.elements import (
    Capacitor,
    CurrentPort,
    Inductor,
    MutualInductance,
    Observation,
    Resistor,
    VoltageSource,
)
from repro.circuits.extraction import MetalLayer, Wire, extract_wire, standard_stack
from repro.circuits.generators import (
    clock_tree,
    coupled_rlc_bus,
    power_grid_mesh,
    rc_ladder,
    rc_network_767,
    rc_tree,
    rcnet_a,
    rcnet_b,
    with_random_variations,
)
from repro.circuits.mna import MNAError, assemble
from repro.circuits.netlist import Netlist
from repro.circuits.parser import parse_netlist
from repro.circuits.statespace import DescriptorSystem
from repro.circuits.variational import ParametricSystem, finite_difference_sensitivities

__all__ = [
    "Capacitor",
    "CurrentPort",
    "DescriptorSystem",
    "Inductor",
    "MNAError",
    "MetalLayer",
    "MutualInductance",
    "Netlist",
    "Observation",
    "ParametricSystem",
    "Resistor",
    "VoltageSource",
    "Wire",
    "assemble",
    "clock_tree",
    "coupled_rlc_bus",
    "extract_wire",
    "finite_difference_sensitivities",
    "parse_netlist",
    "power_grid_mesh",
    "rc_ladder",
    "rc_network_767",
    "rc_tree",
    "rcnet_a",
    "rcnet_b",
    "standard_stack",
    "with_random_variations",
]
