"""Benchmark circuit generators (the paper's Section 5 workloads).

Four families of circuits, mirroring the paper's evaluation:

- :func:`rc_ladder` / :func:`rc_tree` -- generic RC structures;
  :func:`rc_network_767` builds the 767-unknown RC network of
  Section 5.1 (random topology and values, two random variational
  sources via :func:`with_random_variations`).
- :func:`coupled_rlc_bus` -- the two-bit bus of Section 5.2: a coupled
  4-port RLC network with 180 segments per line (MNA size ~1082 vs the
  paper's 1086; the paper does not give its exact segment model).
- :func:`clock_tree` -- balanced clock trees routed on an M5/M6/M7
  stack with extraction-based width sensitivities;
  :func:`rcnet_a` (78 unknowns) and :func:`rcnet_b` (333 unknowns)
  match the node counts of the industrial nets in Section 5.3.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.extraction import MetalLayer, Wire, extract_wire, standard_stack
from repro.circuits.mna import assemble, assemble_perturbation
from repro.circuits.netlist import Netlist
from repro.circuits.statespace import DescriptorSystem
from repro.circuits.variational import ParametricSystem


# ---------------------------------------------------------------------------
# RC structures
# ---------------------------------------------------------------------------

def rc_ladder(
    num_segments: int,
    resistance: float = 10.0,
    capacitance: float = 1e-14,
    drive_resistance: float = 10.0,
    title: str = "rc-ladder",
    port_at_far_end: bool = False,
) -> Netlist:
    """Uniform RC ladder driven at one end.

    ``num_segments`` series resistors with grounded capacitors at each
    junction; a current port at the near end and, optionally, a second
    port at the far end.  The far-end node is always observed.  A
    driver shunt resistance at the near end provides the DC path to
    ground that keeps ``G`` nonsingular (current ports alone leave an
    RC tree floating at DC).
    """
    if num_segments < 1:
        raise ValueError("need at least one segment")
    net = Netlist(title)
    net.resistor("Rdrv", "n0", "0", drive_resistance)
    for j in range(num_segments):
        net.resistor(f"R{j}", f"n{j}", f"n{j + 1}", resistance)
        net.capacitor(f"C{j}", f"n{j + 1}", "0", capacitance)
    net.current_port("in", "n0")
    if port_at_far_end:
        net.current_port("out", f"n{num_segments}")
    else:
        net.observe("far", f"n{num_segments}")
    return net


def rc_tree(
    num_nodes: int,
    seed: int = 0,
    resistance_range: Tuple[float, float] = (5.0, 50.0),
    capacitance_range: Tuple[float, float] = (5e-15, 5e-14),
    max_children: int = 3,
    title: str = "rc-tree",
) -> Netlist:
    """Random RC tree with exactly ``num_nodes`` non-ground nodes.

    Node 0 is the root (driven by a current port, with a driver shunt
    resistance to ground providing the DC path).  Every other node
    attaches to a random existing node (bounded fan-out) through a
    resistor and has a grounded capacitor, producing the classic RC
    interconnect-tree structure.  The last node added (a leaf far from
    the root) is observed.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    net = Netlist(title)
    children: Dict[int, int] = {0: 0}
    r_lo, r_hi = resistance_range
    c_lo, c_hi = capacitance_range
    net.resistor("Rdrv", "n0", "0", float(np.sqrt(r_lo * r_hi)))
    net.capacitor("C0", "n0", "0", rng.uniform(c_lo, c_hi))
    for j in range(1, num_nodes):
        candidates = [node for node, count in children.items() if count < max_children]
        parent = int(rng.choice(candidates))
        children[parent] += 1
        children[j] = 0
        net.resistor(f"R{j}", f"n{parent}", f"n{j}", rng.uniform(r_lo, r_hi))
        net.capacitor(f"C{j}", f"n{j}", "0", rng.uniform(c_lo, c_hi))
    net.current_port("in", "n0")
    net.observe("far", f"n{num_nodes - 1}")
    return net


def with_random_variations(
    netlist: Netlist,
    num_parameters: int,
    seed: int = 0,
    relative_spread: float = 1.0,
    parameter_names: Optional[List[str]] = None,
    targets: Optional[List[str]] = None,
) -> ParametricSystem:
    """Attach random variational directions to an RC(L) netlist.

    This reproduces the paper's construction for the Section 5.1/5.2
    examples: "we randomly vary the RC values of the circuit, and then
    extract the sensitivity matrices w.r.t. these two variational
    sources".  Each parameter ``p_i`` scales every targeted element
    value by an element-specific random factor ``alpha_{e,i}`` drawn
    uniformly from ``[0, relative_spread]``, so a parameter excursion
    ``p_i = 0.7`` perturbs element values by up to
    ``70% * relative_spread``.

    The convention is *value*-based: ``p_i = +0.7`` increases targeted
    element **values** (ohms, farads, henries) by up to 70%.  For a
    resistor a value increase means a conductance *decrease*, so the
    stamped conductance sensitivity is ``-alpha_e * g_e`` -- without
    this sign the R- and C-excursions of a source cancel in every time
    constant and the network barely responds to variation.

    ``targets`` assigns each parameter an element class:
    ``"resistors"``, ``"capacitors"``, ``"inductors"`` or ``"all"``
    (default ``"all"`` for every parameter).

    The sensitivity matrices are assembled with
    :func:`repro.circuits.mna.assemble_perturbation`, which re-stamps
    each element scaled by ``alpha_{e,i}``.
    """
    if num_parameters < 1:
        raise ValueError("need at least one variational parameter")
    if targets is None:
        targets = ["all"] * num_parameters
    if len(targets) != num_parameters:
        raise ValueError("one target class per parameter required")
    resistor_names = {r.name for r in netlist.resistors}
    pools = {
        "resistors": [r.name for r in netlist.resistors],
        "capacitors": [c.name for c in netlist.capacitors],
        "inductors": [l.name for l in netlist.inductors],
    }
    pools["all"] = pools["resistors"] + pools["capacitors"] + pools["inductors"]
    rng = np.random.default_rng(seed)
    nominal = assemble(netlist)
    dg, dc = [], []
    for target in targets:
        if target not in pools:
            raise ValueError(
                f"unknown target class {target!r}; choose from {sorted(pools)}"
            )
        scales = {}
        for name in pools[target]:
            alpha = float(rng.uniform(0.0, relative_spread))
            # d(conductance)/d(relative R-value increase) = -g.
            scales[name] = -alpha if name in resistor_names else alpha
        gi, ci = assemble_perturbation(netlist, scales)
        dg.append(gi)
        dc.append(ci)
    return ParametricSystem(nominal, dg, dc, parameter_names=parameter_names)


def rc_network_767(seed: int = 2005, num_parameters: int = 2) -> ParametricSystem:
    """The Section 5.1 workload: a 767-unknown RC net, two random sources.

    Each variational source perturbs the R and C *values* of every
    element with a random per-element strength ("we randomly vary the
    RC values of the circuit" -- paper Section 5.1); positive
    excursions slow the network down coherently, producing the large
    Fig. 3 response shifts.  Element values sit in a moderate range
    (R in 10-20 ohm, C in 10-20 fF per segment) so that, as in the
    paper, an 8-moment nominal PRIMA model is already visually exact
    for the nominal system over 10 MHz - 10 GHz.

    With two overlapping "all"-element sources, a per-element spread of
    0.5 keeps every conductance strictly positive for excursions up to
    ``|p_1| + |p_2| <= 2 * 0.7`` (factor ``>= 1 - 0.5*1.4 = 0.3``),
    so the full +-70% box of the Fig. 3 protocol is well-posed.
    """
    net = rc_tree(
        767,
        seed=seed,
        resistance_range=(10.0, 20.0),
        capacitance_range=(1e-14, 2e-14),
        title="rc-767",
    )
    return with_random_variations(
        net, num_parameters, seed=seed + 1, relative_spread=0.5
    )


def power_grid_mesh(
    rows: int,
    columns: int,
    segment_resistance: float = 0.5,
    node_capacitance: float = 5e-14,
    via_resistance: float = 1.0,
    num_supplies: int = 2,
    title: str = "power-mesh",
) -> Netlist:
    """A rows x columns RC power-grid mesh.

    Power-distribution networks are the other canonical variational
    interconnect workload (sheet resistance varies with metal
    thickness): a regular resistive mesh with decoupling capacitance at
    every node, tapped by ``num_supplies`` supply vias (current ports
    with a via resistance to ground).  Mesh circuits have much higher
    connectivity than trees, exercising the sparse solvers and the
    reducers on a structurally different graph.

    State count: ``rows * columns`` mesh nodes.
    """
    if rows < 2 or columns < 2:
        raise ValueError("mesh needs at least 2x2 nodes")
    if num_supplies < 1:
        raise ValueError("need at least one supply tap")
    net = Netlist(title)

    def node(r: int, c: int) -> str:
        return f"g{r}_{c}"

    for r in range(rows):
        for c in range(columns):
            net.capacitor(f"C{r}_{c}", node(r, c), "0", node_capacitance)
            if c + 1 < columns:
                net.resistor(f"Rh{r}_{c}", node(r, c), node(r, c + 1),
                             segment_resistance)
            if r + 1 < rows:
                net.resistor(f"Rv{r}_{c}", node(r, c), node(r + 1, c),
                             segment_resistance)

    # Supply taps spread along the diagonal.
    taps = []
    for k in range(num_supplies):
        r = (k * (rows - 1)) // max(num_supplies - 1, 1)
        c = (k * (columns - 1)) // max(num_supplies - 1, 1)
        if (r, c) in taps:
            continue
        taps.append((r, c))
    for k, (r, c) in enumerate(taps):
        net.resistor(f"Rvia{k}", node(r, c), "0", via_resistance)
        net.current_port(f"vdd{k}", node(r, c))
    # Observe the worst-case (center) node for IR-drop style analysis.
    net.observe("center", node(rows // 2, columns // 2))
    return net


# ---------------------------------------------------------------------------
# Coupled RLC bus (Section 5.2)
# ---------------------------------------------------------------------------

def coupled_rlc_bus(
    num_lines: int = 2,
    num_segments: int = 180,
    total_resistance: float = 60.0,
    total_inductance: float = 4e-9,
    total_capacitance: float = 1.6e-12,
    coupling_capacitance_ratio: float = 0.5,
    mutual_coupling: float = 0.3,
    termination_resistance: float = 25.0,
    title: str = "rlc-bus",
) -> Netlist:
    """A coupled multi-line RLC bus with ports at both ends of each line.

    Each line is a chain of ``num_segments`` RL-pi segments: series R
    into an internal node, series L to the next junction, a grounded
    capacitor at each junction, plus line-to-line coupling capacitors
    and mutual inductance between corresponding segments of adjacent
    lines.  With 2 lines and 180 segments the MNA size is
    ``2*(2*180 + 1) + 2*180 = 1082``, matching the scale of the
    paper's 1086-unknown two-bit bus.
    """
    if num_lines < 1:
        raise ValueError("need at least one line")
    if num_segments < 1:
        raise ValueError("need at least one segment")
    net = Netlist(title)
    r_seg = total_resistance / num_segments
    l_seg = total_inductance / num_segments
    c_seg = total_capacitance / num_segments
    c_couple = c_seg * coupling_capacitance_ratio

    def node(line: int, j: int) -> str:
        return f"l{line}n{j}"

    for line in range(num_lines):
        for j in range(num_segments):
            mid = f"l{line}m{j}"
            net.resistor(f"R{line}_{j}", node(line, j), mid, r_seg)
            net.inductor(f"L{line}_{j}", mid, node(line, j + 1), l_seg)
            net.capacitor(f"C{line}_{j}", node(line, j + 1), "0", c_seg)
        # Driver shunt at the near end: DC path to ground (keeps G
        # nonsingular) and a structurally complete C diagonal.
        net.resistor(f"Rterm{line}", node(line, 0), "0", termination_resistance)
        net.capacitor(f"C{line}_in", node(line, 0), "0", c_seg / 2.0)

    for line in range(num_lines - 1):
        for j in range(num_segments):
            net.capacitor(
                f"K{line}_{j}", node(line, j + 1), node(line + 1, j + 1), c_couple
            )
            if mutual_coupling:
                net.mutual(
                    f"M{line}_{j}", f"L{line}_{j}", f"L{line + 1}_{j}", mutual_coupling
                )

    for line in range(num_lines):
        net.current_port(f"near{line}", node(line, 0))
        net.current_port(f"far{line}", node(line, num_segments))
    return net


# ---------------------------------------------------------------------------
# Clock trees (Section 5.3)
# ---------------------------------------------------------------------------

def clock_tree(
    level_segments: Sequence[int],
    level_layers: Sequence[str],
    stack: Optional[Dict[str, MetalLayer]] = None,
    trunk_length: float = 400.0,
    leaf_load: float = 5e-15,
    driver_resistance: float = 20.0,
    title: str = "clock-tree",
) -> ParametricSystem:
    """Balanced binary clock tree with extraction-based sensitivities.

    The tree has a trunk edge followed by ``len(level_segments) - 1``
    binary-branching levels; level ``l`` has ``2^max(l-1, 0) ...``
    precisely: the trunk is one edge, level ``l >= 1`` has ``2^l``
    edges.  Each edge at level ``l`` is routed on ``level_layers[l]``
    and split into ``level_segments[l]`` RC segments extracted from the
    wire geometry (:mod:`repro.circuits.extraction`).  Wire length
    halves at each level, so total MNA size is
    ``1 + sum_l (edges_l * level_segments[l])``.

    Variational parameters are the relative width deviations of each
    distinct layer used, in stack order -- three parameters (M5, M6,
    M7) for the standard configurations, exactly the paper's setup.

    Returns a :class:`~repro.circuits.variational.ParametricSystem`
    whose sensitivities come from the closed-form extraction
    derivatives.
    """
    if len(level_segments) != len(level_layers):
        raise ValueError("level_segments and level_layers must have equal length")
    if not level_segments:
        raise ValueError("need at least the trunk level")
    stack = stack if stack is not None else standard_stack()
    for layer_name in level_layers:
        if layer_name not in stack:
            raise ValueError(f"layer {layer_name!r} not in metal stack")

    net = Netlist(title)
    # element name -> (layer name, d(value)/dp / value) for R and C stamps.
    sensitivity_tags: List[Tuple[str, str, float]] = []
    node_counter = [0]

    def new_node() -> str:
        node_counter[0] += 1
        return f"t{node_counter[0]}"

    root = "t0"

    def route_edge(level: int, start_node: str, edge_id: str) -> str:
        """Route one tree edge as a chain of extracted RC segments."""
        layer = stack[level_layers[level]]
        num_segs = level_segments[level]
        edge_length = trunk_length / (2 ** level)
        seg_wire = Wire(layer, edge_length / num_segs)
        extracted = extract_wire(seg_wire)
        current = start_node
        for s in range(num_segs):
            nxt = new_node()
            r_name = f"R{edge_id}_{s}"
            c_name = f"C{edge_id}_{s}"
            net.resistor(r_name, current, nxt, extracted.resistance)
            net.capacitor(c_name, nxt, "0", extracted.capacitance)
            # Relative sensitivities: dG/dp / G0 and dC/dp / C0.
            sensitivity_tags.append(
                (r_name, layer.name, extracted.dconductance_dp * extracted.resistance)
            )
            sensitivity_tags.append(
                (c_name, layer.name, extracted.dcapacitance_dp / extracted.capacitance)
            )
            current = nxt
        return current

    # Trunk (level 0): a single edge from the root.
    frontier = [route_edge(0, root, "e0")]
    for level in range(1, len(level_segments)):
        next_frontier = []
        for parent_index, parent_node in enumerate(frontier):
            for branch in range(2):
                edge_id = f"e{level}_{parent_index}_{branch}"
                next_frontier.append(route_edge(level, parent_node, edge_id))
        frontier = next_frontier

    for leaf_index, leaf in enumerate(frontier):
        net.capacitor(f"Cload{leaf_index}", leaf, "0", leaf_load)
    # Driver output impedance to ground at the root: the DC path that
    # keeps G nonsingular (the port alone would leave the tree floating).
    net.resistor("Rdrv", root, "0", driver_resistance)
    net.current_port("clk", root)
    net.observe("leaf_first", frontier[0])
    net.observe("leaf_last", frontier[-1])

    nominal = assemble(net)
    used_layers = sorted(
        {name for _, name, _ in sensitivity_tags},
        key=lambda name: list(stack).index(name),
    )
    dg, dc = [], []
    for layer_name in used_layers:
        scales = {
            element: scale
            for element, tagged_layer, scale in sensitivity_tags
            if tagged_layer == layer_name
        }
        gi, ci = assemble_perturbation(net, scales)
        dg.append(gi)
        dc.append(ci)
    return ParametricSystem(
        nominal, dg, dc, parameter_names=[f"{name}_width" for name in used_layers]
    )


def rcnet_a() -> ParametricSystem:
    """RCNetA analogue: 78 MNA unknowns, three layer-width parameters."""
    return clock_tree(
        level_segments=(3, 3, 3, 3, 2),
        level_layers=("M7", "M7", "M6", "M6", "M5"),
        title="RCNetA",
    )


def rcnet_b() -> ParametricSystem:
    """RCNetB analogue: 333 MNA unknowns, three layer-width parameters."""
    return clock_tree(
        level_segments=(4, 12, 8, 6, 6, 4),
        level_layers=("M7", "M7", "M6", "M6", "M5", "M5"),
        title="RCNetB",
    )


def assembled(netlist: Netlist) -> DescriptorSystem:
    """Convenience re-export of :func:`repro.circuits.mna.assemble`."""
    return assemble(netlist)
