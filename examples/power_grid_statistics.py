"""Statistical IR-drop analysis of a power grid (extension showcase).

Builds a power-distribution mesh whose sheet resistance and decap
values vary with process, reduces it once with the adaptive low-rank
reducer (by hand, so its convergence report can be printed; pass a
reducer to ``Study.reduced()``/``.cached()`` instead when the report
is not needed), and then performs the statistical analyses the compact
model enables: a Monte Carlo distribution of the worst-path impedance
-- one engine sweep over a declarative plan -- a quadratic response
surface, and a parameter influence ranking.

Run:  python examples/power_grid_statistics.py
"""

import numpy as np

from repro import MonteCarloPlan, Study, power_grid_mesh, with_random_variations
from repro.analysis import fit_response_surface, parameter_ranking
from repro.analysis.statistics import MetricDistribution
from repro.core import AdaptiveLowRankReducer

PROBE_HZ = 1e9


def grid_impedance(system) -> float:
    """|Z(f*)| between supply tap 0 and its return at the mid band."""
    return float(abs(system.transfer(2j * np.pi * PROBE_HZ)[0, 0]))


def main():
    netlist = power_grid_mesh(14, 14, num_supplies=3)
    parametric = with_random_variations(
        netlist, 2, seed=5, relative_spread=0.5,
        parameter_names=["sheet_res", "decap"],
    )
    print(f"power grid: {parametric.order} states, "
          f"parameters: {parametric.parameter_names}")

    model, report = AdaptiveLowRankReducer(
        target_error=1e-4, max_order=8
    ).reduce(parametric)
    print(f"adaptive macromodel: {report.summary()}\n")

    # Monte Carlo of the supply impedance at 1 GHz over the process
    # distribution: one declarative engine study on the reduced model
    # (150 instances x 1 frequency in a single batched kernel call).
    mc_study = (
        Study(model)
        .scenarios(MonteCarloPlan(num_instances=150, three_sigma=0.4, seed=9))
        .sweep([PROBE_HZ], keep_responses=True)
    )
    print(f"engine route: {mc_study.plan().route} [{mc_study.plan().kernel}]")
    sweep = mc_study.run()
    dist = MetricDistribution(
        samples=sweep.samples, values=np.abs(sweep.responses[:, 0, 0, 0])
    )
    print(f"supply impedance @1 GHz over 150 instances (3 sigma = 40%):")
    print(f"  mean  {dist.mean * 1e3:.3f} mOhm")
    print(f"  std   {dist.std * 1e3:.4f} mOhm")
    p5, p50, p95 = dist.percentile([5, 50, 95])
    print(f"  p5/p50/p95  {p5 * 1e3:.3f} / {p50 * 1e3:.3f} / {p95 * 1e3:.3f} mOhm")

    # Response surface: a closed-form surrogate for sign-off sweeps.
    surface = fit_response_surface(dist.samples, dist.values)
    probe = np.array([0.2, -0.2])
    truth = grid_impedance(model.instantiate(probe))
    print(f"\nquadratic response surface: rms residual "
          f"{surface.residual_rms * 1e3:.2e} mOhm")
    print(f"  prediction at p={probe.tolist()}: {surface(probe) * 1e3:.3f} mOhm "
          f"(model: {truth * 1e3:.3f} mOhm)")

    # Which parameter drives the impedance?
    ranking = parameter_ranking(dist)
    print("\nparameter influence (|Pearson correlation| with impedance):")
    for index, correlation in ranking:
        print(f"  {parametric.parameter_names[index]:10s} {correlation:+.3f}")

    # Spot-check the surrogate against the full model at one corner.
    full_truth = grid_impedance(parametric.instantiate(probe))
    error = abs(truth - full_truth) / full_truth
    print(f"\nsurrogate vs full model at the probe corner: {error:.2e} relative")
    assert error < 1e-2


if __name__ == "__main__":
    main()
