"""Sharded, resumable Monte Carlo sign-off (durable-study showcase).

The paper's Monte Carlo protocol compares the dominant poles of a
reduced parametric model against the perturbed full model over many
process instances.  At production scale that study must survive a
crash and split across machines -- this example runs it as **two
shards sharing one on-disk StudyStore** (simulating two machines),
then merges both shards into the one full statistics report, and
demonstrates that the merged numbers are bit-identical to a one-shot
study.

Every persisted chunk carries provenance (content fingerprint, chunk
layout, SHA-256 per archive) in the store manifests, so the merged
result can be independently re-verified.  Each shard additionally
writes a JSONL span trace (``repro.obs``); merging the two shard
traces reconstructs one complete per-chunk lineage whose SHA-256s are
checked against the store manifests bit-for-bit -- the traces and the
store tell the same provenance story.

Run:  python examples/sharded_montecarlo.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import LowRankReducer, monte_carlo_pole_study, rc_tree, with_random_variations
from repro.analysis.montecarlo import MonteCarloResult
from repro.obs import chunk_lineage, read_trace

INSTANCES = 24
CHUNK = 4  # instances per checkpoint unit


def report(label: str, study: MonteCarloResult) -> None:
    errors = study.pole_errors
    print(f"{label}:")
    print(f"  instances     {study.num_instances}")
    print(f"  pole compares {study.total_poles}")
    print(f"  max error     {study.max_error:.6e}")
    print(f"  mean error    {errors.mean():.6e}")


def lineage_by_study(records):
    """Per-study chunk lineages from (possibly merged) trace records.

    A Monte Carlo sign-off traces *two* studies per run (full-model and
    reduced-model pole studies), so chunk indices repeat across the
    records; grouping each chunk span under its ``study.run`` root's
    ``study_key`` separates the studies before the lineage join.
    """
    spans = [r for r in records if r.get("type") == "span"]
    root_key = {
        s["span_id"]: s["attrs"].get("study_key")
        for s in spans
        if s["name"] == "study.run"
    }
    chunk_study = {
        s["span_id"]: root_key.get(s["parent_id"])
        for s in spans
        if s["name"] == "study.chunk"
    }
    grouped = {}
    for record in spans:
        if record["name"] == "study.chunk":
            key = chunk_study[record["span_id"]]
        elif record["name"] in ("store.save", "store.load"):
            key = chunk_study.get(record["parent_id"])
        else:
            continue
        if key is not None:
            grouped.setdefault(key, []).append(record)
    return {key: chunk_lineage(group) for key, group in grouped.items()}


def manifest_hashes(store_dir):
    """``{study_key: {chunk_index: sha256}}`` over every manifest file."""
    hashes = {}
    for path in Path(store_dir).glob("manifest-*.json"):
        manifest = json.loads(path.read_text())
        per_study = hashes.setdefault(manifest["study_key"], {})
        for index, record in manifest["chunks"].items():
            per_study[int(index)] = record["sha256"]
    return hashes


def verify_lineages(lineages, recorded, expect_source):
    """Every chunk hash in every lineage must match its manifest record."""
    for key, lineage in lineages.items():
        indices = [entry["index"] for entry in lineage]
        assert indices == sorted(recorded[key]), (
            f"study {key[:12]}...: lineage covers chunks {indices}, "
            f"manifest records {sorted(recorded[key])}"
        )
        for entry in lineage:
            assert entry["source"] == expect_source
            assert entry["sha256"] == recorded[key][entry["index"]], (
                f"study {key[:12]}... chunk {entry['index']}: trace hash "
                "differs from the manifest record"
            )


def main():
    parametric = with_random_variations(rc_tree(40, seed=5), 2, seed=7)
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    print(f"full model: {parametric.order} states, "
          f"reduced: {model.size} states, "
          f"{parametric.num_parameters} parameters\n")

    with tempfile.TemporaryDirectory() as store_dir:
        # "Machine A" and "machine B": the same study declaration, each
        # running its half of the chunk grid against the shared store.
        # (shard=(i, n) owns the chunks with index % n == i.)
        for index in range(2):
            shard_study = monte_carlo_pole_study(
                parametric, model,
                num_instances=INSTANCES, num_poles=3, seed=11,
                store=store_dir, chunk_size=CHUNK, shard=(index, 2),
                trace=f"{store_dir}/shard{index}.trace",
            )
            report(f"shard {index + 1}/2 (its own instances only)", shard_study)
        print()

        # The merge: a resumed run with no shard loads every persisted
        # chunk -- nothing is recomputed -- and folds them in chunk
        # order into the full result set.
        merged = monte_carlo_pole_study(
            parametric, model,
            num_instances=INSTANCES, num_poles=3, seed=11,
            store=store_dir, chunk_size=CHUNK, resume=True,
            trace=f"{store_dir}/merge.trace",
        )
        report("merged (both shards, one statistics report)", merged)

        counts, edges = merged.histogram(bins=5)
        print("\n  pole-error histogram (%):")
        for i, count in enumerate(counts):
            bar = "#" * int(count)
            print(f"  [{edges[i]:8.4f}, {edges[i + 1]:8.4f})  {bar} {int(count)}")

        manifests = sorted(
            path.name for path in Path(store_dir).glob("manifest-*.json")
        )
        print(f"\n  store manifests: {manifests}")

        # The two shard traces merge into ONE complete per-chunk
        # lineage per study: shard 0 computed the even chunks, shard 1
        # the odd ones, and globally-unique span ids make the
        # concatenated records unambiguous.
        recorded = manifest_hashes(store_dir)
        shard_records = read_trace(f"{store_dir}/shard0.trace") + read_trace(
            f"{store_dir}/shard1.trace"
        )
        shard_lineages = lineage_by_study(shard_records)
        verify_lineages(shard_lineages, recorded, expect_source="computed")
        print("\n  merged shard-trace lineage (full-model pole study):")
        full_key = max(shard_lineages, key=lambda k: len(shard_lineages[k]))
        for entry in shard_lineages[full_key]:
            print(f"  chunk {entry['index']}  rows [{entry['lo']:2d}, "
                  f"{entry['hi']:2d})  shard {entry['shard']}  "
                  f"{entry['source']:8s}  sha256 {entry['sha256'][:12]}...")

        # The resumed merge run traced every chunk too -- as loads; its
        # lineage covers the same chunks with the same hashes.
        merge_lineages = lineage_by_study(read_trace(f"{store_dir}/merge.trace"))
        verify_lineages(merge_lineages, recorded, expect_source="resumed")
        total = sum(len(lineage) for lineage in merge_lineages.values())
        print(f"\n  trace lineages match the manifests bit-for-bit: "
              f"{total} chunk(s) across {len(merge_lineages)} studies, "
              "computed by the shards, resumed by the merge")

    # The whole point: sharded + merged == one-shot, to the last bit.
    one_shot = monte_carlo_pole_study(
        parametric, model, num_instances=INSTANCES, num_poles=3, seed=11
    )
    assert np.array_equal(merged.pole_errors, one_shot.pole_errors)
    assert np.array_equal(merged.full_poles, one_shot.full_poles)
    print("\nmerged shard statistics are bit-identical to the one-shot study")


if __name__ == "__main__":
    main()
