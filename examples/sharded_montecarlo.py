"""Sharded, resumable Monte Carlo sign-off (durable-study showcase).

The paper's Monte Carlo protocol compares the dominant poles of a
reduced parametric model against the perturbed full model over many
process instances.  At production scale that study must survive a
crash and split across machines -- this example runs it as **two
shards sharing one on-disk StudyStore** (simulating two machines),
then merges both shards into the one full statistics report, and
demonstrates that the merged numbers are bit-identical to a one-shot
study.

Every persisted chunk carries provenance (content fingerprint, chunk
layout, SHA-256 per archive) in the store manifests, so the merged
result can be independently re-verified.

Run:  python examples/sharded_montecarlo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import LowRankReducer, monte_carlo_pole_study, rc_tree, with_random_variations
from repro.analysis.montecarlo import MonteCarloResult

INSTANCES = 24
CHUNK = 4  # instances per checkpoint unit


def report(label: str, study: MonteCarloResult) -> None:
    errors = study.pole_errors
    print(f"{label}:")
    print(f"  instances     {study.num_instances}")
    print(f"  pole compares {study.total_poles}")
    print(f"  max error     {study.max_error:.6e}")
    print(f"  mean error    {errors.mean():.6e}")


def main():
    parametric = with_random_variations(rc_tree(40, seed=5), 2, seed=7)
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    print(f"full model: {parametric.order} states, "
          f"reduced: {model.size} states, "
          f"{parametric.num_parameters} parameters\n")

    with tempfile.TemporaryDirectory() as store_dir:
        # "Machine A" and "machine B": the same study declaration, each
        # running its half of the chunk grid against the shared store.
        # (shard=(i, n) owns the chunks with index % n == i.)
        shards = []
        for index in range(2):
            shard_study = monte_carlo_pole_study(
                parametric, model,
                num_instances=INSTANCES, num_poles=3, seed=11,
                store=store_dir, chunk_size=CHUNK, shard=(index, 2),
            )
            report(f"shard {index + 1}/2 (its own instances only)", shard_study)
        print()

        # The merge: a resumed run with no shard loads every persisted
        # chunk -- nothing is recomputed -- and folds them in chunk
        # order into the full result set.
        merged = monte_carlo_pole_study(
            parametric, model,
            num_instances=INSTANCES, num_poles=3, seed=11,
            store=store_dir, chunk_size=CHUNK, resume=True,
        )
        report("merged (both shards, one statistics report)", merged)

        counts, edges = merged.histogram(bins=5)
        print("\n  pole-error histogram (%):")
        for i, count in enumerate(counts):
            bar = "#" * int(count)
            print(f"  [{edges[i]:8.4f}, {edges[i + 1]:8.4f})  {bar} {int(count)}")

        manifests = sorted(
            path.name for path in Path(store_dir).glob("manifest-*.json")
        )
        print(f"\n  store manifests: {manifests}")

    # The whole point: sharded + merged == one-shot, to the last bit.
    one_shot = monte_carlo_pole_study(
        parametric, model, num_instances=INSTANCES, num_poles=3, seed=11
    )
    assert np.array_equal(merged.pole_errors, one_shot.pole_errors)
    assert np.array_equal(merged.full_poles, one_shot.full_poles)
    print("\nmerged shard statistics are bit-identical to the one-shot study")


if __name__ == "__main__":
    main()
