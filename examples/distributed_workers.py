"""Work-stealing workers draining one shared store (scheduler showcase).

Sharding (see ``sharded_montecarlo.py``) splits a study *statically*;
``Study.work()`` splits it *dynamically*: every worker pointed at the
same on-disk store claims unfinished chunks one at a time through
atomic lease files, so fast machines simply take more chunks and the
study drains with no coordinator process.  This example plays out the
full operational story on one small study:

1. a "laptop" worker computes a couple of chunks and stops early
   (``max_chunks`` -- a clean, lease-releasing exit),
2. a crashed worker is simulated by planting the claim file a
   SIGKILLed process leaves behind (a lease owned by a dead pid),
3. a "workstation" worker drains the rest: it must *steal* the dead
   worker's lease -- pid-liveness makes that instant on the same host
   -- and then merge every worker's chunks,
4. the merged envelope is checked **bit-identical** to a one-shot run,
   and the workstation's span trace is read back to show the lease
   protocol (claims and the steal) and the per-chunk provenance with
   its worker attribution.

Run:  python examples/distributed_workers.py
"""

import json
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import LowRankReducer, MonteCarloPlan, Study, rc_tree, with_random_variations
from repro.obs import chunk_lineage, read_trace
from repro.runtime.scheduler import CLAIM_FORMAT

FREQUENCIES = np.logspace(7, 10, 15)
INSTANCES = 12
CHUNK = 2  # 6 chunks: a claim grid small enough to narrate


def declare(model, store_dir=None):
    """One study declaration shared by every worker (and the one-shot).

    Workers agree on *what* the study is through the store key -- a
    hash of the model fingerprint, the realized samples, and the
    workload -- so they must be built from the same declaration.
    """
    study = (
        Study(model)
        .scenarios(MonteCarloPlan(num_instances=INSTANCES, seed=11))
        .sweep(FREQUENCIES)
        .poles(3)
        .chunk(CHUNK)
    )
    return study.store(store_dir) if store_dir else study


def plant_dead_workers_claim(store_dir):
    """Leave behind what a SIGKILLed worker leaves: a claim, no owner.

    The claim names a real pid that is no longer running (we spawn a
    trivial process and wait for it), on this host -- exactly the
    wreckage after a local worker crash.  ``scripts/ci_chaos_workers.py``
    drills the same scenario with real SIGKILLed CLI workers.
    """
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    ghost = {
        "format": CLAIM_FORMAT, "index": 4, "worker": "crashed-box",
        "pid": proc.pid, "host": socket.gethostname(),
        "token": "dead-token", "beats": 0, "wall_time": 0.0,
    }
    planted = []
    for claims_dir in Path(store_dir).glob("claims/*"):
        path = claims_dir / "chunk-00004.claim"
        if not path.exists():  # chunk 4 may already be done; then no-op
            path.write_text(json.dumps(ghost))
            planted.append(path)
    return planted


def main():
    parametric = with_random_variations(rc_tree(30, seed=5), 2, seed=7)
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    print(f"reduced model: {model.size} states, "
          f"{INSTANCES} instances in {INSTANCES // CHUNK} chunks of {CHUNK}\n")

    reference = declare(model).run()

    with tempfile.TemporaryDirectory() as store_dir:
        # Worker 1: a clean partial contribution.  max_chunks stops it
        # after two claims; it releases its leases and does NOT merge
        # (work() returns None when the study is not yet drained).
        laptop = declare(model, store_dir)
        merged = laptop.work(worker="laptop", max_chunks=2, poll=0.01)
        report = laptop.drain_report()
        assert merged is None and not report.drained
        print(f"laptop   computed chunks {report.computed}, then stopped")

        # Worker 2: crashed -- all that is left is its claim file.
        planted = plant_dead_workers_claim(store_dir)
        print(f"crashed-box left {len(planted)} abandoned claim(s) on chunk 4")

        # Worker 3: drains everything else.  It steals the dead
        # worker's lease instantly (dead pid on this host), computes
        # the remaining chunks, and merges ALL workers' checkpoints.
        trace_path = f"{store_dir}/workstation.trace"
        workstation = declare(model, store_dir).trace(trace_path)
        merged = workstation.work(worker="workstation", poll=0.01)
        report = workstation.drain_report()
        assert report.drained
        print(f"workstation computed chunks {report.computed} "
              f"(stole {report.stolen} from the dead worker)\n")

        # Each worker wrote its own manifest; the merge folds the
        # alternates in deterministic order, so any merger gets the
        # same bytes.
        manifests = sorted(
            path.name for path in Path(store_dir).glob("manifest-*.json")
        )
        print("store manifests (one per worker):")
        for name in manifests:
            print(f"  {name}")

        # The trace tells the lease story and the per-chunk provenance.
        records = read_trace(trace_path)
        spans = [r for r in records if r.get("type") == "span"]
        leases = [s for s in spans if s["name"].startswith("lease.")]
        print("\nlease events in the workstation trace:")
        for span in leases:
            attrs = span["attrs"]
            extra = (
                f" from {attrs.get('previous')}" if span["name"] == "lease.steal"
                else ""
            )
            print(f"  {span['name']:12s} chunk {attrs['index']}{extra}")
        assert any(s["name"] == "lease.steal" for s in leases)

        print("\nworkstation chunk lineage (computed = drained by this "
              "worker,\nresumed = loaded back during the merge):")
        for entry in chunk_lineage(records):
            worker = entry["worker"] or "-"
            stolen = "  STOLEN" if entry["stolen"] else ""
            print(f"  chunk {entry['index']}  {entry['source']:8s} "
                  f"worker {worker:12s} sha256 "
                  f"{(entry['sha256'] or '')[:12]}...{stolen}")

    # The point of the whole protocol: dynamic scheduling never changes
    # the numbers.
    np.testing.assert_array_equal(merged.envelope_min, reference.envelope_min)
    np.testing.assert_array_equal(merged.envelope_mean, reference.envelope_mean)
    np.testing.assert_array_equal(merged.envelope_max, reference.envelope_max)
    np.testing.assert_array_equal(merged.poles, reference.poles)
    print("\nwork-stolen study is bit-identical to the one-shot run")


if __name__ == "__main__":
    main()
