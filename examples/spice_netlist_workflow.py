"""End-to-end workflow from a SPICE-style netlist text file.

Demonstrates the "tool" view of the library: parse a netlist, extract
finite-difference sensitivities by re-extracting the circuit at
perturbed geometry (the way the paper obtained its clock-tree
sensitivity matrices from "multiple parasitic extractions"), reduce,
verify passivity, and run a transient corner study on the macromodel
through the ``Study`` engine (waveform plan + vectorized delay
extraction included).

Run:  python examples/spice_netlist_workflow.py
"""

import numpy as np

from repro import (
    LowRankReducer,
    StepInput,
    Study,
    assemble,
    finite_difference_sensitivities,
    parse_netlist,
    passivity_report,
    simulate_step,
)

# A small two-branch interconnect: driver shunt, two RC branches.
# {w} marks the geometry parameter (branch-1 wire width scale).
NETLIST_TEMPLATE = """
.title parsed-interconnect
Rdrv  in   0    25
R1    in   a1   {r1}
C1    a1   0    {c1}
R2    a1   a2   {r1}
C2    a2   0    {c1}
R3    in   b1   40
C3    b1   0    30f
R4    b1   b2   40
C4    b2   0    30f
.port drv in
.end
"""


def build(p):
    """Re-extract the circuit at relative width deviation p[0].

    Wider wire: resistance ~ 1/(1+p), area capacitance ~ (1+p).
    """
    width_scale = 1.0 + p[0]
    text = NETLIST_TEMPLATE.format(
        r1=60.0 / width_scale,
        c1=f"{50e-15 * width_scale:.6e}",
    )
    return assemble(parse_netlist(text))


def main():
    parametric = finite_difference_sensitivities(
        build, num_parameters=1, parameter_names=["branch1_width"]
    )
    print(f"parsed system: {parametric.order} states, "
          f"parameters: {parametric.parameter_names}")

    model = LowRankReducer(num_moments=3, rank=1).reduce(parametric)
    print(f"macromodel: {model.size} states")

    # Passivity certificate at several process corners.
    frequencies = np.logspace(7, 11, 9)
    for corner in (-0.3, 0.0, 0.3):
        system = model.instantiate([corner]).port_restricted()
        rep = passivity_report(system, frequencies=frequencies)
        print(f"  corner {corner:+.1f}: structurally passive = "
              f"{rep.is_structurally_passive}, positive-real (sampled) = "
              f"{rep.is_sampled_positive_real}")
        assert rep.is_structurally_passive and rep.is_sampled_positive_real

    # Transient: step-current response of the reduced vs full model.
    # The reduced side runs as an engine study -- a declarative step
    # stimulus over the corner scenario, with the 50% delay extracted
    # by the vectorized threshold kernel instead of by hand.
    corner = [0.3]
    full = parametric.instantiate(corner)
    tau = 1.0 / abs(full.poles(num=1)[0].real)
    t_final = 6 * tau
    full_step = simulate_step(full, t_final=t_final, num_steps=300)
    red_study = (
        Study(model)
        .scenarios(np.asarray([corner]))
        .transient(StepInput(), t_final=t_final, num_steps=300, keep_outputs=True)
        .run()
    )
    red_outputs = red_study.outputs[0, :, 0]
    worst = np.abs(full_step.outputs[:, 0] - red_outputs).max()
    scale = np.abs(full_step.outputs[:, 0]).max()
    print(f"\nstep response (corner +30%): worst |full - reduced| = "
          f"{worst / scale:.2e} of peak")
    assert worst / scale < 1e-3

    # 50% delay from the reduced model (steady-state-relative, per the
    # engine's amplitude-aware threshold semantics).
    print(f"50% step delay at +30% width corner: "
          f"{red_study.delays[0] * 1e12:.1f} ps")


if __name__ == "__main__":
    main()
