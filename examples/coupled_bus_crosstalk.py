"""Coupled-bus frequency response and crosstalk under variation (Section 5.2 style).

A two-bit bus (coupled 4-port RLC network) is reduced with the three
parametric methods the paper compares -- nominal projection, multi-point
expansion, and the low-rank Algorithm 1 -- and the models are scored on
the perturbed self-admittance |Y11| and the near-end crosstalk |Y13|
across 5-45 GHz.  Reproduces the Fig. 4 story at example scale and
prints the cost (factorization) ledger.

Run:  python examples/coupled_bus_crosstalk.py
"""

import numpy as np

from repro import (
    LowRankReducer,
    MultiPointReducer,
    NominalReducer,
    Study,
    coupled_rlc_bus,
    with_random_variations,
)
from repro.linalg import reset_factorization_count

FREQUENCIES = np.linspace(5e9, 4.5e10, 40)
CORNER = [0.3, -0.3]


def corner_responses(target):
    """``H`` at the process corner via the Study engine (any target).

    The same declaration serves the sparse full-order system (routed to
    the shared-pattern solver family) and every reduced model (routed
    to the dense batched kernels).
    """
    study = (
        Study(target)
        .scenarios(np.asarray([CORNER]))
        .sweep(FREQUENCIES, keep_responses=True)
    )
    return study.run().responses[0]


def entry_error(parametric, model, out_index, in_index):
    full = corner_responses(parametric)[:, out_index, in_index]
    red = corner_responses(model)[:, out_index, in_index]
    return np.abs(full - red).max() / np.abs(full).max()


def main():
    netlist = coupled_rlc_bus(num_lines=2, num_segments=60)
    parametric = with_random_variations(netlist, 2, seed=3, relative_spread=1.0)
    print(f"coupled bus: {parametric.order} MNA unknowns, 4 ports, "
          f"{parametric.num_parameters} variational sources\n")

    models = {}
    costs = {}
    reset_factorization_count()
    models["low-rank (Algorithm 1)"] = LowRankReducer(num_moments=13, rank=1).reduce(
        parametric
    )
    costs["low-rank (Algorithm 1)"] = reset_factorization_count()
    samples = [[0.0, 0.0], [0.35, 0.35], [-0.35, -0.35]]
    models["multi-point (3 samples)"] = MultiPointReducer(
        samples, num_moments=13
    ).reduce(parametric)
    costs["multi-point (3 samples)"] = reset_factorization_count()
    models["nominal projection"] = NominalReducer(num_moments=13).reduce(parametric)
    costs["nominal projection"] = reset_factorization_count()

    print(f"{'model':28s} {'size':>5s} {'factorizations':>15s} "
          f"{'|Y11| err':>10s} {'|Y13| err':>10s}")
    for label, model in models.items():
        err_self = entry_error(parametric, model, 0, 0)
        err_xtalk = entry_error(parametric, model, 2, 0)  # far line, near end
        print(f"{label:28s} {model.size:5d} {costs[label]:15d} "
              f"{err_self:10.2e} {err_xtalk:10.2e}")

    # The paper's Fig. 4 story.
    assert entry_error(parametric, models["low-rank (Algorithm 1)"], 0, 0) < 0.05
    assert costs["low-rank (Algorithm 1)"] == 1
    assert costs["multi-point (3 samples)"] == 3

    # Crosstalk peak movement under variation -- why parametric models
    # matter for signal integrity sign-off.  One engine study sweeps
    # both scenario points (nominal and corner) in a single batch.
    scenario_pair = (
        Study(parametric)
        .scenarios(np.array([[0.0, 0.0], CORNER]))
        .sweep(FREQUENCIES, keep_responses=True)
        .run()
    )
    y13_nominal = np.abs(scenario_pair.responses[0][:, 2, 0])
    y13_corner = np.abs(scenario_pair.responses[1][:, 2, 0])
    f_peak_nominal = FREQUENCIES[np.argmax(y13_nominal)]
    f_peak_corner = FREQUENCIES[np.argmax(y13_corner)]
    print(f"\ncrosstalk |Y13| peak: nominal {y13_nominal.max():.4f} at "
          f"{f_peak_nominal / 1e9:.1f} GHz, corner {y13_corner.max():.4f} at "
          f"{f_peak_corner / 1e9:.1f} GHz")
    print("-> a fixed nominal model would misplace the crosstalk peak; the")
    print("   parametric macromodel tracks it at every process corner.")


if __name__ == "__main__":
    main()
