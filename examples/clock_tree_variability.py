"""Clock-tree timing variability under metal width variation (Section 5.3 style).

A balanced clock tree is routed on an M5/M6/M7 metal stack; the three
variational parameters are the relative line-width deviations of the
layers, with sensitivities from the closed-form parasitic extraction
model.  The script:

1. builds the parametric clock tree and a low-rank macromodel,
2. runs a Monte Carlo study of the 5 dominant poles (the paper's
   Figs. 5-6 protocol) using the reduced model as a cheap surrogate --
   declared as a ``MonteCarloPlan`` and evaluated through the
   ``Study`` engine,
3. shows the resulting distribution of the dominant time constant --
   the quantity a timing engineer actually cares about -- and the
   surrogate's per-instance accuracy.

Run:  python examples/clock_tree_variability.py
"""

import numpy as np

from repro import LowRankReducer, MonteCarloPlan, Study, rcnet_b


def main():
    parametric = rcnet_b()
    print(f"clock tree RCNetB: {parametric.order} MNA unknowns, "
          f"parameters: {parametric.parameter_names}")

    model = LowRankReducer(num_moments=3, rank=1).reduce(parametric)
    print(f"parametric macromodel: {model.size} states\n")

    # Monte Carlo over +-30% (3 sigma) width variation: one declarative
    # plan drives the full-vs-reduced pole-accuracy study.  (The full
    # model's reference solves route through the engine's executor-full
    # shared-pattern path; pass `executor="process"` to parallelize.)
    instances = 60
    plan = MonteCarloPlan(num_instances=instances, three_sigma=0.3, seed=7)
    study = plan.study(parametric, model, num_poles=5)
    engine_route = Study(parametric).scenarios(plan).poles(5).plan()
    print(f"reference-solve route: {engine_route.route} [{engine_route.kernel}]")

    # Dominant time constants from the *reduced* model per instance.
    tau = 1.0 / np.abs(study.reduced_poles[:, 0].real)
    tau_nominal = 1.0 / abs(model.poles(np.zeros(3), num=1)[0].real)
    print(f"nominal dominant time constant: {tau_nominal * 1e12:.2f} ps")
    print(f"Monte Carlo ({instances} instances, 3 sigma = 30% width):")
    print(f"  mean tau : {tau.mean() * 1e12:.2f} ps")
    print(f"  std  tau : {tau.std() * 1e12:.3f} ps")
    print(f"  spread   : {tau.min() * 1e12:.2f} .. {tau.max() * 1e12:.2f} ps")

    # ASCII histogram of the dominant time constant.
    counts, edges = np.histogram(tau * 1e12, bins=10)
    print("\n  tau distribution (ps):")
    for i, count in enumerate(counts):
        bar = "#" * int(50 * count / max(counts.max(), 1))
        print(f"  {edges[i]:7.2f}..{edges[i + 1]:7.2f}  {bar} {count}")

    print(f"\nsurrogate accuracy: worst pole error over "
          f"{study.total_poles} pole comparisons = {study.max_error * 100:.2e}%")
    assert study.max_error < 1e-2

    # Which layer matters most?  Perturb each one alone by +30%.
    print("\nper-layer sensitivity of the dominant time constant:")
    for index, name in enumerate(parametric.parameter_names):
        point = np.zeros(3)
        point[index] = 0.3
        tau_shift = 1.0 / abs(model.poles(point, num=1)[0].real)
        delta = (tau_shift - tau_nominal) / tau_nominal
        print(f"  {name:10s} +30% width -> tau changes {delta * 100:+.2f}%")


if __name__ == "__main__":
    main()
