"""Result warehouse walkthrough: ingest, query, verify provenance.

A transient Monte Carlo study runs against a durable StudyStore with
the ``warehouse`` directive attached, so every chunk checkpoint is
converted into a partitioned columnar dataset the moment the study
completes.  The script then answers the three questions the warehouse
exists for -- parametric yield against a delay limit, a tail
percentile, and the worst-corner outliers with provenance -- checks
the aggregates against the in-RAM study result exactly, re-ingests
the store to demonstrate structural idempotency (zero new rows), and
re-verifies every row's ``chunk_sha256`` against the store manifest.

Works with or without the optional ``pyarrow``/``duckdb`` extras: the
dataset is Parquet when pyarrow is installed, dependency-free columnar
``.npz`` otherwise, and the aggregations are exact either way.

Run:  python examples/warehouse_query.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    LowRankReducer,
    MonteCarloPlan,
    Study,
    StudyStore,
    Warehouse,
    rc_tree,
    with_random_variations,
)
from repro.warehouse import QueryEngine

INSTANCES = 36
CHUNK = 6


def main() -> None:
    parametric = with_random_variations(rc_tree(40, seed=5), 2, seed=7)
    model = LowRankReducer(num_moments=3, rank=1).reduce(parametric)
    plan = MonteCarloPlan(num_instances=INSTANCES, seed=11)

    with tempfile.TemporaryDirectory() as root:
        store_dir = Path(root) / "store"
        wh_dir = Path(root) / "wh"

        # -- run: store checkpoints + ingest-on-completion -------------
        study = (
            Study(model)
            .scenarios(plan)
            .transient(num_steps=200)
            .chunk(CHUNK)
            .store(store_dir)
            .warehouse(wh_dir)
        )
        result = study.run()
        report = study.warehouse_report()
        print(f"ingested {report.chunks} chunks, "
              f"{report.rows_added} rows, {report.bytes_written} bytes")

        # -- query: yield, tail percentile, worst corners --------------
        engine = QueryEngine(wh_dir, memory_budget=32 * 2 ** 20)
        limit = float(np.median(result.delays))
        yield_report = engine.yield_fraction("delay", limit)
        print(f"yield at delay <= {limit:.3e}s: "
              f"{yield_report['passed']}/{yield_report['total']} "
              f"({100 * yield_report['fraction']:.1f}%)")

        p99 = engine.percentile("delay", 99.0)
        print(f"p99 delay: {p99['value']:.3e}s over {p99['count']} instances")
        assert p99["value"] == float(np.percentile(result.delays, 99.0)), \
            "warehouse percentile must equal the in-RAM result exactly"

        print("worst corners:")
        for row in engine.outliers("delay", k=3):
            print(f"  instance {row['instance']:3d}  "
                  f"delay {row['delay']:.3e}s  "
                  f"chunk {row['chunk']} ({row['source']}) "
                  f"sha {row['chunk_sha256'][:12]}...")

        # -- idempotency: re-ingest adds exactly zero rows -------------
        again = Warehouse(wh_dir).ingest_store(store_dir)
        assert again.rows_added == 0 and again.chunks == 0, \
            "re-ingest must be a structural no-op"
        print(f"re-ingest: {again.chunks} converted, "
              f"{again.skipped} skipped, {again.rows_added} rows added")

        # -- provenance: every row checks out against the manifest -----
        store = StudyStore(store_dir)
        key = store.study_keys()[0]
        manifest_shas = {
            record["index"]: record["sha256"]
            for record in store.lineage(key)
        }
        for row in engine.provenance():
            assert row["chunk_sha256"] == manifest_shas[row["chunk"]], \
                f"chunk {row['chunk']} provenance mismatch"
        print(f"provenance verified: {len(manifest_shas)} chunks match "
              "the store manifest sha256s")


if __name__ == "__main__":
    main()
