"""The study service: submit over HTTP, stream progress, hit the cache.

``repro.serve`` puts an async HTTP front end on the Study engine: a
client POSTs a *job document* -- netlist text, a scenario plan, and a
workload in the same declaration schema the CLI uses -- and gets a job
id back.  The server admits the job against a memory budget using the
plan's peak-bytes estimate, drains it through a shared StudyStore, and
content-addresses the finished response by study fingerprint.  This
example plays the whole loop in one process:

1. boot a server on an ephemeral port (the same thing
   ``repro serve DIR`` runs),
2. submit a Monte Carlo frequency-envelope job and follow its NDJSON
   progress stream (chunk spans bridged straight from ``repro.obs``),
3. submit the *identical* document again -- it comes back ``cached``,
   byte-identical, with zero recomputation (the study never runs;
   the bytes are served from the result index on disk),
4. show the provenance every response carries: the study's content
   fingerprint and the per-chunk SHA-256 lineage,
5. push the memory budget down and watch a too-large job get rejected
   at admission with the plan's estimate in the error body.

Run:  python examples/serve_client.py
"""

import asyncio
import json
import tempfile
import threading
from pathlib import Path

from repro.serve import ServeClient, ServeClientError, StudyServer, StudySupervisor

NETLIST = """
.title serve-demo
Rdrv n0 0 10
C0 n0 0 0.02p
R1 n0 n1 25
C1 n1 0 0.02p
R2 n1 n2 25
C2 n2 0 0.02p
R3 n2 n3 25
C3 n3 0 0.02p
.port in n0
"""

JOB = {
    "netlist": NETLIST,
    "parameters": 2,
    "moments": 3,
    "plan": {"kind": "montecarlo", "instances": 8, "seed": 7},
    "workload": {"kind": "sweep", "fmin": 1e7, "fmax": 1e10, "points": 12},
    "chunk": 2,
}


def boot_server(store_dir):
    """Start a StudyServer on an ephemeral port in a daemon thread."""
    supervisor = StudySupervisor(store_dir, pool_size=2)
    server = StudyServer(supervisor, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    threading.Thread(target=serve, daemon=True).start()
    if not started.wait(10.0):
        raise RuntimeError("server failed to start")
    return server, supervisor, loop


def main():
    workspace = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    server, supervisor, loop = boot_server(workspace / "store")
    client = ServeClient(server.url)
    print(f"server up on {server.url}")
    print(f"healthz: {client.healthz()}")

    # -- first submission: computed ------------------------------------
    job = client.submit(JOB)
    print(f"\nsubmitted {job['id']}  state: {job['state']}")
    chunk_events = 0
    for event in client.events(job["id"]):
        if event["event"] == "study.chunk":
            chunk_events += 1
            print(f"  chunk {event['chunks_done']}/{event['num_chunks']} "
                  f"({event['instances']} instances, "
                  f"{event['wall_seconds'] * 1e3:.1f} ms)")
    assert chunk_events > 0, "progress stream carried no chunk spans"
    first = client.wait(job["id"])
    assert first["state"] == "done" and not first["cached"]
    bytes_one = client.result_bytes(job["id"])
    document = json.loads(bytes_one)
    print(f"done: {len(bytes_one)} result bytes, "
          f"{document['result']['num_chunks']} chunks over "
          f"{document['result']['num_samples']} instances")

    # -- provenance: fingerprint + per-chunk lineage -------------------
    fingerprint = document["provenance"]["fingerprints"][0]
    lineage = document["provenance"]["lineage"][fingerprint["key"]]
    print(f"study fingerprint: {fingerprint['key'][:16]}…")
    for record in lineage:
        print(f"  chunk {record['index']}: rows [{record['lo']}, "
              f"{record['hi']})  sha256 {record['sha256'][:12]}…")

    # -- second submission: served from the result index ---------------
    again = client.submit(JOB)
    assert again["cached"] and again["state"] == "done"
    bytes_two = client.result_bytes(again["id"])
    assert bytes_two == bytes_one, "cached response must be byte-identical"
    print(f"\nresubmitted as {again['id']}: served from cache, "
          f"byte-identical ({len(bytes_two)} bytes, zero recompute)")

    # -- admission control ---------------------------------------------
    supervisor.memory_budget = 64
    try:
        client.submit({**JOB, "workload": {"kind": "sweep", "points": 40}})
        raise AssertionError("over-budget job must be rejected")
    except ServeClientError as rejection:
        assert rejection.status == 413
        print(f"\nover-budget job rejected: planned peak "
              f"{rejection.body['peak_bytes']} bytes > budget "
              f"{rejection.body['memory_budget']} bytes")
    finally:
        supervisor.memory_budget = None

    loop.call_soon_threadsafe(loop.stop)
    supervisor.shutdown(wait=True)
    print("\nall service checks passed")


if __name__ == "__main__":
    main()
