"""Quickstart: build a variational interconnect model in ~30 lines.

Covers the core workflow of the library:

1. describe a circuit (here: an RC ladder from the builder API),
2. attach process-variation sensitivities,
3. reduce with the paper's low-rank algorithm (Algorithm 1),
4. evaluate the tiny parametric macromodel through the declarative
   ``Study`` engine -- the runtime's one entry point -- and check it
   against the full model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LowRankReducer, Study, rc_ladder, with_random_variations


def main():
    # 1. A 200-segment RC ladder netlist (one current port, one
    #    far-end observation), plus two random variational sources that
    #    perturb every R and C value ("metal width" and "dielectric"
    #    style variation).
    netlist = rc_ladder(200, resistance=12.0, capacitance=1.5e-14)
    parametric = with_random_variations(netlist, 2, seed=1, relative_spread=0.5)
    print(f"full model:    {parametric.order} states, "
          f"{parametric.num_parameters} variational parameters")

    # 2. One call builds the parametric reduced-order model: one sparse
    #    LU of G0, a rank-1 implicit SVD per sensitivity, a handful of
    #    Krylov subspaces, and congruence transforms (Algorithm 1).
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    print(f"reduced model: {model.size} states "
          f"(matches multi-parameter moments to 4th order)\n")

    # 3. Evaluate both models across frequency at a +-40% process corner
    #    through the Study engine (one declarative front door; it routes
    #    the reduced model to the dense batched kernels and the sparse
    #    full-order system to the shared-pattern solver family).
    frequencies = np.logspace(7, 10, 7)
    corner = np.array([[0.4, -0.4]])
    full_study = (
        Study(parametric).scenarios(corner)
        .sweep(frequencies, keep_responses=True)
    )
    print(f"full-model route:    {full_study.plan().route} "
          f"[{full_study.plan().kernel}]")
    reduced_study = (
        Study(model).scenarios(corner)
        .sweep(frequencies, keep_responses=True)
    )
    print(f"reduced-model route: {reduced_study.plan().route} "
          f"[{reduced_study.plan().kernel}]\n")
    full = full_study.run().responses[0]
    reduced = reduced_study.run().responses[0]

    print("      f (Hz)     |Z_full|    |Z_reduced|   rel.err")
    for i, f in enumerate(frequencies):
        z_full = abs(full[i, 0, 0])
        z_red = abs(reduced[i, 0, 0])
        print(f"  {f:10.3e}  {z_full:10.4f}  {z_red:12.4f}   {abs(z_full - z_red) / z_full:.2e}")

    worst = np.abs(full - reduced).max() / np.abs(full).max()
    print(f"\nworst-case relative error over the sweep: {worst:.2e}")
    assert worst < 1e-2


if __name__ == "__main__":
    main()
