"""Property-based tests on the reducers themselves.

These push randomized circuits and variational directions through the
full reduction pipeline and assert the *defining invariants* of each
method -- moment matching, passivity structure, size bounds --
independent of any particular workload.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Netlist, assemble, with_random_variations
from repro.core import (
    GeneralizedParameterization,
    LowRankReducer,
    MultiPointReducer,
    NominalReducer,
    SinglePointReducer,
    low_rank_size,
    output_moments,
    single_point_size,
)

REDUCER_SETTINGS = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_parametric(draw):
    """A random RC ladder-with-stubs circuit plus 1-2 random sources."""
    segments = draw(st.integers(min_value=4, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_parameters = draw(st.integers(min_value=1, max_value=2))
    rng = np.random.default_rng(seed)
    net = Netlist(f"prop-{seed}")
    net.resistor("Rdrv", "n0", "0", float(rng.uniform(1.0, 50.0)))
    for j in range(segments):
        net.resistor(f"R{j}", f"n{j}", f"n{j + 1}", float(rng.uniform(5.0, 50.0)))
        net.capacitor(f"C{j}", f"n{j + 1}", "0", float(rng.uniform(1e-15, 1e-13)))
        if rng.random() < 0.4:
            net.resistor(f"Rs{j}", f"n{j + 1}", f"s{j}", float(rng.uniform(5.0, 50.0)))
            net.capacitor(f"Cs{j}", f"s{j}", "0", float(rng.uniform(1e-15, 1e-13)))
    net.current_port("in", "n0")
    return with_random_variations(net, num_parameters, seed=seed + 1,
                                  relative_spread=0.5)


def worst_moment_mismatch(parametric, model, order):
    full = output_moments(GeneralizedParameterization(parametric), order)
    red = output_moments(GeneralizedParameterization(model), order)
    worst = 0.0
    for alpha, block in full.items():
        scale = max(np.abs(block).max(), 1e-300)
        worst = max(worst, np.abs(block - red[alpha]).max() / scale)
    return worst


class TestSinglePointInvariants:
    @REDUCER_SETTINGS
    @given(random_parametric(), st.integers(min_value=0, max_value=2))
    def test_moment_matching_always_holds(self, parametric, order):
        model = SinglePointReducer(total_order=order).reduce(parametric)
        assert worst_moment_mismatch(parametric, model, order) < 1e-8

    @REDUCER_SETTINGS
    @given(random_parametric(), st.integers(min_value=1, max_value=3))
    def test_size_bound_always_holds(self, parametric, order):
        model = SinglePointReducer(total_order=order).reduce(parametric)
        assert model.size <= single_point_size(
            order, parametric.num_parameters, parametric.nominal.num_inputs
        )


class TestLowRankInvariants:
    @REDUCER_SETTINGS
    @given(
        random_parametric(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    def test_size_bound_and_passivity(self, parametric, order, rank):
        model = LowRankReducer(num_moments=order, rank=rank).reduce(parametric)
        assert model.size <= low_rank_size(
            order, parametric.num_parameters, parametric.nominal.num_inputs,
            rank=rank,
        )
        # Structural passivity at a random-ish interior point.
        margin = model.passivity_structure_margin(
            [0.3] * parametric.num_parameters
        )
        assert margin >= -1e-9

    @REDUCER_SETTINGS
    @given(random_parametric())
    def test_nominal_subspace_always_contained(self, parametric):
        """V always reproduces the nominal PRIMA response at least as
        well as the same-order nominal model (V0 is a subset)."""
        frequencies = np.logspace(7, 10, 6)
        zero = [0.0] * parametric.num_parameters
        full = parametric.instantiate(zero).frequency_response(frequencies)[:, 0, 0]
        low_rank = LowRankReducer(num_moments=3, rank=1).reduce(parametric)
        nominal = NominalReducer(num_moments=3).reduce(parametric)

        def err(model):
            red = model.frequency_response(frequencies, zero)[:, 0, 0]
            return np.abs(full - red).max() / np.abs(full).max()

        assert err(low_rank) <= err(nominal) * 1.001 + 1e-12


class TestMultiPointInvariants:
    @REDUCER_SETTINGS
    @given(random_parametric(), st.integers(min_value=1, max_value=3))
    def test_exact_at_every_sample(self, parametric, moments):
        from repro.baselines import transfer_moments

        half = 0.4
        samples = np.vstack(
            [
                np.zeros(parametric.num_parameters),
                half * np.ones(parametric.num_parameters),
            ]
        )
        model = MultiPointReducer(samples, num_moments=moments).reduce(parametric)
        for point in samples:
            mf = transfer_moments(parametric.instantiate(point), moments)
            mr = transfer_moments(model.instantiate(point), moments)
            for k in range(moments):
                scale = max(np.abs(mf[k]).max(), 1e-300)
                np.testing.assert_allclose(mr[k], mf[k], atol=1e-7 * scale)
