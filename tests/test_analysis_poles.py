"""Tests for dominant-pole analysis."""

import numpy as np
import pytest

from repro.analysis import dominant_poles, match_poles, pole_error_grid
from repro.core import LowRankReducer


@pytest.fixture(scope="module")
def pair():
    from repro.circuits import rcnet_a

    parametric = rcnet_a()
    model = LowRankReducer(num_moments=4, rank=1).reduce(parametric)
    return parametric, model


class TestDominantPoles:
    def test_full_parametric_at_point(self, pair):
        parametric, _ = pair
        poles = dominant_poles(parametric, 5, p=[0.1, 0.0, -0.1])
        assert poles.shape == (5,)
        assert np.all(np.abs(poles) == np.sort(np.abs(poles)))

    def test_plain_system_requires_no_point(self, ladder_system):
        poles = dominant_poles(ladder_system, 3)
        assert poles.shape == (3,)

    def test_plain_system_with_point_rejected(self, ladder_system):
        with pytest.raises(TypeError, match="not parametric"):
            dominant_poles(ladder_system, 3, p=[0.1])


class TestMatchPoles:
    def test_reduced_tracks_full(self, pair):
        parametric, model = pair
        errors, full_poles, matched = match_poles(parametric, model, [0.2, -0.2, 0.1], 5)
        assert errors.shape == (5,)
        assert errors.max() < 1e-2  # paper reports < 0.3% for RCNetA/B
        assert full_poles.shape == matched.shape == (5,)

    def test_errors_grow_with_excursion(self, pair):
        parametric, model = pair
        small, _, _ = match_poles(parametric, model, [0.0, 0.0, 0.0], 3)
        large, _, _ = match_poles(parametric, model, [0.3, 0.3, 0.3], 3)
        assert small.max() <= large.max() + 1e-12


class TestErrorGrid:
    def test_grid_shape_and_symmetry_structure(self, pair):
        parametric, model = pair
        axis = np.array([-0.3, 0.0, 0.3])
        grid = pole_error_grid(
            parametric, model, axis, vary_indices=(0, 1), fixed_point=[0.0, 0.0, 0.0]
        )
        assert grid.shape == (3, 3)
        assert np.all(grid >= 0)
        # Center of the grid = nominal point: error should be smallest
        # (or at least not the worst).
        assert grid[1, 1] <= grid.max()

    def test_fixed_parameter_respected(self, pair):
        # Use a deliberately coarse model so the grid errors are well
        # above numerical noise, then check the fixed (third) parameter
        # actually influences the error surface.
        parametric, _ = pair
        coarse = LowRankReducer(num_moments=1, rank=1).reduce(parametric)
        axis = np.array([-0.3, 0.3])
        grid_lo = pole_error_grid(
            parametric, coarse, axis, (0, 1), fixed_point=[0.0, 0.0, -0.3]
        )
        grid_hi = pole_error_grid(
            parametric, coarse, axis, (0, 1), fixed_point=[0.0, 0.0, +0.3]
        )
        assert grid_lo.max() > 1e-10
        relative_gap = np.abs(grid_lo - grid_hi).max() / grid_lo.max()
        assert relative_gap > 1e-3
