"""Tests for the SPICE-like netlist parser."""

import numpy as np
import pytest

from repro.circuits import assemble, parse_netlist
from repro.circuits.parser import NetlistSyntaxError, parse_value


class TestValues:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("10", 10.0),
            ("1.5", 1.5),
            ("2e-12", 2e-12),
            ("10k", 1e4),
            ("1.5p", 1.5e-12),
            ("10pF", 10e-12),
            ("3n", 3e-9),
            ("2u", 2e-6),
            ("5m", 5e-3),
            ("4MEG", 4e6),
            ("1g", 1e9),
            ("2f", 2e-15),
            ("-3.5k", -3500.0),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    @pytest.mark.parametrize("token", ["", "abc", "1..2", "k10"])
    def test_invalid_values(self, token):
        with pytest.raises(ValueError):
            parse_value(token)


NETLIST = """
* an RC divider
.title demo
R1 in mid 1k
R2 mid 0 1k   ; load
C1 mid gnd 1p
.port P1 in
.observe out mid
.end
this line is ignored after .end
"""


class TestParsing:
    def test_elements_parsed(self):
        net = parse_netlist(NETLIST)
        assert net.title == "demo"
        assert len(net.resistors) == 2
        assert net.resistors[0].value == pytest.approx(1000.0)
        assert len(net.capacitors) == 1
        assert net.capacitors[0].node_b == "0"  # gnd alias collapsed
        assert len(net.current_ports) == 1
        assert len(net.observations) == 1

    def test_assembles_and_solves(self):
        system = assemble(parse_netlist(NETLIST))
        # DC: port sees R1 + R2 = 2k.
        np.testing.assert_allclose(system.dc_gain()[0, 0], 2000.0, rtol=1e-12)

    def test_iterable_of_lines(self):
        net = parse_netlist(["R1 a 0 50", ".port P a"])
        assert net.resistors[0].value == 50.0

    def test_inductor_and_mutual(self):
        text = """
        R1 a 0 10
        L1 a b 1n
        L2 a c 1n
        K1 L1 L2 0.4
        C1 b 0 1p
        C2 c 0 1p
        .port P a
        """
        net = parse_netlist(text)
        assert len(net.inductors) == 2
        assert net.mutuals[0].coupling == pytest.approx(0.4)

    def test_voltage_source(self):
        net = parse_netlist(["V1 in 0", "R1 in out 1k", "C1 out 0 1p", ".observe y out"])
        assert len(net.voltage_sources) == 1
        system = assemble(net)
        np.testing.assert_allclose(system.dc_gain()[0, 0], 1.0, rtol=1e-12)


class TestErrors:
    def test_unknown_element(self):
        with pytest.raises(NetlistSyntaxError, match="unknown element"):
            parse_netlist(["Q1 a b c"])

    def test_unknown_directive(self):
        with pytest.raises(NetlistSyntaxError, match="unknown directive"):
            parse_netlist([".foo bar"])

    def test_missing_fields(self):
        with pytest.raises(NetlistSyntaxError, match="expected at least"):
            parse_netlist(["R1 a b"])

    def test_bad_value_reports_line_number(self):
        with pytest.raises(NetlistSyntaxError) as excinfo:
            parse_netlist(["* comment", "R1 a b notanumber"])
        assert excinfo.value.line_number == 2

    def test_duplicate_name_propagates(self):
        with pytest.raises(NetlistSyntaxError, match="duplicate"):
            parse_netlist(["R1 a 0 1", "R1 b 0 1"])
