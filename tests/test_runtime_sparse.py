"""Tests for the sparse shared-pattern runtime (full-order batching)."""

import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits import (
    power_grid_mesh,
    rc_ladder,
    rc_tree,
    with_random_variations,
)
from repro.circuits.statespace import DescriptorSystem
from repro.circuits.variational import ParametricSystem
from repro.core import LowRankReducer
from repro.runtime import (
    SparsePatternFamily,
    shared_pattern_family,
    supports_sparse_batching,
)

FREQUENCIES = np.logspace(7, 10, 4)


def ladder_parametric(num_segments=40, num_parameters=2):
    return with_random_variations(rc_ladder(num_segments), num_parameters, seed=3)


def mesh_parametric():
    return with_random_variations(power_grid_mesh(5, 24), 2, seed=3)


def tree_parametric():
    return with_random_variations(rc_tree(220, seed=7), 2, seed=3)


def samples_for(model, num=5, seed=11):
    rng = np.random.default_rng(seed)
    matrix = 0.25 * rng.standard_normal((num, model.num_parameters))
    matrix[0] = 0.0  # include the nominal point (zero coefficients)
    return matrix


class TestSupportsSparseBatching:
    def test_sparse_parametric_system(self):
        assert supports_sparse_batching(ladder_parametric())

    def test_dense_reduced_model_is_not_sparse(self):
        model = LowRankReducer(num_moments=2, rank=1).reduce(ladder_parametric())
        assert not supports_sparse_batching(model)

    def test_non_parametric_object(self):
        assert not supports_sparse_batching(object())

    def test_mixed_sparse_dense_model_rejected(self):
        """Sparse G but dense C/dG/dC must not pass the gate.

        Such a model previously slipped through (only ``nominal.G`` was
        checked) and crashed inside the family; it belongs on the
        per-sample fallback path instead.
        """
        base = ladder_parametric(num_segments=6)
        mixed = ParametricSystem(
            DescriptorSystem(
                base.nominal.G,
                base.nominal.C.toarray(),
                np.asarray(base.nominal.B.toarray()),
                np.asarray(base.nominal.L.toarray()),
            ),
            [m.toarray() for m in base.dG],
            [m.toarray() for m in base.dC],
        )
        assert not supports_sparse_batching(mixed)
        with pytest.raises(ValueError, match="sparse parametric"):
            SparsePatternFamily(mixed)


class TestSolverSelection:
    def test_ladder_is_tridiagonal(self):
        family = SparsePatternFamily(ladder_parametric())
        assert family.solver_kind == "tridiagonal"
        assert family.bandwidth == 1

    def test_mesh_is_banded(self):
        family = SparsePatternFamily(mesh_parametric())
        assert family.solver_kind == "banded"
        assert 1 < family.bandwidth <= 32

    def test_wide_pattern_falls_back_to_superlu(self):
        family = SparsePatternFamily(tree_parametric())
        assert family.solver_kind in ("banded", "superlu")
        forced = SparsePatternFamily(tree_parametric(), max_bandwidth=0)
        assert forced.solver_kind == "superlu"

    def test_rejects_dense_models(self):
        model = LowRankReducer(num_moments=2, rank=1).reduce(ladder_parametric())
        with pytest.raises(ValueError, match="sparse parametric"):
            SparsePatternFamily(model)


class TestInstantiateBitIdentity:
    @pytest.mark.parametrize(
        "make_model", [ladder_parametric, mesh_parametric, tree_parametric]
    )
    def test_matches_scalar_path_bitwise(self, make_model):
        model = make_model()
        family = SparsePatternFamily(model)
        for point in samples_for(model):
            reference = model.instantiate(point)
            fast = family.instantiate(point)
            np.testing.assert_array_equal(fast.G.toarray(), reference.G.toarray())
            np.testing.assert_array_equal(fast.C.toarray(), reference.C.toarray())

    def test_batch_data_exact_matches_scalar_path(self):
        model = ladder_parametric()
        family = SparsePatternFamily(model)
        samples = samples_for(model)
        g_data, c_data = family.batch_data(samples, exact=True)
        for k, point in enumerate(samples):
            reference = model.instantiate(point)
            np.testing.assert_array_equal(
                family.matrix_from_data(g_data[k]).toarray(), reference.G.toarray()
            )
            np.testing.assert_array_equal(
                family.matrix_from_data(c_data[k]).toarray(), reference.C.toarray()
            )

    def test_einsum_batch_data_matches_exact(self):
        model = mesh_parametric()
        family = SparsePatternFamily(model)
        samples = samples_for(model)
        g_exact, c_exact = family.batch_data(samples, exact=True)
        g_fast, c_fast = family.batch_data(samples, exact=False)
        scale = max(np.abs(g_exact).max(), np.abs(c_exact).max())
        assert np.abs(g_fast - g_exact).max() <= 1e-12 * scale
        assert np.abs(c_fast - c_exact).max() <= 1e-12 * scale

    def test_rejects_bad_point_shape(self):
        family = SparsePatternFamily(ladder_parametric())
        with pytest.raises(ValueError, match="parameter point"):
            family.instantiate([0.1, 0.2, 0.3])


class TestPencilSolvers:
    @pytest.mark.parametrize(
        "make_model,expected_kind",
        [
            (ladder_parametric, "tridiagonal"),
            (mesh_parametric, "banded"),
            (tree_parametric, None),
        ],
    )
    def test_frequency_response_matches_loop(self, make_model, expected_kind):
        model = make_model()
        family = SparsePatternFamily(model)
        if expected_kind is not None:
            assert family.solver_kind == expected_kind
        samples = samples_for(model)
        batched = family.frequency_response(FREQUENCIES, samples)
        for k, point in enumerate(samples):
            reference = model.instantiate(point).frequency_response(FREQUENCIES)
            scale = np.abs(reference).max()
            assert np.abs(batched[k] - reference).max() <= 1e-10 * scale

    def test_forced_superlu_matches_loop(self):
        model = ladder_parametric()
        family = SparsePatternFamily(model, max_bandwidth=0)
        assert family.solver_kind == "superlu"
        samples = samples_for(model, num=3)
        batched = family.frequency_response(FREQUENCIES, samples)
        for k, point in enumerate(samples):
            reference = model.instantiate(point).frequency_response(FREQUENCIES)
            scale = np.abs(reference).max()
            assert np.abs(batched[k] - reference).max() <= 1e-10 * scale

    def test_transfer_matches_loop(self):
        model = ladder_parametric()
        samples = samples_for(model)
        s = 2j * np.pi * 1e9
        batched = shared_pattern_family(model).transfer(s, samples)
        for k, point in enumerate(samples):
            reference = model.transfer(s, point)
            scale = np.abs(reference).max()
            assert np.abs(batched[k] - reference).max() <= 1e-10 * scale

    def test_module_level_frequency_response(self):
        model = mesh_parametric()
        samples = samples_for(model, num=2)
        batched = shared_pattern_family(model).frequency_response(FREQUENCIES, samples)
        assert batched.shape == (
            2,
            FREQUENCIES.size,
            model.nominal.num_outputs,
            model.nominal.num_inputs,
        )

    def test_singular_pencil_raises(self):
        zero_g = sp.csr_matrix((2, 2))
        c0 = sp.identity(2, format="csr")
        b = np.array([[1.0], [0.0]])
        nominal = DescriptorSystem(zero_g, c0, b, b, title="singular")
        model = ParametricSystem(
            nominal, [sp.csr_matrix((2, 2))], [sp.csr_matrix((2, 2))]
        )
        family = SparsePatternFamily(model)
        with pytest.raises(RuntimeError, match="singular"):
            # At f = 0 the pencil degenerates to the all-zero G.
            family.frequency_response([0.0], [[0.0]])


class TestFamilyLifecycle:
    def test_shared_pattern_family_is_memoized(self):
        model = ladder_parametric()
        first = shared_pattern_family(model)
        assert shared_pattern_family(model) is first

    def test_pickle_roundtrip_superlu(self):
        model = tree_parametric()
        family = SparsePatternFamily(model, max_bandwidth=0)
        samples = samples_for(model, num=2)
        reference = family.frequency_response(FREQUENCIES, samples)
        clone = pickle.loads(pickle.dumps(family))
        restored = clone.frequency_response(FREQUENCIES, samples)
        scale = np.abs(reference).max()
        assert np.abs(restored - reference).max() <= 1e-12 * scale

    def test_pickle_roundtrip_tridiagonal(self):
        model = ladder_parametric()
        family = SparsePatternFamily(model)
        samples = samples_for(model, num=2)
        reference = family.frequency_response(FREQUENCIES, samples)
        clone = pickle.loads(pickle.dumps(family))
        restored = clone.frequency_response(FREQUENCIES, samples)
        np.testing.assert_array_equal(restored, reference)

    def test_repr_mentions_solver(self):
        family = SparsePatternFamily(ladder_parametric())
        text = repr(family)
        assert "tridiagonal" in text and "nnz" in text
