"""Thread-safety hammer for the process-global plan cache.

The ``repro.serve`` worker pool plans studies from concurrent threads,
so the ``_PLAN_CACHE`` OrderedDict in :mod:`repro.runtime.engine` is
hit with interleaved get / move_to_end / insert / popitem sequences.
These tests drive that interleaving hard and assert the cache neither
corrupts nor miscounts.
"""

import random
import threading

import numpy as np
import pytest

from repro.circuits import rcnet_a
from repro.core import LowRankReducer
from repro.obs import metrics as obs_metrics
from repro.runtime import Study
from repro.runtime import engine as engine_module

THREADS = 8
ROUNDS = 30


@pytest.fixture(scope="module")
def model():
    return LowRankReducer(num_moments=3, rank=1).reduce(rcnet_a())


def _declarations(model, count):
    """``count`` distinct cacheable declarations (unique sample plans)."""
    from repro.runtime import MonteCarloPlan

    freqs = np.logspace(7, 10, 7)
    return [
        lambda seed=seed: (
            Study(model)
            .scenarios(MonteCarloPlan(num_instances=4, seed=seed))
            .sweep(freqs)
        )
        for seed in range(count)
    ]


def _hammer(model, num_declarations, monkeypatch=None, limit=None):
    """Run THREADS threads planning mixed declarations; return telemetry."""
    if limit is not None:
        monkeypatch.setattr(engine_module, "_PLAN_CACHE_LIMIT", limit)
    declarations = _declarations(model, num_declarations)
    # Warm nothing: start from a clean cache so hit/miss accounting is
    # exact for this run.
    with engine_module._PLAN_CACHE_LOCK:
        engine_module._PLAN_CACHE.clear()
    hits = obs_metrics.counter("engine.plan_cache.hits")
    misses = obs_metrics.counter("engine.plan_cache.misses")
    h0, m0 = hits.value, misses.value

    plans = [[] for _ in range(THREADS)]
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(slot):
        rng = random.Random(slot)
        order = [
            declaration
            for _ in range(ROUNDS)
            for declaration in rng.sample(declarations, len(declarations))
        ]
        barrier.wait()
        try:
            for declaration in order:
                plans[slot].append(declaration().plan())
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    total_calls = THREADS * ROUNDS * num_declarations
    return {
        "plans": plans,
        "hits": hits.value - h0,
        "misses": misses.value - m0,
        "total_calls": total_calls,
    }


class TestPlanCacheThreadSafety:
    def test_counters_sum_to_calls_and_no_corruption(self, model):
        telemetry = _hammer(model, num_declarations=6)
        # Every plan() call is tallied exactly once: a hit or a miss.
        assert telemetry["hits"] + telemetry["misses"] == telemetry["total_calls"]
        # At least one miss per declaration; duplicate builds (two
        # threads racing the same cold key) are allowed, a stale or
        # lost entry is not: misses stay far below total calls.
        assert telemetry["misses"] >= 6
        assert telemetry["hits"] > 0
        # The OrderedDict survived: iterable, consistent, within limit.
        with engine_module._PLAN_CACHE_LOCK:
            keys = list(engine_module._PLAN_CACHE)
            assert len(keys) == len(set(keys))
            assert len(keys) <= engine_module._PLAN_CACHE_LIMIT
            for key in keys:
                assert engine_module._PLAN_CACHE[key] is not None

    def test_same_declaration_yields_equivalent_plans(self, model):
        telemetry = _hammer(model, num_declarations=3)
        # Group each thread's plans by fingerprint of the declaration
        # they came from: within a group every plan must be routed
        # identically (duplicate builds produce equal, not divergent,
        # plans).
        by_key = {}
        for plan_list in telemetry["plans"]:
            for plan in plan_list:
                signature = (plan.num_samples, plan.route, plan.kernel,
                             plan.num_chunks, plan.estimated_peak_bytes)
                by_key.setdefault(plan.num_samples, set()).add(signature)
        for signatures in by_key.values():
            assert len(signatures) == 1

    def test_eviction_churn_under_tiny_limit(self, model, monkeypatch):
        """Concurrent insert/popitem churn with limit << working set."""
        telemetry = _hammer(
            model, num_declarations=6, monkeypatch=monkeypatch, limit=2
        )
        assert telemetry["hits"] + telemetry["misses"] == telemetry["total_calls"]
        with engine_module._PLAN_CACHE_LOCK:
            assert len(engine_module._PLAN_CACHE) <= 2
