"""Integration tests: miniature versions of the paper's experiments.

Each test runs a scaled-down version of a Section 5 experiment
end-to-end (generator -> reducers -> analysis) and asserts the *shape*
of the paper's result: accuracy ordering between methods, cost
ordering, and error magnitudes.  The full-scale versions live in
benchmarks/.
"""

import numpy as np
import pytest

from repro.analysis import (
    compare_frequency_responses,
    monte_carlo_pole_study,
    pole_error_grid,
    sweep,
)
from repro.circuits import (
    assemble,
    clock_tree,
    coupled_rlc_bus,
    rc_tree,
    with_random_variations,
)
from repro.core import (
    LowRankReducer,
    MultiPointReducer,
    NominalReducer,
    SinglePointReducer,
    factorial_grid,
)
from repro.linalg import factorization_count, reset_factorization_count


@pytest.fixture(scope="module")
def mini_rc():
    """Scaled-down Section 5.1: RC net with two random sources.

    Spread 0.5 keeps conductances positive over the full +-0.8 box
    (two overlapping value-based sources; see rc_network_767).
    """
    return with_random_variations(
        rc_tree(120, seed=2005), 2, seed=2006, relative_spread=0.5
    )


@pytest.fixture(scope="module")
def mini_bus():
    """Scaled-down Section 5.2: coupled 4-port RLC bus."""
    net = coupled_rlc_bus(num_lines=2, num_segments=24)
    return with_random_variations(net, 2, seed=2007, relative_spread=0.5)


@pytest.fixture(scope="module")
def mini_clock():
    """Scaled-down Section 5.3: clock tree with 3 width parameters."""
    return clock_tree(level_segments=(2, 2, 2), level_layers=("M7", "M6", "M5"))


class TestFig3Shape:
    """RC net: low-rank and multi-point track the perturbed system;
    the nominal projection is the worst of the three."""

    def test_accuracy_ordering(self, mini_rc):
        frequencies = np.logspace(7, 10, 31)
        point = [0.7, 0.7]  # the paper injects up to 70% variation
        reference = sweep(mini_rc, frequencies, p=point, label="perturbed full")

        low_rank = LowRankReducer(num_moments=4, rank=1).reduce(mini_rc)
        multi_point = MultiPointReducer(
            factorial_grid(2, 3, 0.8), num_moments=4
        ).reduce(mini_rc)
        nominal = NominalReducer(num_moments=8).reduce(mini_rc)

        comparison = compare_frequency_responses(
            reference,
            {
                "nominal-projection": sweep(nominal, frequencies, p=point),
                "low-rank": sweep(low_rank, frequencies, p=point),
                "multi-point": sweep(multi_point, frequencies, p=point),
            },
        )
        errors = comparison.linf_errors
        assert errors["low-rank"] < errors["nominal-projection"]
        assert errors["multi-point"] < errors["nominal-projection"]
        assert errors["low-rank"] < 0.01  # visually indistinguishable
        assert errors["multi-point"] < 0.01

    def test_cost_ordering(self, mini_rc):
        reset_factorization_count()
        LowRankReducer(num_moments=4, rank=1).reduce(mini_rc)
        low_rank_cost = reset_factorization_count()
        MultiPointReducer(factorial_grid(2, 3, 0.8), num_moments=4).reduce(mini_rc)
        multi_point_cost = reset_factorization_count()
        assert low_rank_cost == 1
        assert multi_point_cost == 9


class TestFig4Shape:
    """RLC bus: frequency response is much more variation-sensitive;
    nominal projection is 'far from adequate' while low-rank tracks."""

    def test_rlc_more_sensitive_than_rc(self, mini_rc, mini_bus):
        point = [0.3, 0.3]

        def sensitivity(parametric, lo, hi):
            freqs = np.linspace(lo, hi, 15)
            nominal = parametric.instantiate([0.0, 0.0]).frequency_response(freqs)[:, 0, 0]
            perturbed = parametric.instantiate(point).frequency_response(freqs)[:, 0, 0]
            return np.abs(nominal - perturbed).max() / np.abs(nominal).max()

        assert sensitivity(mini_bus, 2e9, 3e10) > sensitivity(mini_rc, 1e7, 1e10)

    def test_low_rank_tracks_bus_y11(self, mini_bus):
        frequencies = np.linspace(2e9, 3e10, 25)
        point = [0.3, -0.3]
        model = LowRankReducer(num_moments=10, rank=1).reduce(mini_bus)
        full = mini_bus.instantiate(point).frequency_response(frequencies)[:, 0, 0]
        red = model.frequency_response(frequencies, point)[:, 0, 0]
        nominal = NominalReducer(num_moments=10).reduce(mini_bus)
        red_nom = nominal.frequency_response(frequencies, point)[:, 0, 0]
        err_lr = np.abs(full - red).max() / np.abs(full).max()
        err_nom = np.abs(full - red_nom).max() / np.abs(full).max()
        assert err_lr < err_nom
        assert err_lr < 0.05


class TestFig56Shape:
    """Clock trees: pole errors tiny across MC instances and the grid."""

    def test_monte_carlo_pole_errors(self, mini_clock):
        model = LowRankReducer(num_moments=4, rank=1).reduce(mini_clock)
        study = monte_carlo_pole_study(
            mini_clock, model, num_instances=25, num_poles=5, three_sigma=0.3, seed=5
        )
        # Paper: max error < 0.12% (RCNetB); we assert the same regime.
        assert study.max_error < 0.005

    def test_error_grid_bounded(self, mini_clock):
        model = LowRankReducer(num_moments=4, rank=1).reduce(mini_clock)
        axis = np.linspace(-0.3, 0.3, 5)
        grid = pole_error_grid(
            mini_clock, model, axis, vary_indices=(0, 1),
            fixed_point=np.zeros(mini_clock.num_parameters),
        )
        assert grid.max() < 0.003  # paper: < 0.3%


class TestMethodConsistency:
    """All four reducers agree at the nominal point (where they all
    match nominal moments) and differ in parameter tracking."""

    def test_nominal_agreement(self, mini_rc):
        frequencies = np.logspace(7, 9, 9)
        zero = [0.0, 0.0]
        full = mini_rc.instantiate(zero).frequency_response(frequencies)[:, 0, 0]
        models = {
            "low-rank": LowRankReducer(num_moments=4).reduce(mini_rc),
            "multi-point": MultiPointReducer(
                factorial_grid(2, 2, 0.5), num_moments=4
            ).reduce(mini_rc),
            "single-point": SinglePointReducer(total_order=3).reduce(mini_rc),
            "nominal": NominalReducer(num_moments=4).reduce(mini_rc),
        }
        for label, model in models.items():
            red = model.frequency_response(frequencies, zero)[:, 0, 0]
            error = np.abs(full - red).max() / np.abs(full).max()
            assert error < 1e-3, f"{label}: {error}"

    def test_size_ordering_matches_section_3(self, mini_rc):
        """Single-point >= low-rank for comparable total order (the
        cross-term blow-up of Section 3.2)."""
        single = SinglePointReducer(total_order=4).reduce(mini_rc)
        low_rank = LowRankReducer(num_moments=4, rank=1).reduce(mini_rc)
        assert single.size > low_rank.size


class TestNetlistRoundTrip:
    """Parser -> MNA -> reduction, end to end from text."""

    def test_text_to_reduced_model(self):
        lines = ["* generated ladder", ".title roundtrip", "Rdrv n0 0 10"]
        for j in range(12):
            lines.append(f"R{j} n{j} n{j + 1} 25")
            lines.append(f"C{j} n{j + 1} 0 0.02p")
        lines.append(".port in n0")
        from repro.circuits import parse_netlist
        from repro.baselines import prima

        system = assemble(parse_netlist("\n".join(lines)))
        assert system.title == "roundtrip"
        reduced, _ = prima(system, 5)
        freqs = np.logspace(8, 10, 7)
        full = system.frequency_response(freqs)[:, 0, 0]
        red = reduced.frequency_response(freqs)[:, 0, 0]
        assert np.abs(full - red).max() / np.abs(full).max() < 1e-6
