"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens of states) so the whole suite
runs in seconds; the full paper-scale workloads live in benchmarks/.
Session scope is used for anything that costs more than ~10 ms to
build, since the circuits and models are immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    assemble,
    rc_ladder,
    rc_tree,
    rcnet_a,
    with_random_variations,
)


def pytest_addoption(parser):
    """``--regen-goldens``: rewrite the tests/golden/*.npz fixtures.

    The golden-reference harness (tests/test_golden.py) compares the
    current kernels against committed known-good numerics; after an
    *intentional* numeric change, regenerate with

        pytest tests/test_golden.py --regen-goldens

    and commit the updated fixtures in the same PR, so the diff
    documents the numeric change explicitly.
    """
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="regenerate the committed golden-reference fixtures",
    )


@pytest.fixture(scope="session")
def ladder_system():
    """A 12-segment RC ladder (13 states, 1 port + 1 observation)."""
    return assemble(rc_ladder(12))


@pytest.fixture(scope="session")
def tree_system():
    """A 30-node random RC tree (caps on every node; C nonsingular)."""
    return assemble(rc_tree(30, seed=5))


@pytest.fixture(scope="session")
def small_parametric():
    """10-segment ladder with 2 random variational parameters."""
    return with_random_variations(rc_ladder(10), 2, seed=3)


@pytest.fixture(scope="session")
def tree_parametric():
    """30-node tree with 2 random variational parameters."""
    return with_random_variations(rc_tree(30, seed=5), 2, seed=7)


@pytest.fixture(scope="session")
def big_tree_parametric():
    """100-node tree with 2 parameters; large enough that reduced models
    are genuinely smaller than the full system (no accidental exactness)."""
    return with_random_variations(rc_tree(100, seed=13), 2, seed=17)


@pytest.fixture(scope="session")
def rcneta_parametric():
    """The RCNetA clock-tree analogue (78 states, 3 width parameters)."""
    return rcnet_a()


@pytest.fixture(scope="session")
def frequencies():
    """Logarithmic frequency grid, 10 MHz - 100 GHz."""
    return np.logspace(7, 11, 25)


@pytest.fixture
def rng():
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)
