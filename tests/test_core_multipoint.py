"""Tests for the multi-point expansion reducer."""

import numpy as np
import pytest

from repro.baselines import transfer_moments
from repro.core import MultiPointReducer, factorial_grid
from repro.linalg import factorization_count, reset_factorization_count


class TestFactorialGrid:
    def test_grid_shape(self):
        grid = factorial_grid(3, 3, 0.3)
        assert grid.shape == (27, 3)

    def test_single_sample_is_nominal(self):
        grid = factorial_grid(2, 1, 0.3)
        np.testing.assert_allclose(grid, [[0.0, 0.0]])

    def test_two_samples_are_corners(self):
        grid = factorial_grid(1, 2, 0.5)
        np.testing.assert_allclose(sorted(grid[:, 0]), [-0.5, 0.5])

    def test_contains_center_for_odd_counts(self):
        grid = factorial_grid(2, 3, 0.3)
        assert any(np.all(point == 0.0) for point in grid)

    def test_validation(self):
        with pytest.raises(ValueError):
            factorial_grid(0, 3, 0.3)
        with pytest.raises(ValueError):
            factorial_grid(2, 0, 0.3)


class TestReduction:
    def test_matches_s_moments_at_each_sample(self, tree_parametric):
        """The defining property: k s-moments preserved at every sample."""
        grid = factorial_grid(2, 2, 0.3)
        k = 3
        model = MultiPointReducer(grid, num_moments=k).reduce(tree_parametric)
        for point in grid:
            full_sys = tree_parametric.instantiate(point)
            red_sys = model.instantiate(point)
            mf = transfer_moments(full_sys, k)
            mr = transfer_moments(red_sys, k)
            for i in range(k):
                scale = max(np.abs(mf[i]).max(), 1e-300)
                np.testing.assert_allclose(mr[i], mf[i], atol=1e-8 * scale)

    def test_interpolates_between_samples(self, tree_parametric, frequencies):
        grid = factorial_grid(2, 2, 0.3)
        model = MultiPointReducer(grid, num_moments=4).reduce(tree_parametric)
        point = [0.1, -0.05]  # strictly inside the sampled box
        full = tree_parametric.instantiate(point).frequency_response(frequencies)[:, 0, 0]
        red = model.frequency_response(frequencies, point)[:, 0, 0]
        assert np.abs(full - red).max() / np.abs(full).max() < 1e-3

    def test_factorization_count_equals_samples(self, tree_parametric):
        grid = factorial_grid(2, 3, 0.3)
        reducer = MultiPointReducer(grid, num_moments=2)
        reset_factorization_count()
        reducer.reduce(tree_parametric)
        assert factorization_count() == reducer.num_samples == 9

    def test_size_bounded_by_formula(self, tree_parametric):
        from repro.core import multi_point_size

        grid = factorial_grid(2, 2, 0.3)
        k = 3
        model = MultiPointReducer(grid, num_moments=k).reduce(tree_parametric)
        # The formula counts k+1 block moments as "matching k moments of
        # s"; our num_moments=k matches k blocks, so bound with k-1.
        assert model.size <= multi_point_size(k - 1, 4, tree_parametric.nominal.num_inputs)

    def test_subspace_union_deflates_shared_directions(self, tree_parametric):
        # Sampling the same point twice must not grow the model.
        once = MultiPointReducer([[0.0, 0.0]], num_moments=4).reduce(tree_parametric)
        twice = MultiPointReducer([[0.0, 0.0], [0.0, 0.0]], num_moments=4).reduce(
            tree_parametric
        )
        assert twice.size == once.size


class TestValidation:
    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            MultiPointReducer(np.empty((0, 2)), num_moments=2)

    def test_zero_moments_rejected(self):
        with pytest.raises(ValueError):
            MultiPointReducer([[0.0]], num_moments=0)

    def test_dimension_mismatch_rejected(self, tree_parametric):
        reducer = MultiPointReducer([[0.0, 0.0, 0.0]], num_moments=2)
        with pytest.raises(ValueError, match="coordinates"):
            reducer.reduce(tree_parametric)
